"""Probabilistic analysis of an aircraft-conflict scenario (TSAFE-style).

The paper's Table 4 evaluates qCORAL on the TSAFE Conflict Probe, which tests
whether two aircraft are predicted to lose separation within a time horizon.
This example builds a small conflict-probe program in the mini language,
analyses it end to end under two different usage profiles (uniform and a
truncated-normal "dense traffic" profile), and compares the qCORAL feature
configurations on the generated constraint set.

Run with:  python examples/aircraft_conflict.py
"""

from __future__ import annotations

from repro import QCoralConfig, UsageProfile
from repro.analysis.pipeline import ProbabilisticAnalysisPipeline
from repro.core.profiles import TruncatedNormalDistribution, UniformDistribution
from repro.subjects.aerospace import tsafe_conflict
from repro.core.qcoral import QCoralAnalyzer

CONFLICT_PROBE = """
input x1 in [0, 50];
input y1 in [0, 50];
input x2 in [0, 50];
input y2 in [0, 50];
input vx1 in [-5, 5];
input vy1 in [-5, 5];
input vx2 in [-5, 5];
input vy2 in [-5, 5];

horizon = 3.0;
fx1 = x1 + horizon * vx1;
fy1 = y1 + horizon * vy1;
fx2 = x2 + horizon * vx2;
fy2 = y2 + horizon * vy2;

currentDistance = sqrt((x1 - x2) * (x1 - x2) + (y1 - y2) * (y1 - y2));
futureDistance = sqrt((fx1 - fx2) * (fx1 - fx2) + (fy1 - fy2) * (fy1 - fy2));

if (currentDistance <= 5.0) {
    observe(conflict);
} else {
    if (futureDistance <= 5.0) {
        observe(conflict);
    }
}
"""


def analyze_under_profile(name: str, profile: UsageProfile) -> None:
    pipeline = ProbabilisticAnalysisPipeline(
        CONFLICT_PROBE, profile=profile, config=QCoralConfig.strat_partcache(20_000, seed=11)
    )
    result = pipeline.analyze("conflict")
    print(f"{name:28s} P(conflict) = {result.mean:.6f}  std = {result.std:.3e}")


def main() -> None:
    print("=" * 76)
    print("Conflict probe: probability of losing separation within the horizon")
    print("=" * 76)

    analyze_under_profile("uniform traffic", UsageProfile.uniform(
        {
            "x1": (0, 50), "y1": (0, 50), "x2": (0, 50), "y2": (0, 50),
            "vx1": (-5, 5), "vy1": (-5, 5), "vx2": (-5, 5), "vy2": (-5, 5),
        }
    ))

    dense_traffic = UsageProfile(
        {
            "x1": TruncatedNormalDistribution(25.0, 8.0, 0.0, 50.0),
            "y1": TruncatedNormalDistribution(25.0, 8.0, 0.0, 50.0),
            "x2": TruncatedNormalDistribution(25.0, 8.0, 0.0, 50.0),
            "y2": TruncatedNormalDistribution(25.0, 8.0, 0.0, 50.0),
            "vx1": UniformDistribution(-5, 5),
            "vy1": UniformDistribution(-5, 5),
            "vx2": UniformDistribution(-5, 5),
            "vy2": UniformDistribution(-5, 5),
        }
    )
    analyze_under_profile("dense traffic (normal)", dense_traffic)

    print()
    print("=" * 76)
    print("Feature ablation on the synthetic TSAFE Conflict constraint family")
    print("=" * 76)
    subject = tsafe_conflict(depth=5)
    for config in (
        QCoralConfig.plain(5_000, seed=4),
        QCoralConfig.strat(5_000, seed=4),
        QCoralConfig.strat_partcache(5_000, seed=4),
    ):
        analyzer = QCoralAnalyzer(subject.profile(), config)
        result = analyzer.analyze(subject.constraint_set)
        print(
            f"{config.feature_label():28s} estimate={result.mean:.6f} "
            f"std={result.std:.3e} time={result.analysis_time:.2f}s"
        )


if __name__ == "__main__":
    main()
