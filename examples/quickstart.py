"""Quickstart: quantify the solution space of a constraint set with qCORAL.

This walks through the public Session API, from lowest to highest level:

1. quantify a constraint set written directly in the constraint language,
   through the fluent query builder;
2. compare the qCORAL feature configurations evaluated in the paper (Table 4);
3. run the full pipeline of Figure 1 on a small program: symbolic execution
   followed by probabilistic analysis of a target event;
4. stream an adaptive run round by round (with early stop in reach), with
   live engine metrics from a zero-perturbation Observability hub;
5. fan the sampling out over the parallel executor backends and check that
   the estimate is bit-identical on every backend for one master seed;
6. persist per-factor estimates in a store and re-run warm: the second run
   reuses every stored factor and draws zero samples;
7. record runs in a ledger, read back the health diagnostics every run
   finishes with, and measure the estimate drift between two runs in sigma
   units (what ``qcoral obs diff`` automates).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile

from repro import Observability, QCoralConfig, Session

BOUNDS = {"x": (-1.0, 1.0), "y": (-1.0, 1.0)}


def quantify_a_constraint_set() -> None:
    """Estimate P(x <= -y and y <= x) for x, y uniform over [-1, 1] (exact: 0.25)."""
    print("=" * 72)
    print("1. Quantifying a constraint set (the fluent query builder)")
    print("=" * 72)

    with Session() as session:
        query = session.quantify("x <= 0 - y && y <= x", BOUNDS)
        report = query.with_budget(30_000).seed(1).run()
    lower, upper = report.estimate.chebyshev_interval(0.95)
    print(f"estimate:            {report.mean:.6f}   (exact value: 0.25)")
    print(f"standard deviation:  {report.std:.3e}")
    print(f"95% Chebyshev bound: [{lower:.4f}, {upper:.4f}]")
    print(f"analysis time:       {report.analysis_time:.2f}s")
    print()


def compare_feature_configurations() -> None:
    """The ablation of Table 4 on a non-linear constraint with shared factors."""
    print("=" * 72)
    print("2. Feature configurations (Monte Carlo vs STRAT vs STRAT+PARTCACHE)")
    print("=" * 72)

    constraints = "x * x + y * y <= 4 && z <= 2 || x * x + y * y <= 4 && z > 2 && z <= 5"
    profile = {"x": (-3.0, 3.0), "y": (-3.0, 3.0), "z": (0.0, 10.0)}

    with Session() as session:
        for config in (
            QCoralConfig.plain(10_000, seed=7),
            QCoralConfig.strat(10_000, seed=7),
            QCoralConfig.strat_partcache(10_000, seed=7),
        ):
            report = session.quantify(constraints, profile, config=config).run()
            print(
                f"{report.feature_label:28s} estimate={report.mean:.6f} "
                f"std={report.std:.3e} samples={report.total_samples:6d} "
                f"time={report.analysis_time:.2f}s"
            )
    print()


def analyze_a_program() -> None:
    """Figure 1 end to end: the paper's autopilot safety monitor (Section 4.4)."""
    print("=" * 72)
    print("3. Full pipeline on the safety-monitor program")
    print("=" * 72)

    from repro.subjects import programs

    with Session() as session:
        report = (
            session.analyze(programs.SAFETY_MONITOR, programs.SAFETY_MONITOR_EVENT)
            .with_budget(30_000)
            .seed(3)
            .run()
        )
    print(f"paths reaching the event: {report.paths}")
    print(f"P(callSupervisor) = {report.mean:.6f}   (paper's exact value: 0.737848)")
    print(f"standard deviation: {report.std:.3e}")
    print(report.confidence_note)
    print()


def stream_an_adaptive_run() -> None:
    """Per-round streaming: watch convergence, stop early whenever you like.

    An Observability hub attached to the session streams live engine metrics
    next to the round stream — zero-perturbation, so the estimates below are
    bit-identical to a run without the hub.
    """
    print("=" * 72)
    print("4. Streaming an adaptive run (target sigma 5e-4) with live metrics")
    print("=" * 72)

    obs = Observability()
    with Session(observability=obs) as session:
        query = session.quantify("x * x + y * y <= 1", BOUNDS).with_budget(200_000).seed(5)
        query = query.until(std=5e-4, rounds=8)
        stream = query.stream()
        for round_report in stream:
            metrics = obs.snapshot()
            print(
                f"round {round_report.round_index}: +{round_report.allocated:6d} samples "
                f"-> estimate={round_report.mean:.6f} sigma={round_report.std:.2e}  "
                f"[draws={metrics.counter_total('sampler_draws_total'):.0f} "
                f"hits={metrics.counter_total('sampler_hits_total'):.0f}]"
            )
        report = stream.report
    status = "met" if report.met_target else "budget exhausted"
    print(f"final: {report.mean:.6f} after {report.total_samples} samples ({status})")
    print(f"the same snapshot rides on the report: {report.metrics.counter_total('qcoral_rounds_total'):.0f} rounds")
    print()


def run_in_parallel() -> None:
    """The executor backends: same seed, same estimate, any worker count."""
    print("=" * 72)
    print("5. Parallel execution (serial vs thread vs process backends)")
    print("=" * 72)

    results = {}
    for executor, workers in (("serial", None), ("thread", 2), ("process", 2)):
        with Session(executor=executor, workers=workers) as session:
            query = session.quantify("x * x + y * y <= 1", BOUNDS)
            report = query.with_budget(200_000).seed(11).run()
        label = executor if workers is None else f"{executor}×{workers}"
        results[label] = report
        print(f"{label:12s} estimate={report.mean:.6f} std={report.std:.3e} " f"time={report.analysis_time:.2f}s")
    estimates = {(r.mean, r.variance) for r in results.values()}
    print(f"bit-identical across backends: {len(estimates) == 1}")
    print()


def reuse_across_runs() -> None:
    """The persistent store: a cold run pays, the warm re-run is free."""
    print("=" * 72)
    print("6. Persistent estimate store (cold run, then warm re-run)")
    print("=" * 72)

    from repro.analysis.results import reuse_summary
    from repro.subjects import programs

    handle, store_path = tempfile.mkstemp(suffix=".db")
    os.close(handle)
    os.remove(store_path)
    try:
        for label in ("cold", "warm"):
            with Session(store=store_path) as session:
                report = (
                    session.analyze(programs.SAFETY_MONITOR, programs.SAFETY_MONITOR_EVENT)
                    .with_budget(30_000)
                    .seed(1)
                    .run()
                )
            print(
                f"{label:5s} P = {report.mean:.6f}  samples drawn = "
                f"{report.total_samples:6d}  ({reuse_summary(report.cache_statistics)})"
            )
        print("warm re-run reused every stored factor: no sampling at all")
    finally:
        if os.path.exists(store_path):
            os.remove(store_path)
    print()


def diagnostics_and_the_ledger() -> None:
    """Run health + the run ledger: provenance and drift across runs."""
    print("=" * 72)
    print("7. Run-health diagnostics and the run ledger")
    print("=" * 72)

    from repro.obs.ledger import estimate_drift_sigmas, open_ledger

    handle, ledger_path = tempfile.mkstemp(suffix=".jsonl")
    os.close(handle)
    try:
        # Two runs of the same constraint family, recorded in one ledger
        # (a session-level ledger; .with_ledger(...) does it per query).
        with Session(ledger=ledger_path) as session:
            for seed in (21, 22):
                report = session.quantify("x * x + y * y <= 1", BOUNDS).with_budget(20_000).seed(seed).run()
        # Every report carries structured health diagnostics (schema v3).
        for diagnostic in report.diagnostics:
            print(f"[{diagnostic.severity}] {diagnostic.code}: {diagnostic.message}")
        with open_ledger(ledger_path) as ledger:
            first, second = ledger.entries()
        print(f"ledger family {first.family}: seeds {first.seed} and {second.seed}")
        drift = estimate_drift_sigmas(first, second)
        print(f"estimate drift between the runs: {drift:.2f} sigma (3+ would flag `qcoral obs diff`)")
    finally:
        if os.path.exists(ledger_path):
            os.remove(ledger_path)
    print()


def incremental_requantification() -> None:
    """Diff two program versions, reuse the unchanged factors' estimates."""
    print("=" * 72)
    print("8. Incremental re-quantification (the engine behind `qcoral ci`)")
    print("=" * 72)

    from repro.subjects import evolution

    profile = evolution.evolution_profile()
    handle, store_path = tempfile.mkstemp(suffix=".db")
    os.close(handle)
    os.remove(store_path)
    try:
        with Session(store=store_path) as session:
            cold = session.quantify(evolution.EVOLUTION_V1, profile).with_budget(5_000).seed(3).run()
            print(f"v1 cold:        P = {cold.mean:.6f}  samples = {cold.total_samples}")
            # The v1 -> v2 edit touches one of the five factors; the diff
            # classifies the rest unchanged and the plan reuses them outright.
            query = session.quantify(evolution.EVOLUTION_V2, profile).with_budget(5_000).seed(3)
            query = query.against_baseline(evolution.EVOLUTION_V1)
            print(f"reuse plan:     {query.reuse_plan().summary()}")
            incremental = query.run()
            print(f"v2 incremental: P = {incremental.mean:.6f}  samples = {incremental.total_samples}")
        ratio = incremental.total_samples / cold.total_samples
        print(f"the incremental run drew {ratio:.0%} of the cold run's samples")
        print(f"(exact v2 probability: {evolution.EXACT_V2:.6f})")
    finally:
        if os.path.exists(store_path):
            os.remove(store_path)
    print()


def quantification_as_a_service() -> None:
    """Serve the engine over HTTP and reuse the store across clients."""
    print("=" * 72)
    print("9. Quantification as a service (the engine behind `qcoral serve`)")
    print("=" * 72)

    from repro.serve import ServeClient, serve_in_thread

    # One shared session answers every client; `qcoral serve` runs the same
    # server as a process with SIGTERM drain.  Port 0 = ephemeral.
    with serve_in_thread() as handle:
        client = ServeClient(handle.url)
        print(f"serving on {handle.url}  (health: {client.healthz()['status']})")
        cold = client.quantify("x * x + y * y <= 1", {"x": "-1:1", "y": "-1:1"}, seed=7, budget=20_000)
        print(f"served cold:  P = {cold['mean']:.6f}  samples = {cold['samples']}")
        # The same request again is answered from the shared store: the
        # paper's reuse economics mean the repeat draws zero samples.
        warm = client.quantify("x * x + y * y <= 1", {"x": "-1:1", "y": "-1:1"}, seed=7, budget=20_000)
        print(f"served warm:  P = {warm['mean']:.6f}  samples = {warm['samples']}")
        with client.stream(
            "x * x + y * y <= 1", {"x": "-1:1", "y": "-1:1"}, seed=9, budget=40_000, max_rounds=4, target_std=1e-6
        ) as rounds:
            for event in rounds:
                if event.event == "round":
                    data = event.data
                    print(f"SSE round {data['round']}: mean = {data['mean']:.6f} after {data['cumulative']} samples")
                # Closing the iterator early would cancel sampling server-side.
        hits = [line for line in client.metrics().splitlines() if line.startswith("store_hits_total")]
        if hits:
            print(f"hub metric:   {hits[0]}")
    print()


def main() -> None:
    quantify_a_constraint_set()
    compare_feature_configurations()
    analyze_a_program()
    stream_an_adaptive_run()
    run_in_parallel()
    reuse_across_runs()
    diagnostics_and_the_ledger()
    incremental_requantification()
    quantification_as_a_service()


if __name__ == "__main__":
    main()
