"""Quickstart: quantify the solution space of a constraint set with qCORAL.

This walks through the three ways of using the library, from lowest to highest
level:

1. quantify a constraint set written directly in the constraint language;
2. compare the qCORAL feature configurations evaluated in the paper (Table 4);
3. run the full pipeline of Figure 1 on a small program: symbolic execution
   followed by probabilistic analysis of a target event;
4. fan the sampling out over the parallel executor backends and check that
   the estimate is bit-identical on every backend for one master seed;
5. persist per-factor estimates in a store and re-run warm: the second run
   reuses every stored factor and draws zero samples.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile

from repro import QCoralConfig, UsageProfile, parse_constraint_set, quantify
from repro.analysis.pipeline import analyze_program
from repro.analysis.results import reuse_summary
from repro.subjects import programs


def quantify_a_constraint_set() -> None:
    """Estimate P(x <= -y and y <= x) for x, y uniform over [-1, 1] (exact: 0.25)."""
    print("=" * 72)
    print("1. Quantifying a constraint set")
    print("=" * 72)

    profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
    constraint_set = parse_constraint_set("x <= 0 - y && y <= x")

    result = quantify(constraint_set, profile, QCoralConfig.strat_partcache(30_000, seed=1))
    lower, upper = result.estimate.chebyshev_interval(0.95)
    print(f"estimate:            {result.mean:.6f}   (exact value: 0.25)")
    print(f"standard deviation:  {result.std:.3e}")
    print(f"95% Chebyshev bound: [{lower:.4f}, {upper:.4f}]")
    print(f"analysis time:       {result.analysis_time:.2f}s")
    print()


def compare_feature_configurations() -> None:
    """The ablation of Table 4 on a non-linear constraint with shared factors."""
    print("=" * 72)
    print("2. Feature configurations (Monte Carlo vs STRAT vs STRAT+PARTCACHE)")
    print("=" * 72)

    profile = UsageProfile.uniform({"x": (-3, 3), "y": (-3, 3), "z": (0, 10)})
    constraint_set = parse_constraint_set("x * x + y * y <= 4 && z <= 2 || x * x + y * y <= 4 && z > 2 && z <= 5")

    for config in (
        QCoralConfig.plain(10_000, seed=7),
        QCoralConfig.strat(10_000, seed=7),
        QCoralConfig.strat_partcache(10_000, seed=7),
    ):
        result = quantify(constraint_set, profile, config)
        print(
            f"{config.feature_label():28s} estimate={result.mean:.6f} "
            f"std={result.std:.3e} samples={result.total_samples:6d} "
            f"time={result.analysis_time:.2f}s"
        )
    print()


def analyze_a_program() -> None:
    """Figure 1 end to end: the paper's autopilot safety monitor (Section 4.4)."""
    print("=" * 72)
    print("3. Full pipeline on the safety-monitor program")
    print("=" * 72)

    result = analyze_program(
        programs.SAFETY_MONITOR,
        programs.SAFETY_MONITOR_EVENT,
        config=QCoralConfig.strat_partcache(30_000, seed=3),
    )
    print(f"paths reaching the event: {len(result.qcoral_result.path_reports)}")
    print(f"P(callSupervisor) = {result.mean:.6f}   (paper's exact value: 0.737848)")
    print(f"standard deviation: {result.std:.3e}")
    print(result.confidence_note)
    print()


def run_in_parallel() -> None:
    """The executor backends: same seed, same estimate, any worker count."""
    print("=" * 72)
    print("4. Parallel execution (serial vs thread vs process backends)")
    print("=" * 72)

    profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
    constraint_set = parse_constraint_set("x * x + y * y <= 1")

    results = {}
    for executor, workers in (("serial", None), ("thread", 2), ("process", 2)):
        config = QCoralConfig(samples_per_query=200_000, seed=11, executor=executor, workers=workers)
        result = quantify(constraint_set, profile, config)
        label = executor if workers is None else f"{executor}×{workers}"
        results[label] = result
        print(f"{label:12s} estimate={result.mean:.6f} std={result.std:.3e} " f"time={result.analysis_time:.2f}s")
    estimates = {(r.mean, r.variance) for r in results.values()}
    print(f"bit-identical across backends: {len(estimates) == 1}")
    print()


def reuse_across_runs() -> None:
    """The persistent store: a cold run pays, the warm re-run is free."""
    print("=" * 72)
    print("5. Persistent estimate store (cold run, then warm re-run)")
    print("=" * 72)

    handle, store_path = tempfile.mkstemp(suffix=".db")
    os.close(handle)
    os.remove(store_path)
    try:
        config = QCoralConfig.strat_partcache(30_000, seed=1).with_store(store_path)
        for label in ("cold", "warm"):
            result = analyze_program(programs.SAFETY_MONITOR, programs.SAFETY_MONITOR_EVENT, config=config)
            stats = result.qcoral_result.cache_statistics
            print(
                f"{label:5s} P = {result.mean:.6f}  samples drawn = "
                f"{result.qcoral_result.total_samples:6d}  ({reuse_summary(stats)})"
            )
        print("warm re-run reused every stored factor: no sampling at all")
    finally:
        if os.path.exists(store_path):
            os.remove(store_path)
    print()


def main() -> None:
    quantify_a_constraint_set()
    compare_feature_configurations()
    analyze_a_program()
    run_in_parallel()
    reuse_across_runs()


if __name__ == "__main__":
    main()
