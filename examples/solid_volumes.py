"""Estimating volumes of geometric solids (the paper's RQ1 microbenchmarks).

Each solid is described by a conjunction of (mostly non-linear) constraints
over a bounding box; its volume is the satisfaction probability under a
uniform profile multiplied by the bounding-box volume.  The example prints the
estimate, the analytical value and the error for a selection of Table 2
subjects at increasing sample counts, showing the ~1/sqrt(n) error decay and
the exact (zero-variance) result ICP produces for the axis-aligned cube.

Run with:  python examples/solid_volumes.py
"""

from __future__ import annotations

from repro.subjects.solids import all_solids, estimate_volume, solid_by_name


def sweep_sample_counts() -> None:
    print("=" * 76)
    print("Error decay with the sampling budget (Sphere and Torus)")
    print("=" * 76)
    for name in ("Sphere", "Torus"):
        solid = solid_by_name(name)
        print(f"\n{solid.name}  (analytical volume {solid.analytical_volume:.6f})")
        for samples in (1_000, 10_000, 100_000):
            estimate = estimate_volume(solid, samples=samples, seed=5)
            print(
                f"  {samples:>7d} samples: estimate={estimate.volume:10.6f} "
                f"std={estimate.std:.4f} relative error={estimate.relative_error:.4%}"
            )


def survey_all_solids() -> None:
    print()
    print("=" * 76)
    print("All thirteen Table 2 subjects at 10,000 samples")
    print("=" * 76)
    print(f"{'subject':30s} {'group':22s} {'analytical':>12s} {'estimate':>12s} {'std':>10s}")
    for solid in all_solids():
        estimate = estimate_volume(solid, samples=10_000, seed=7)
        print(
            f"{solid.name:30s} {solid.group:22s} {solid.analytical_volume:12.4f} "
            f"{estimate.volume:12.4f} {estimate.std:10.4f}"
        )
    print("\nNote: the Cube row has zero standard deviation because interval")
    print("constraint propagation identifies the solid exactly (paper Section 6.1).")


def main() -> None:
    sweep_sample_counts()
    survey_all_solids()


if __name__ == "__main__":
    main()
