"""Smoke-test a running `qcoral serve` instance (the CI serve-smoke client).

Usage::

    qcoral serve --port 8123 --store /tmp/estimates.db --ledger /tmp/runs.jsonl &
    PYTHONPATH=src python examples/serve_smoke.py http://127.0.0.1:8123

Drives the service through its contract end to end: a cold quantify, the
zero-sample repeat, a streamed run cancelled by disconnect, and a
``/metrics`` scrape asserting both layers (engine counters and request
metrics) are live on the shared hub.

Exit codes: **0** every check passed, **1** a contract check failed,
**2** usage (no URL, or the server never became healthy).
"""

from __future__ import annotations

import sys
import time

CIRCLE = "x*x + y*y <= 1"
DOMAINS = {"x": "-1:1", "y": "-1:1"}
CANCEL_BUDGET = 50_000_000


def wait_healthy(client, seconds: float = 30.0) -> bool:
    from repro.serve import ServeClientError

    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        try:
            if client.healthz().get("status") == "ok":
                return True
        except ServeClientError:
            pass
        time.sleep(0.2)
    return False


def metric_value(metrics_text: str, prefix: str):
    for line in metrics_text.splitlines():
        if line.startswith(prefix):
            return float(line.rsplit(" ", 1)[1])
    return None


def main(argv) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} http://HOST:PORT", file=sys.stderr)
        return 2
    from repro.serve import ServeClient

    client = ServeClient(argv[1])
    if not wait_healthy(client):
        print(f"error: {client.url} never answered /healthz", file=sys.stderr)
        return 2

    failures = 0

    def check(name: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        print(f"{'PASS' if ok else 'FAIL'}  {name}{'  (' + detail + ')' if detail else ''}")
        if not ok:
            failures += 1

    cold = client.quantify(CIRCLE, DOMAINS, seed=7, budget=20_000)
    check(
        "cold quantify samples the full budget",
        cold["samples"] == 20_000 and 0.0 <= cold["mean"] <= 1.0,
        f"mean={cold['mean']:.6f} samples={cold['samples']}",
    )

    warm = client.quantify(CIRCLE, DOMAINS, seed=7, budget=20_000)
    check(
        "repeated request draws zero samples",
        warm["samples"] == 0 and warm["mean"] == cold["mean"],
        f"samples={warm['samples']}",
    )

    # A deliberately huge streamed run, cancelled by dropping the connection
    # after the second round: the engine must stop well short of the budget.
    with client.stream(
        CIRCLE, DOMAINS, seed=9, budget=CANCEL_BUDGET, max_rounds=500, target_std=1e-12, initial_fraction=0.001
    ) as rounds:
        seen = 0
        for event in rounds:
            if event.event == "round":
                seen += 1
                if seen >= 2:
                    break
    check("stream produced round events", seen >= 2, f"rounds seen={seen}")

    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if metric_value(client.metrics(), "serve_in_flight") == 0:
            break
        time.sleep(0.1)

    metrics = client.metrics()
    check(
        "disconnect cancelled the run",
        metric_value(metrics, 'serve_early_stops_total{reason="cancelled"}') == 1
        and metric_value(metrics, "serve_stream_disconnects_total") == 1,
    )
    drawn = metric_value(metrics, "qcoral_samples_total")
    check(
        "cancelled run stopped well short of its budget",
        drawn is not None and drawn < CANCEL_BUDGET / 10,
        f"samples drawn overall={drawn}",
    )
    check(
        "hub exposes engine and request metrics together",
        "qcoral_rounds_total" in metrics and "serve_requests_total" in metrics,
    )
    stats = client.store_stats()["statistics"]
    check("store saw the warm hit", stats["hits"] >= 1, f"stats={stats}")

    print(f"{'OK' if failures == 0 else 'FAILED'}: {failures} failing check(s)")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
