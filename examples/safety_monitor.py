"""The paper's Section 4.4 case study: an autopilot safety monitor.

The program calls a human supervisor when the vehicle climbs above 9000 m or
when the relative flap positions violate a non-linear safety envelope
(``sin(headFlap * tailFlap) > 0.25``).  This example reproduces the worked
analysis of the paper step by step:

* symbolic execution extracts the two path conditions reaching the event;
* the dependency partition separates ``altitude`` from the two flap variables;
* ICP resolves the altitude constraints exactly (zero variance);
* the flap factor is estimated with ICP-stratified sampling;
* the estimators are composed with the product rule (Eq. 7-8) and the disjoint
  sum rule (Eq. 5-6).

The quantification itself goes through the public Session facade; the
returned :class:`~repro.api.report.Report` keeps the per-path, per-factor
drill-down used below.

Run with:  python examples/safety_monitor.py
"""

from __future__ import annotations

from repro import Session
from repro.core.dependency import partition_for_constraint_set
from repro.subjects import programs
from repro.symexec import execute_program, parse_program


def main() -> None:
    program = parse_program(programs.SAFETY_MONITOR, name="safety-monitor")
    print("Program inputs:", ", ".join(f"{name} in [{lo}, {hi}]" for name, (lo, hi) in program.input_bounds().items()))

    # Stage 1: bounded symbolic execution (the SPF substitute).
    symbolic = execute_program(program)
    target = symbolic.constraint_set_for(programs.SAFETY_MONITOR_EVENT)
    print(f"\nSymbolic execution explored {symbolic.path_count} paths;")
    print(f"{len(target)} of them reach the target event:")
    for pc in target:
        print(f"  PC: {pc}")

    # Stage 2: the dependency partition of Definition 1.
    partition = partition_for_constraint_set(target)
    print("\nDependency partition of the input variables:")
    for block in partition:
        print("  block:", ", ".join(sorted(block)))

    # Stage 3: compositional statistical quantification through the facade.
    profile = {name: bounds for name, bounds in program.input_bounds().items()}
    with Session() as session:
        report = session.quantify(target, profile).with_budget(30_000).seed(2014).run()

    print("\nPer-path estimates:")
    for path_report in report.path_reports:
        factors = ", ".join(
            f"{{{', '.join(sorted(factor.variables))}}}: {factor.estimate.mean:.4f}"
            for factor in path_report.factors
        )
        print(f"  {path_report.pc}")
        print(f"    estimate={path_report.estimate.mean:.6f}  factors: {factors}")

    print(f"\nP(callSupervisor) = {report.mean:.6f}")
    print("paper's exact value: 0.737848")
    print(f"variance bound (Theorem 1): {report.variance:.3e}")
    print(f"standard deviation:         {report.std:.3e}")
    lower, upper = report.estimate.chebyshev_interval(0.95)
    print(f"95% Chebyshev interval:     [{lower:.4f}, {upper:.4f}]")


if __name__ == "__main__":
    main()
