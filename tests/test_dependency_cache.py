"""Unit tests for the dependency partition (Definition 1) and the estimate cache."""

import pytest

from repro.core.cache import EstimateCache
from repro.core.dependency import (
    DependencyPartition,
    UnionFind,
    compute_dependency_partition,
    partition_for_constraint_set,
)
from repro.core.estimate import Estimate
from repro.lang.parser import parse_constraint_set, parse_path_condition


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert uf.find("a") != uf.find("b")
        assert len(uf) == 2

    def test_union_merges(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.find("a") == uf.find("c")
        assert len(uf.groups()) == 1

    def test_groups_sorted_by_smallest_member(self):
        uf = UnionFind()
        uf.union("d", "c")
        uf.add("a")
        groups = uf.groups()
        assert groups[0] == frozenset({"a"})
        assert groups[1] == frozenset({"c", "d"})

    def test_find_implicitly_adds(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf


class TestDependencyPartition:
    def test_paper_example(self):
        """Section 4.4: altitude is independent of headFlap/tailFlap."""
        cs = parse_constraint_set("altitude > 9000 || altitude <= 9000 && sin(headFlap * tailFlap) > 0.25")
        partition = partition_for_constraint_set(cs)
        blocks = set(partition.blocks)
        assert frozenset({"altitude"}) in blocks
        assert frozenset({"headFlap", "tailFlap"}) in blocks

    def test_transitive_dependency(self):
        cs = parse_constraint_set("x + y <= 1 && y + z <= 1")
        partition = partition_for_constraint_set(cs)
        assert partition.depends("x", "z")
        assert len(partition) == 1

    def test_dependency_spans_path_conditions(self):
        """Dep is computed over all PCs, so coupling in one PC affects all."""
        cs = parse_constraint_set("x <= 1 && y <= 1 || x + y <= 1")
        partition = partition_for_constraint_set(cs)
        assert partition.depends("x", "y")

    def test_independent_variables_in_separate_blocks(self):
        cs = parse_constraint_set("x <= 1 && y >= 0 && z * z <= 4")
        partition = partition_for_constraint_set(cs)
        assert len(partition) == 3

    def test_extra_variables_become_singletons(self):
        partition = compute_dependency_partition([parse_path_condition("x <= 1")], extra_variables=["unused"])
        assert frozenset({"unused"}) in set(partition.blocks)

    def test_block_of_unknown_variable_is_singleton(self):
        partition = DependencyPartition((frozenset({"x"}),))
        assert partition.block_of("other") == frozenset({"other"})

    def test_reflexivity(self):
        partition = partition_for_constraint_set(parse_constraint_set("x <= 1"))
        assert partition.depends("x", "x")


class TestEstimateCache:
    def test_miss_then_hit(self):
        cache = EstimateCache()
        factor = parse_path_condition("x <= 1 && y >= 0")
        assert cache.get(factor) is None
        cache.put(factor, Estimate(0.5, 0.01))
        assert cache.get(factor) == Estimate(0.5, 0.01)
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1

    def test_key_is_order_insensitive(self):
        cache = EstimateCache()
        cache.put(parse_path_condition("x <= 1 && y >= 0"), Estimate(0.25, 0.0))
        assert cache.get(parse_path_condition("y >= 0 && x <= 1")) is not None

    def test_key_uses_simplified_form(self):
        cache = EstimateCache()
        cache.put(parse_path_condition("x <= 2 * 3"), Estimate(0.1, 0.0))
        assert cache.get(parse_path_condition("x <= 6")) is not None

    def test_get_or_compute(self):
        cache = EstimateCache()
        factor = parse_path_condition("x <= 1")
        calls = []

        def compute():
            calls.append(1)
            return Estimate(0.5, 0.0)

        first = cache.get_or_compute(factor, compute)
        second = cache.get_or_compute(factor, compute)
        assert first == second
        assert len(calls) == 1

    def test_clear_resets_statistics(self):
        cache = EstimateCache()
        cache.put(parse_path_condition("x <= 1"), Estimate(0.5, 0.0))
        cache.get(parse_path_condition("x <= 1"))
        cache.clear()
        assert len(cache) == 0
        assert cache.statistics.lookups == 0

    def test_hit_rate(self):
        cache = EstimateCache()
        factor = parse_path_condition("x <= 1")
        cache.get(factor)
        cache.put(factor, Estimate(0.5, 0.0))
        cache.get(factor)
        assert cache.statistics.hit_rate == pytest.approx(0.5)

    def test_contains(self):
        cache = EstimateCache()
        factor = parse_path_condition("x <= 1")
        assert factor not in cache
        cache.put(factor, Estimate(0.5, 0.0))
        assert factor in cache
