"""Unit tests for hit-or-miss Monte Carlo and ICP-stratified sampling."""

import numpy as np
import pytest

from repro.core.montecarlo import hit_or_miss, hit_or_miss_constraint_set
from repro.core.profiles import UsageProfile
from repro.core.stratified import stratified_sampling
from repro.errors import AnalysisError
from repro.icp.config import ICPConfig
from repro.intervals import Box
from repro.lang.ast import PathCondition
from repro.lang.parser import parse_constraint_set, parse_path_condition


@pytest.fixture
def rng():
    return np.random.default_rng(2014)


@pytest.fixture
def square_profile():
    return UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})


class TestHitOrMiss:
    def test_triangle_probability(self, rng, square_profile):
        pc = parse_path_condition("x <= 0 - y && y <= x")
        result = hit_or_miss(pc, square_profile, 20_000, rng)
        assert result.estimate.mean == pytest.approx(0.25, abs=0.02)
        assert result.estimate.variance == pytest.approx(result.estimate.mean * (1 - result.estimate.mean) / 20_000)

    def test_impossible_constraint(self, rng, square_profile):
        result = hit_or_miss(parse_path_condition("x > 5"), square_profile, 1000, rng)
        assert result.estimate.mean == 0.0
        assert result.hits == 0

    def test_certain_constraint(self, rng, square_profile):
        result = hit_or_miss(parse_path_condition("x <= 5"), square_profile, 1000, rng)
        assert result.estimate.mean == 1.0

    def test_sampling_within_box(self, rng, square_profile):
        pc = parse_path_condition("x >= 0")
        box = Box.from_bounds({"x": (0.5, 1.0), "y": (-1, 1)})
        result = hit_or_miss(pc, square_profile, 500, rng, box=box)
        assert result.estimate.mean == 1.0

    def test_restricted_variables(self, rng, square_profile):
        pc = parse_path_condition("x >= 0")
        result = hit_or_miss(pc, square_profile, 2000, rng, variables=("x",))
        assert result.estimate.mean == pytest.approx(0.5, abs=0.05)

    def test_zero_samples_rejected(self, rng, square_profile):
        with pytest.raises(AnalysisError):
            hit_or_miss(parse_path_condition("x >= 0"), square_profile, 0, rng)

    def test_variable_free_condition(self, rng, square_profile):
        result = hit_or_miss(parse_path_condition("1 <= 2"), square_profile, 100, rng)
        assert result.estimate.mean == 1.0 and result.estimate.variance == 0.0

    def test_batched_sampling_counts_all_samples(self, rng, square_profile):
        pc = parse_path_condition("x >= 0")
        result = hit_or_miss(pc, square_profile, 1500, rng, batch_size=400)
        assert result.samples == 1500

    def test_constraint_set_disjunction(self, rng, square_profile):
        cs = parse_constraint_set("x > 0.5 || x < 0 - 0.5")
        result = hit_or_miss_constraint_set(cs, square_profile, 20_000, rng)
        assert result.estimate.mean == pytest.approx(0.5, abs=0.02)


class TestStratifiedSampling:
    def test_triangle_estimate_and_variance_reduction(self, rng, square_profile):
        pc = parse_path_condition("x <= 0 - y && y <= x")
        plain = hit_or_miss(pc, square_profile, 10_000, np.random.default_rng(5))
        stratified = stratified_sampling(
            pc, square_profile, 10_000, np.random.default_rng(5), icp_config=ICPConfig(max_boxes=16)
        )
        assert stratified.estimate.mean == pytest.approx(0.25, abs=0.02)
        # Equal per-stratum allocation (the paper's choice) is not guaranteed to
        # beat plain sampling on every geometry, but it must stay comparable.
        assert stratified.estimate.variance <= plain.estimate.variance * 3.0

    def test_exact_box_gives_zero_variance(self, rng):
        profile = UsageProfile.uniform({"x": (-2, 2)})
        pc = parse_path_condition("x >= 0 && x <= 1")
        result = stratified_sampling(pc, profile, 1000, rng)
        assert result.estimate.mean == pytest.approx(0.25, abs=1e-9)
        assert result.estimate.variance == 0.0

    def test_unsatisfiable_constraint(self, rng, square_profile):
        result = stratified_sampling(parse_path_condition("x > 10"), square_profile, 1000, rng)
        assert result.estimate.mean == 0.0
        assert result.box_count == 0

    def test_circle_probability(self, rng, square_profile):
        pc = parse_path_condition("x * x + y * y <= 1")
        result = stratified_sampling(pc, square_profile, 20_000, rng)
        assert result.estimate.mean == pytest.approx(np.pi / 4, abs=0.02)

    def test_strata_weights_do_not_exceed_one(self, rng, square_profile):
        pc = parse_path_condition("x * x + y * y <= 1")
        result = stratified_sampling(pc, square_profile, 5000, rng)
        assert sum(report.weight for report in result.strata) <= 1.0 + 1e-9

    def test_inner_strata_need_no_samples(self, rng):
        profile = UsageProfile.uniform({"x": (0, 1)})
        pc = parse_path_condition("x >= 0.25 && x <= 0.75")
        result = stratified_sampling(pc, profile, 1000, rng)
        inner_reports = [report for report in result.strata if report.inner]
        assert inner_reports and all(report.samples == 0 for report in inner_reports)

    def test_variable_free_condition(self, rng, square_profile):
        result = stratified_sampling(PathCondition.of([]), square_profile, 100, rng, variables=())
        assert result.estimate.mean == 1.0

    def test_zero_budget_rejected(self, rng, square_profile):
        with pytest.raises(AnalysisError):
            stratified_sampling(parse_path_condition("x >= 0"), square_profile, 0, rng)

    def test_paper_figure2_example(self):
        """The Section 3.3 example: ICP-stratified sampling on the triangle.

        The paper reports that the stratified estimator stays close to the
        exact probability 0.25 even with a modest sample budget; we check that
        the estimate lands within a few standard deviations of the truth.
        """
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        pc = parse_path_condition("x <= 0 - y && y <= x")
        result = stratified_sampling(pc, profile, 10_000, np.random.default_rng(7), icp_config=ICPConfig(max_boxes=4))
        assert result.estimate.mean == pytest.approx(0.25, abs=0.03)
