"""Tests for the parallel execution subsystem (repro.exec) and its threading
through the sampling stack: executor backends, deterministic sharded seeding,
merge algebra, the analyzer's cross-backend reproducibility, thread-safe
caching, and the executor-aware experiment runner."""

import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.analysis.runner import repeat_analysis, repeat_quantification, trial_seeds
from repro.cli import main
from repro.core.cache import EstimateCache
from repro.core.estimate import Estimate
from repro.core.montecarlo import hit_or_miss_sharded
from repro.core.profiles import UsageProfile
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig, quantify
from repro.core.stratified import StratifiedSampler
from repro.errors import ConfigurationError
from repro.exec import (
    EXECUTOR_KINDS,
    SamplingTask,
    SeedStream,
    SerialExecutor,
    ThreadPoolExecutor,
    execute_sampling_task,
    make_executor,
    run_sampling_tasks,
    shard_budget,
)
from repro.lang.parser import parse_constraint_set, parse_path_condition

#: A non-trivial workload: two disjoint paths, a shared non-linear factor.
CONSTRAINTS = "x * x + y * y <= 1 && z <= 0.5 || x * x + y * y <= 1 && z > 0.5 && z <= 0.75"

#: Small chunks so even tiny test budgets shard into several tasks.
CHUNK = 500


def _profile():
    return UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1), "z": (0, 1)})


def _double(value):
    return value * 2  # module-level so the process backend can pickle it


class TestSeedStream:
    def test_same_seed_reproduces_children(self):
        first = SeedStream(123).spawn(3)
        second = SeedStream(123).spawn(3)
        for a, b in zip(first, second):
            assert a.generator().integers(0, 10**9) == b.generator().integers(0, 10**9)

    def test_children_are_independent(self):
        left, right = SeedStream(5).spawn(2)
        assert left.generator().integers(0, 10**9) != right.generator().integers(0, 10**9)

    def test_spawn_order_is_the_identity(self):
        stream = SeedStream(9)
        first = stream.spawn_sequence()
        again = SeedStream(9)
        assert np.random.default_rng(first).integers(0, 10**9) == np.random.default_rng(
            again.spawn_sequence()
        ).integers(0, 10**9)
        assert stream.children_spawned == again.children_spawned == 1

    def test_spawn_seeds_are_ints_and_reproducible(self):
        seeds = SeedStream(42).spawn_seeds(4)
        assert all(isinstance(seed, int) for seed in seeds)
        assert seeds == SeedStream(42).spawn_seeds(4)
        assert len(set(seeds)) == 4

    def test_negative_spawn_rejected(self):
        with pytest.raises(ValueError):
            SeedStream(1).spawn(-1)


class TestShardBudget:
    def test_chunks_sum_to_budget(self):
        assert sum(shard_budget(10_123, 1_000)) == 10_123

    def test_chunk_sizes(self):
        assert shard_budget(2_500, 1_000) == [1_000, 1_000, 500]
        assert shard_budget(999, 1_000) == [999]
        assert shard_budget(0, 1_000) == []

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_budget(-1, 100)
        with pytest.raises(ConfigurationError):
            shard_budget(100, 0)


class TestExecutors:
    def test_make_executor_kinds(self):
        for kind in EXECUTOR_KINDS:
            backend = make_executor(kind, workers=2)
            assert backend.kind == kind
            backend.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor("gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ThreadPoolExecutor(0)

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_map_preserves_order(self, kind):
        with make_executor(kind, workers=2) as backend:
            assert backend.map(_double, list(range(20))) == [2 * i for i in range(20)]

    def test_describe(self):
        assert SerialExecutor().describe() == "serial"
        with ThreadPoolExecutor(4) as backend:
            assert backend.describe() == "thread×4"

    def test_close_is_idempotent(self):
        backend = ThreadPoolExecutor(2)
        backend.map(_double, [1, 2])
        backend.close()
        backend.close()


class TestShardedSampling:
    def test_chunked_merge_equals_one_shot(self):
        """Chunked SamplingResult merging reproduces the one-shot counts."""
        pc = parse_path_condition("x * x + y * y <= 1")
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        one_shot = hit_or_miss_sharded(pc, profile, 4_000, SeedStream(11), chunk_size=1_000)

        # Re-run the identical plan by hand and merge the partial results.
        stream = SeedStream(11)
        tasks = [
            SamplingTask(pc=pc, profile=profile, samples=1_000, seed=stream.spawn_sequence(), variables=("x", "y"))
            for _ in range(4)
        ]
        merged = None
        for task in tasks:
            hits, samples = execute_sampling_task(task)
            from repro.core.montecarlo import SamplingResult

            part = SamplingResult(Estimate.from_hits(hits, samples), hits, samples)
            merged = part if merged is None else merged.merge(part)
        assert merged.hits == one_shot.hits
        assert merged.samples == one_shot.samples
        assert merged.estimate == one_shot.estimate

    @pytest.mark.parametrize("kind,workers", [("serial", 1), ("thread", 2), ("thread", 4), ("process", 2)])
    def test_backends_bit_identical(self, kind, workers):
        pc = parse_path_condition("x * x + y * y <= 1")
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        reference = hit_or_miss_sharded(pc, profile, 3_000, SeedStream(3), chunk_size=CHUNK)
        with make_executor(kind, workers=workers) as backend:
            result = hit_or_miss_sharded(pc, profile, 3_000, SeedStream(3), executor=backend, chunk_size=CHUNK)
        assert result.hits == reference.hits
        assert result.estimate == reference.estimate

    def test_chunk_size_changes_plan_but_not_validity(self):
        pc = parse_path_condition("x >= 0")
        profile = UsageProfile.uniform({"x": (-1, 1)})
        coarse = hit_or_miss_sharded(pc, profile, 2_000, SeedStream(1), chunk_size=2_000)
        fine = hit_or_miss_sharded(pc, profile, 2_000, SeedStream(1), chunk_size=250)
        for result in (coarse, fine):
            assert result.samples == 2_000
            assert result.estimate.mean == pytest.approx(0.5, abs=0.05)


class TestStratifiedParallel:
    def test_plan_absorb_matches_extend(self):
        """Running a plan elsewhere and absorbing equals in-place extension."""
        pc = parse_path_condition("x * x + y * y <= 1")
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        direct = StratifiedSampler(pc, profile, None, seed_stream=SeedStream(21), chunk_size=CHUNK)
        direct.extend(2_000)

        planned_sampler = StratifiedSampler(pc, profile, None, seed_stream=SeedStream(21), chunk_size=CHUNK)
        planned = planned_sampler.plan_extension(2_000)
        assert planned, "expected at least one sampleable stratum"
        for (stratum_index, task), (hits, samples) in zip(
            planned, run_sampling_tasks(None, [task for _, task in planned])
        ):
            planned_sampler.absorb_chunk(stratum_index, hits, samples)
        assert planned_sampler.estimate() == direct.estimate()
        assert planned_sampler.total_samples == direct.total_samples == 2_000

    def test_sampler_requires_rng_or_stream(self):
        pc = parse_path_condition("x >= 0")
        with pytest.raises(ConfigurationError):
            StratifiedSampler(pc, UsageProfile.uniform({"x": (-1, 1)}), None)

    def test_executor_backed_extend_matches_serial(self):
        pc = parse_path_condition("x * x + y * y <= 1")
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        serial = StratifiedSampler(pc, profile, None, seed_stream=SeedStream(8), chunk_size=CHUNK)
        serial.extend(1_500)
        with make_executor("thread", workers=3) as backend:
            threaded = StratifiedSampler(
                pc, profile, None, seed_stream=SeedStream(8), executor=backend, chunk_size=CHUNK
            )
            threaded.extend(1_500)
        assert threaded.estimate() == serial.estimate()


class TestAnalyzerDeterminism:
    """Same master seed => identical QCoralResult on every backend/worker count."""

    @pytest.fixture(scope="class")
    def reference(self):
        config = QCoralConfig(samples_per_query=3_000, seed=17, executor="serial", chunk_size=CHUNK)
        return quantify(parse_constraint_set(CONSTRAINTS), _profile(), config)

    @pytest.mark.parametrize(
        "kind,workers",
        [("serial", 1), ("thread", 1), ("thread", 2), ("thread", 4), ("process", 1), ("process", 2), ("process", 4)],
    )
    def test_backend_and_worker_count_invariance(self, reference, kind, workers):
        config = QCoralConfig(samples_per_query=3_000, seed=17, executor=kind, workers=workers, chunk_size=CHUNK)
        result = quantify(parse_constraint_set(CONSTRAINTS), _profile(), config)
        assert result.mean == reference.mean
        assert result.variance == reference.variance
        assert result.total_samples == reference.total_samples

    def test_adaptive_neyman_invariance(self):
        """The variance-driven loop re-allocates identically on all backends."""
        def run(kind, workers):
            config = replace(QCoralConfig.adaptive(4_000, seed=5).with_executor(kind, workers), chunk_size=CHUNK)
            return quantify(parse_constraint_set(CONSTRAINTS), _profile(), config)

        serial = run("serial", None)
        threaded = run("thread", 3)
        assert serial.rounds == threaded.rounds
        assert serial.mean == threaded.mean
        assert serial.variance == threaded.variance

    def test_plain_mc_configuration_invariance(self):
        """The no-STRAT path (whole-domain hit-or-miss) shards identically."""
        def run(kind, workers):
            config = QCoralConfig(
                samples_per_query=2_000,
                stratified=False,
                partition_and_cache=False,
                seed=29,
                executor=kind,
                workers=workers,
                chunk_size=CHUNK,
            )
            return quantify(parse_constraint_set(CONSTRAINTS), _profile(), config)

        assert run("serial", None).estimate == run("thread", 2).estimate

    def test_legacy_path_unchanged_by_default(self):
        """executor=None keeps the pre-subsystem single-stream behaviour."""
        config = QCoralConfig(samples_per_query=2_000, seed=13)
        first = quantify(parse_constraint_set(CONSTRAINTS), _profile(), config)
        second = quantify(parse_constraint_set(CONSTRAINTS), _profile(), config)
        assert first.estimate == second.estimate
        assert first.executor is None

    def test_executor_recorded_in_repr(self):
        config = QCoralConfig(samples_per_query=1_000, seed=1, executor="thread", workers=2, chunk_size=CHUNK)
        result = quantify(parse_constraint_set("x >= 0"), UsageProfile.uniform({"x": (-1, 1)}), config)
        assert "exec=thread×2" in repr(result)

    def test_invalid_executor_config_rejected(self):
        with pytest.raises(ConfigurationError):
            QCoralConfig(executor="gpu")
        with pytest.raises(ConfigurationError):
            QCoralConfig(executor="thread", workers=0)
        with pytest.raises(ConfigurationError):
            QCoralConfig(chunk_size=0)
        with pytest.raises(ConfigurationError):
            # workers without a backend would be silently ignored otherwise.
            QCoralConfig(workers=2)

    def test_borrowed_executor_not_closed(self):
        backend = ThreadPoolExecutor(2)
        try:
            config = QCoralConfig(samples_per_query=1_000, seed=3, executor="thread", chunk_size=CHUNK)
            with QCoralAnalyzer(_profile(), config, executor=backend) as analyzer:
                analyzer.analyze(parse_constraint_set(CONSTRAINTS))
            # The borrowed pool must still be usable after analyzer close.
            assert backend.map(_double, [21]) == [42]
        finally:
            backend.close()


class TestThreadSafeCache:
    def test_concurrent_lookups_and_inserts(self):
        cache = EstimateCache()
        factors = [parse_path_condition(f"x <= {i}") for i in range(8)]
        errors = []

        def hammer(worker):
            try:
                for round_index in range(50):
                    factor = factors[(worker + round_index) % len(factors)]
                    if cache.get(factor) is None:
                        cache.put(factor, Estimate.exact(0.5))
                    cache.record_shared_hit()
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(cache) == len(factors)
        statistics = cache.statistics
        # Every iteration does exactly one get and one record_shared_hit:
        # the counters must balance despite 8 threads racing on them.
        assert statistics.lookups == 8 * 50 * 2

    def test_shared_analyzer_under_thread_backend(self):
        """One analyzer with PARTCACHE analysed concurrently stays consistent."""
        config = QCoralConfig(samples_per_query=1_000, seed=2, executor="thread", workers=2, chunk_size=CHUNK)
        with QCoralAnalyzer(_profile(), config) as analyzer:
            result = analyzer.analyze(parse_constraint_set(CONSTRAINTS))
        assert 0.0 <= result.mean <= 1.0


class TestRunnerExecutor:
    def test_trial_seeds_prefix_stable(self):
        assert trial_seeds(3, base_seed=4) == trial_seeds(5, base_seed=4)[:3]

    def test_thread_executor_matches_serial(self):
        def run(seed):
            rng = np.random.default_rng(seed)
            return float(rng.random()), 0.0

        serial = repeat_analysis(run, runs=6, base_seed=3)
        with ThreadPoolExecutor(3) as backend:
            threaded = repeat_analysis(run, runs=6, base_seed=3, executor=backend)
        assert [o.estimate for o in threaded.outcomes] == [o.estimate for o in serial.outcomes]

    def test_repeat_quantification_with_executor(self):
        def run(seed):
            config = QCoralConfig(samples_per_query=500, seed=seed)
            return quantify(
                parse_constraint_set("x * x + y * y <= 1"),
                UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)}),
                config,
            )

        with ThreadPoolExecutor(2) as backend:
            aggregated = repeat_quantification(run, runs=4, base_seed=1, executor=backend)
        assert aggregated.runs == 4
        assert aggregated.mean_estimate == pytest.approx(np.pi / 4, abs=0.1)
        assert aggregated.mean_samples == 500


class TestCliExecutor:
    def test_quantify_with_executor_flag(self, capsys):
        exit_code = main(
            [
                "quantify",
                "x >= 0",
                "--domain",
                "x=-1:1",
                "--samples",
                "1000",
                "--seed",
                "1",
                "--executor",
                "thread",
                "--workers",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "executor:      thread×2" in captured.out

    def test_executor_flag_determinism_across_backends(self, capsys):
        outputs = []
        for kind in ("serial", "thread"):
            main(
                [
                    "quantify",
                    "x * x + y * y <= 1",
                    "--domain",
                    "x=-1:1",
                    "--domain",
                    "y=-1:1",
                    "--samples",
                    "2000",
                    "--seed",
                    "6",
                    "--executor",
                    kind,
                ]
            )
            out = capsys.readouterr().out
            outputs.append([line for line in out.splitlines() if line.startswith("probability:")])
        assert outputs[0] == outputs[1]
