"""Tests of the Session/Query/Report facade and the backend registries."""

import pytest

from repro.analysis.pipeline import ProbabilisticAnalysisPipeline, analyze_program
from repro.analysis.runner import repeat_quantification
from repro.api import (
    Query,
    Report,
    Session,
    register_executor,
    register_method,
    register_store_backend,
    unregister_executor,
    unregister_method,
    unregister_store_backend,
)
from repro.cli import build_parser, main
from repro.core.methods import ESTIMATION_METHODS, METHOD_REGISTRY
from repro.core.profiles import UniformDistribution, UsageProfile
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig, quantify
from repro.core.stratified import StratifiedSampler
from repro.errors import AnalysisError, ConfigurationError
from repro.exec.executor import EXECUTOR_KINDS, SerialExecutor, make_executor
from repro.lang.parser import parse_constraint_set
from repro.store.backends import STORE_BACKENDS, MemoryStore, open_store
from repro.subjects import programs

TRIANGLE = "x <= 0 - y && y <= x"
BOUNDS = {"x": (-1.0, 1.0), "y": (-1.0, 1.0)}


def triangle_profile():
    return UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})


class TestQueryBuilder:
    def test_fluent_methods_return_new_queries(self):
        with Session() as session:
            base = session.quantify(TRIANGLE, BOUNDS)
            refined = base.with_budget(5000).seed(7).until(std=1e-3, rounds=4)
            assert refined is not base
            assert base.compile().samples_per_query == QCoralConfig().samples_per_query
            config = refined.compile()
            assert config.samples_per_query == 5000
            assert config.seed == 7
            assert config.target_std == 1e-3
            assert config.max_rounds == 4

    def test_compile_applies_engine_invariants(self):
        with Session() as session:
            config = session.quantify(TRIANGLE, BOUNDS).method("importance").compile()
            # The engine's auto-upgrades run through the facade unchanged.
            assert config.allocation == "neyman"
            assert config.max_rounds > 1

    def test_configure_rejects_unknown_fields(self):
        with Session() as session:
            with pytest.raises(ConfigurationError):
                session.quantify(TRIANGLE, BOUNDS).configure(no_such_knob=1)

    def test_until_needs_an_argument(self):
        with Session() as session:
            with pytest.raises(ConfigurationError):
                session.quantify(TRIANGLE, BOUNDS).until()

    def test_profile_coercion(self):
        with Session() as session:
            query = session.quantify(
                "x >= 0 && n <= 3 && z <= 0.5",
                {"x": (-1.0, 1.0), "n": "int:0:10", "z": UniformDistribution(0, 1)},
            )
            report = query.with_budget(2000).seed(1).run()
            assert 0.0 <= report.mean <= 1.0

    def test_quantify_without_profile_fails_at_run(self):
        with Session() as session:
            query = session.quantify(TRIANGLE)
            with pytest.raises(ConfigurationError):
                query.run()

    def test_features_toggle(self):
        with Session() as session:
            config = session.quantify(TRIANGLE, BOUNDS).features(stratified=False, partition_and_cache=False).compile()
            assert not config.stratified and not config.partition_and_cache
            with pytest.raises(ConfigurationError):
                session.quantify(TRIANGLE, BOUNDS).features()


class TestRunAndStream:
    def test_run_matches_legacy_quantify_bit_for_bit(self):
        config = QCoralConfig.strat_partcache(4000, seed=11)
        legacy = quantify(parse_constraint_set(TRIANGLE), triangle_profile(), config)
        with Session() as session:
            report = session.quantify(TRIANGLE, BOUNDS, config=config).run()
        assert report.mean == legacy.mean
        assert report.std == legacy.std
        assert report.total_samples == legacy.total_samples

    def test_stream_yields_the_same_rounds_as_run(self):
        with Session() as session:
            query = session.quantify(TRIANGLE, BOUNDS).with_budget(4000).seed(2).until(std=1e-4, rounds=5)
            streamed = [(r.round_index, r.mean, r.std) for r in query.stream()]
            report = query.run()
        assert streamed == [(r.round_index, r.mean, r.std) for r in report.round_reports]
        assert len(streamed) > 1

    def test_stream_early_stop(self):
        with Session() as session:
            query = session.quantify(TRIANGLE, BOUNDS).with_budget(4000).seed(2).until(rounds=5)
            stream = query.stream()
            first = next(stream)
            assert first.round_index == 1
            stream.stop()
            report = stream.report
        # Stopping after the first yield finalises with the rounds drawn so far.
        assert report.rounds == 1
        assert report.round_reports[0].mean == first.mean
        assert report.total_samples == first.total_samples

    def test_stream_report_without_stop_finalises_early(self):
        with Session() as session:
            query = session.quantify(TRIANGLE, BOUNDS).with_budget(4000).seed(2).until(rounds=5)
            stream = query.stream()
            next(stream)
            next(stream)
            report = stream.report  # implicit early stop
        assert report.rounds == 2

    def test_abandoned_stream_still_flushes_the_store(self):
        # Breaking out and closing the stream (no .report) must still publish
        # the drawn samples: the engine finalises on GeneratorExit.
        store = MemoryStore()
        with Session(store=store) as session:
            query = session.quantify(TRIANGLE, BOUNDS).with_budget(4000).seed(2).until(rounds=5)
            stream = query.stream()
            next(stream)
            stream.close()
            assert len(store) > 0
            assert store.statistics.writes > 0

    def test_closed_stream_stops_iterating(self):
        with Session() as session:
            stream = session.quantify(TRIANGLE, BOUNDS).with_budget(2000).seed(1).stream()
            stream.close()
            assert list(stream) == []
            with pytest.raises(AnalysisError):
                stream.report

    def test_program_query_matches_legacy_pipeline(self):
        config = QCoralConfig.strat_partcache(3000, seed=5)
        legacy = analyze_program(programs.SAFETY_MONITOR, programs.SAFETY_MONITOR_EVENT, config=config)
        with Session() as session:
            report = session.analyze(programs.SAFETY_MONITOR, programs.SAFETY_MONITOR_EVENT, config=config).run()
        assert report.kind == "program"
        assert report.event == programs.SAFETY_MONITOR_EVENT
        assert report.mean == legacy.mean
        assert report.std == legacy.std
        assert report.bounded.mean == legacy.bounded_probability.mean

    def test_stopped_program_stream_skips_the_bounded_analysis(self):
        source = """
        input x in [0.01, 1];
        total = 0;
        while (total <= 3) { total = total + x; }
        observe(done);
        """
        with Session() as session:
            query = session.analyze(source, "done", max_depth=8).with_budget(4000).seed(4).until(rounds=4)
            # Full run: the bound-hitting mass is quantified (it is positive here).
            full = query.run()
            assert full.bounded is not None and full.bounded.mean > 0.0
            # Cancelled run: the bounded analysis must not run to full budget
            # behind the caller's back; the unknown mass is reported as None.
            stream = query.stream()
            next(stream)
            stream.stop()
            partial = stream.report
        assert partial.rounds == 1
        assert partial.bounded is None
        assert partial.confidence_note == ""

    def test_program_query_unknown_event(self):
        with Session() as session:
            query = session.analyze(programs.SAFETY_MONITOR, "noSuchEvent", config=QCoralConfig.plain(100))
            with pytest.raises(AnalysisError):
                query.run()

    def test_repeat_matches_repeat_quantification(self):
        config = QCoralConfig.strat_partcache(1500)
        constraint_set = parse_constraint_set(TRIANGLE)
        legacy = repeat_quantification(
            lambda seed: quantify(constraint_set, triangle_profile(), config.with_seed(seed)),
            runs=3,
            base_seed=9,
        )
        with Session() as session:
            report = session.quantify(TRIANGLE, BOUNDS, config=config).repeat(runs=3, base_seed=9)
        assert report.kind == "repeated"
        assert report.mean == legacy.mean_estimate
        assert report.std == pytest.approx(legacy.empirical_std)
        assert [t.estimate for t in report.trials] == [t.estimate for t in legacy.outcomes]
        # The repeated report keeps the trials' shared configuration metadata.
        assert report.method == "hit-or-miss"
        assert report.feature_label == "qCORAL{STRAT,PARTCACHE}"

    def test_report_drilldown_fields(self):
        with Session() as session:
            report = session.quantify(TRIANGLE, BOUNDS).with_budget(2000).seed(1).run()
        assert report.paths == len(report.path_reports) == 1
        assert report.feature_label == "qCORAL{STRAT,PARTCACHE}"
        assert report.cache_statistics is not None


class CountingExecutor(SerialExecutor):
    """Serial backend that counts close() calls (lifecycle assertions)."""

    def __init__(self):
        self.closes = 0

    def close(self):
        self.closes += 1


class CountingStore(MemoryStore):
    def __init__(self):
        super().__init__()
        self.closes = 0

    def close(self):
        self.closes += 1
        super().close()


class TestLifecycles:
    def test_session_owns_named_executor(self):
        session = Session(executor="serial")
        first = session.executor
        assert first is session.executor  # lazily built once
        session.close()
        session.close()  # idempotent
        assert session.closed
        with pytest.raises(ConfigurationError):
            session.quantify(TRIANGLE, BOUNDS)

    def test_explicit_config_executor_beats_the_session_executor(self):
        # A backend named in the base config is an explicit request: it must
        # run there (analyzer-owned), not silently on the session's backend.
        config = QCoralConfig(samples_per_query=1000, seed=1, executor="thread", workers=2)
        with Session(executor="serial") as session:
            report = session.quantify(TRIANGLE, BOUNDS, config=config).run()
        assert report.executor == "thread×2"

    def test_explicit_config_store_beats_the_session_store(self, tmp_path):
        session_store = MemoryStore()
        config = QCoralConfig(samples_per_query=1000, seed=1).with_store(str(tmp_path / "own.jsonl"))
        with Session(store=session_store) as session:
            report = session.quantify(TRIANGLE, BOUNDS, config=config).run()
        assert report.store == "jsonl:own.jsonl"
        assert len(session_store) == 0  # nothing leaked into the session store

    def test_failed_stream_report_names_the_real_cause(self):
        with Session() as session:
            # Profile misses 'y': the engine fails on the first round.
            stream = session.quantify(TRIANGLE, {"x": (-1.0, 1.0)}).with_budget(500).stream()
            with pytest.raises(Exception):
                next(stream)
            with pytest.raises(AnalysisError, match="already failed"):
                stream.report

    def test_session_borrows_executor_instances(self):
        pool = CountingExecutor()
        with Session(executor=pool) as session:
            report = session.quantify(TRIANGLE, BOUNDS).with_budget(1000).seed(1).run()
            assert report.executor == "serial"
        session.close()
        assert pool.closes == 0  # borrowed, never closed by the session

    def test_session_borrows_store_instances(self):
        store = CountingStore()
        with Session(store=store) as session:
            report = session.quantify(TRIANGLE, BOUNDS).with_budget(1000).seed(1).run()
            assert report.store == "memory"
        assert store.closes == 0
        assert len(store) > 0  # the query actually published through it

    def test_session_shares_store_across_queries(self):
        store = MemoryStore()
        with Session(store=store) as session:
            cold = session.quantify(TRIANGLE, BOUNDS).with_budget(2000).seed(3).run()
            warm = session.quantify(TRIANGLE, BOUNDS).with_budget(2000).seed(3).run()
        assert cold.cache_statistics.warm_starts == 0
        # The second query reuses the first one's published counts outright.
        assert warm.total_samples == 0
        assert warm.cache_statistics.store_hits > 0

    def test_lazy_resources_are_created_once_under_concurrency(self):
        # Regression: two threads racing session.executor/.store must share
        # one instance (the loser of an unsynchronized race leaked a pool).
        import threading

        session = Session(executor="serial", store_backend="memory")
        seen = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            seen.append((session.executor, session.store))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(executor) for executor, _ in seen}) == 1
        assert len({id(store) for _, store in seen}) == 1
        session.close()

    def test_lazy_ledger_is_created_once_under_concurrency(self):
        # Regression: concurrent first-touch of session.ledger (e.g. two
        # server requests finishing at once) must share one ledger instance,
        # exactly like the executor/store lazy creation above.
        import threading

        session = Session(ledger_backend="memory")
        seen = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            seen.append(session.ledger)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(ledger) for ledger in seen}) == 1
        session.close()

    def test_profile_accepts_list_bounds_and_wraps_bad_specs(self):
        # JSON-shaped profiles arrive with lists, not tuples.
        with Session() as session:
            report = session.quantify(TRIANGLE, {"x": [-1, 1], "y": [-1.0, 1.0]}).with_budget(500).seed(1).run()
            assert 0.0 <= report.mean <= 1.0
            # Malformed spec strings surface as ConfigurationError naming the
            # variable — a clean 400 for the server, never a traceback.
            with pytest.raises(ConfigurationError, match="binomial:n:p"):
                session.quantify(TRIANGLE, {"x": "binomial:n:p", "y": (-1, 1)})

    def test_session_validation(self):
        with pytest.raises(ConfigurationError):
            Session(workers=2)  # workers without a kind name
        with pytest.raises(ConfigurationError):
            Session(store_readonly=True)  # readonly without a store
        with pytest.raises(ConfigurationError):
            Session(store=MemoryStore(), store_backend="sqlite")
        # Typo'd backend names fail at the construction site, not first use.
        with pytest.raises(ConfigurationError):
            Session(executor="proces")
        with pytest.raises(ConfigurationError):
            Session(store="x.db", store_backend="sqllite")

    def test_profile_coercion_rejects_non_numeric_pairs(self):
        with Session() as session:
            with pytest.raises(ConfigurationError):
                session.quantify(TRIANGLE, {"x": (0, "wide")})

    def test_analyzer_close_is_idempotent(self):
        analyzer = QCoralAnalyzer(triangle_profile(), QCoralConfig(executor="serial"))
        assert not analyzer.closed
        analyzer.close()
        analyzer.close()
        assert analyzer.closed

    def test_analyzer_nested_context_entry_never_double_closes(self):
        pool = CountingExecutor()
        store = CountingStore()
        analyzer = QCoralAnalyzer(triangle_profile(), QCoralConfig(), executor=pool, store=store)
        with analyzer:
            with analyzer:
                pass
            # Inner exit already closed; outer exit must be a no-op.
            assert analyzer.closed
        assert pool.closes == 0 and store.closes == 0  # borrowed

    def test_pipeline_close_is_idempotent(self):
        pool = CountingExecutor()
        pipeline = ProbabilisticAnalysisPipeline(
            programs.SAFETY_MONITOR, config=QCoralConfig.plain(200, seed=1), executor=pool
        )
        with pipeline:
            with pipeline:
                pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        pipeline.close()
        assert pipeline.closed
        assert pool.closes == 0


class TestRegistries:
    def test_register_method_end_to_end(self):
        def make_sampler(factor, profile, rng, *, variables, solver, seed_stream, chunk_size, config):
            return StratifiedSampler(
                factor,
                profile,
                rng,
                variables=variables,
                solver=solver,
                seed_stream=seed_stream,
                chunk_size=chunk_size,
            )

        register_method("strat-twin", make_sampler, requires_stratified=True, feature="TWIN")
        try:
            assert "strat-twin" in ESTIMATION_METHODS
            config = QCoralConfig(samples_per_query=2000, seed=6, method="strat-twin")
            assert "TWIN" in config.feature_label()
            baseline = QCoralConfig(samples_per_query=2000, seed=6)
            with Session() as session:
                twin = session.quantify(TRIANGLE, BOUNDS, config=config).run()
                reference = session.quantify(TRIANGLE, BOUNDS, config=baseline).run()
            # Same sampler factory + same seed => identical numbers: the
            # registry drives method resolution end to end.
            assert twin.mean == reference.mean and twin.std == reference.std
            # The CLI picks registered methods up through the live choices.
            args = build_parser().parse_args(["quantify", "x >= 0", "--domain", "x=0:1", "--method", "strat-twin"])
            assert args.method == "strat-twin"
        finally:
            unregister_method("strat-twin")
        assert "strat-twin" not in ESTIMATION_METHODS
        with pytest.raises(ConfigurationError):
            QCoralConfig(method="strat-twin")

    def test_registered_method_requires_stratified(self):
        register_method("needs-strat", lambda *a, **k: None, requires_stratified=True)
        try:
            with pytest.raises(ConfigurationError):
                QCoralConfig(method="needs-strat", stratified=False)
        finally:
            unregister_method("needs-strat")

    def test_register_executor_end_to_end(self):
        created = []

        def factory(workers=None):
            executor = SerialExecutor()
            created.append(executor)
            return executor

        register_executor("recording-serial", factory)
        try:
            assert "recording-serial" in EXECUTOR_KINDS
            assert isinstance(make_executor("recording-serial"), SerialExecutor)
            config = QCoralConfig(samples_per_query=1000, seed=1, executor="recording-serial")
            with Session(executor="recording-serial") as session:
                report = session.quantify(TRIANGLE, BOUNDS, config=config.with_executor(None)).run()
            assert report.executor == "serial"
            assert len(created) == 2  # make_executor above + the session's
        finally:
            unregister_executor("recording-serial")
        with pytest.raises(ConfigurationError):
            QCoralConfig(executor="recording-serial")

    def test_register_store_backend_end_to_end(self):
        register_store_backend("scratch", lambda path, readonly=False: MemoryStore(readonly=readonly))
        try:
            assert "scratch" in STORE_BACKENDS
            store = open_store(None, "scratch")
            assert isinstance(store, MemoryStore)
            with Session(store_backend="scratch") as session:
                report = session.quantify(TRIANGLE, BOUNDS).with_budget(1000).seed(1).run()
                assert report.store == "memory"
        finally:
            unregister_store_backend("scratch")

    def test_unregister_unknown_name_raises_promptly(self):
        # Regression: this used to deadlock (error message built while the
        # registry lock was still held).
        with pytest.raises(ConfigurationError):
            unregister_method("never-registered")
        with pytest.raises(ConfigurationError):
            unregister_executor("never-registered")
        with pytest.raises(ConfigurationError):
            unregister_store_backend("never-registered")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ConfigurationError):
            register_executor("serial", lambda workers=None: SerialExecutor())
        # replace=True is the explicit override path.
        original = METHOD_REGISTRY.get("hit-or-miss")
        register_method(
            "hit-or-miss",
            original.make_sampler,
            store_method=original.store_method,
            requires_stratified=original.requires_stratified,
            replace=True,
        )
        METHOD_REGISTRY.register("hit-or-miss", original, replace=True)

    def test_builtin_registries_contents(self):
        assert tuple(EXECUTOR_KINDS) == ("serial", "thread", "process")
        assert tuple(STORE_BACKENDS) == ("memory", "jsonl", "sqlite")
        assert tuple(ESTIMATION_METHODS) == ("hit-or-miss", "importance")
        assert EXECUTOR_KINDS == ("serial", "thread", "process")


class TestCliFacade:
    def test_json_output_matches_report_schema(self, capsys):
        exit_code = main(
            [
                "quantify",
                TRIANGLE,
                "--domain",
                "x=-1:1",
                "--domain",
                "y=-1:1",
                "--samples",
                "2000",
                "--seed",
                "1",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        import json

        payload = json.loads(captured.out)
        with Session() as session:
            report = session.quantify(TRIANGLE, BOUNDS, config=QCoralConfig.strat_partcache(2000, seed=1)).run()
        expected = report.to_dict()
        payload["time"] = expected["time"] = 0.0
        assert payload == expected

    def test_analyze_json_output(self, tmp_path, capsys):
        program_file = tmp_path / "monitor.prog"
        program_file.write_text(programs.SAFETY_MONITOR)
        exit_code = main(
            [
                "analyze",
                str(program_file),
                programs.SAFETY_MONITOR_EVENT,
                "--samples",
                "1000",
                "--seed",
                "2",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        import json

        payload = json.loads(captured.out)
        assert payload["kind"] == "program"
        assert payload["event"] == programs.SAFETY_MONITOR_EVENT
        assert payload["bounded"] is not None


class TestQueryRepr:
    def test_query_is_a_frozen_dataclass(self):
        with Session() as session:
            query = session.quantify(TRIANGLE, BOUNDS)
            assert isinstance(query, Query)
            with pytest.raises(AttributeError):
                query._settings = ()

    def test_report_repr_mentions_kind(self):
        with Session() as session:
            report = session.quantify(TRIANGLE, BOUNDS).with_budget(500).seed(1).run()
        assert isinstance(report, Report)
        assert "kind='quantification'" in repr(report)
