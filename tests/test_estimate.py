"""Unit tests for the Estimate algebra (Equations 2–8 of the paper)."""

import math

import pytest

from repro.core.estimate import Estimate, product_independent, sum_disjoint


class TestConstruction:
    def test_from_hits_mean_and_variance(self):
        estimate = Estimate.from_hits(25, 100)
        assert estimate.mean == pytest.approx(0.25)
        assert estimate.variance == pytest.approx(0.25 * 0.75 / 100)

    def test_from_hits_extremes(self):
        assert Estimate.from_hits(0, 50).variance == 0.0
        assert Estimate.from_hits(50, 50).variance == 0.0

    def test_from_hits_invalid(self):
        with pytest.raises(ValueError):
            Estimate.from_hits(5, 0)
        with pytest.raises(ValueError):
            Estimate.from_hits(11, 10)
        with pytest.raises(ValueError):
            Estimate.from_hits(-1, 10)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Estimate(math.nan, 0.0)

    def test_negative_variance_clamped(self):
        assert Estimate(0.5, -1e-18).variance == 0.0

    def test_zero_and_one(self):
        assert Estimate.zero().mean == 0.0 and Estimate.zero().variance == 0.0
        assert Estimate.one().mean == 1.0 and Estimate.one().variance == 0.0

    def test_std(self):
        assert Estimate(0.5, 0.04).std == pytest.approx(0.2)


class TestChebyshev:
    def test_interval_contains_mean(self):
        lower, upper = Estimate(0.4, 0.001).chebyshev_interval(0.95)
        assert lower <= 0.4 <= upper

    def test_interval_clipped_to_unit(self):
        lower, upper = Estimate(0.99, 0.01).chebyshev_interval(0.99)
        assert 0.0 <= lower and upper <= 1.0

    def test_zero_variance_gives_point(self):
        assert Estimate(0.3, 0.0).chebyshev_interval() == (0.3, 0.3)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            Estimate(0.5, 0.1).chebyshev_interval(1.5)

    def test_clamped(self):
        assert Estimate(1.2, 0.1).clamped().mean == 1.0
        assert Estimate(-0.1, 0.1).clamped().mean == 0.0


class TestComposition:
    def test_scale_mean_linear_variance_quadratic(self):
        scaled = Estimate(0.5, 0.01).scale(0.5)
        assert scaled.mean == pytest.approx(0.25)
        assert scaled.variance == pytest.approx(0.0025)

    def test_scale_negative_rejected(self):
        with pytest.raises(ValueError):
            Estimate(0.5, 0.1).scale(-1.0)

    def test_add_disjoint_equations_5_and_6(self):
        combined = Estimate(0.2, 0.001).add_disjoint(Estimate(0.3, 0.002))
        assert combined.mean == pytest.approx(0.5)
        assert combined.variance == pytest.approx(0.003)

    def test_multiply_independent_equations_7_and_8(self):
        a = Estimate(0.4, 0.001)
        b = Estimate(0.5, 0.002)
        combined = a.multiply_independent(b)
        assert combined.mean == pytest.approx(0.2)
        expected_variance = 0.4 ** 2 * 0.002 + 0.5 ** 2 * 0.001 + 0.001 * 0.002
        assert combined.variance == pytest.approx(expected_variance)

    def test_multiply_by_certain_event_is_identity(self):
        a = Estimate(0.37, 0.004)
        product = a.multiply_independent(Estimate.one())
        assert product.mean == pytest.approx(a.mean)
        assert product.variance == pytest.approx(a.variance)

    def test_multiply_by_impossible_event_is_zero(self):
        product = Estimate(0.37, 0.004).multiply_independent(Estimate.zero())
        assert product.mean == 0.0

    def test_sum_disjoint_fold(self):
        total = sum_disjoint([Estimate(0.1, 0.001)] * 3)
        assert total.mean == pytest.approx(0.3)
        assert total.variance == pytest.approx(0.003)

    def test_sum_disjoint_empty(self):
        assert sum_disjoint([]).mean == 0.0

    def test_product_independent_fold(self):
        product = product_independent([Estimate(0.5, 0.0), Estimate(0.5, 0.0), Estimate(0.5, 0.0)])
        assert product.mean == pytest.approx(0.125)
        assert product.variance == 0.0

    def test_product_independent_empty_is_one(self):
        assert product_independent([]).mean == 1.0

    def test_product_matches_pairwise_composition_order_invariance(self):
        estimates = [Estimate(0.3, 0.002), Estimate(0.7, 0.001), Estimate(0.5, 0.004)]
        forward = product_independent(estimates)
        backward = product_independent(list(reversed(estimates)))
        assert forward.mean == pytest.approx(backward.mean)
        assert forward.variance == pytest.approx(backward.variance)

    def test_paper_section_44_composition(self):
        """Reproduce the composition worked out in the paper's Section 4.4."""
        altitude_le_9000 = Estimate(0.45, 0.0)
        sin_constraint = Estimate(0.417975, 8.103406e-6)
        pc2 = altitude_le_9000.multiply_independent(sin_constraint)
        assert pc2.mean == pytest.approx(0.188089, abs=1e-6)
        assert pc2.variance == pytest.approx(1.64094e-6, rel=1e-3)
        pc1 = Estimate(0.55, 0.0)
        total = pc1.add_disjoint(pc2)
        assert total.mean == pytest.approx(0.738089, abs=1e-6)
        assert total.variance == pytest.approx(1.64094e-6, rel=1e-3)
