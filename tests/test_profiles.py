"""Unit tests for usage profiles and input distributions."""

import numpy as np
import pytest

from repro.core.profiles import (
    PiecewiseUniformDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
    UsageProfile,
)
from repro.errors import DomainError
from repro.intervals import Box, Interval


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestUniformDistribution:
    def test_support(self):
        dist = UniformDistribution(-1, 3)
        assert dist.support == Interval(-1.0, 3.0)

    def test_invalid_bounds(self):
        with pytest.raises(DomainError):
            UniformDistribution(2, 1)
        with pytest.raises(DomainError):
            UniformDistribution(0, float("inf"))

    def test_measure_is_relative_width(self):
        dist = UniformDistribution(0, 4)
        assert dist.measure(Interval(1, 2)) == pytest.approx(0.25)
        assert dist.measure(Interval(-5, 5)) == pytest.approx(1.0)
        assert dist.measure(Interval(10, 11)) == 0.0

    def test_samples_respect_interval(self, rng):
        dist = UniformDistribution(0, 10)
        samples = dist.sample(rng, 500, Interval(2, 3))
        assert samples.min() >= 2.0 and samples.max() <= 3.0

    def test_samples_cover_support(self, rng):
        dist = UniformDistribution(0, 1)
        samples = dist.sample(rng, 2000)
        assert samples.mean() == pytest.approx(0.5, abs=0.05)

    def test_point_interval_sampling(self, rng):
        dist = UniformDistribution(0, 1)
        samples = dist.sample(rng, 10, Interval(0.5, 0.5))
        assert np.all(samples == 0.5)

    def test_sampling_outside_support_rejected(self, rng):
        with pytest.raises(DomainError):
            UniformDistribution(0, 1).sample(rng, 10, Interval(5, 6))


class TestTruncatedNormal:
    def test_measure_sums_to_one(self):
        dist = TruncatedNormalDistribution(mean=0.0, std=1.0, low=-2.0, high=2.0)
        assert dist.measure(dist.support) == pytest.approx(1.0)

    def test_measure_concentrates_near_mean(self):
        dist = TruncatedNormalDistribution(mean=0.0, std=1.0, low=-3.0, high=3.0)
        centre = dist.measure(Interval(-0.5, 0.5))
        tail = dist.measure(Interval(2.0, 3.0))
        assert centre > tail

    def test_samples_within_truncation(self, rng):
        dist = TruncatedNormalDistribution(mean=0.0, std=2.0, low=-1.0, high=1.0)
        samples = dist.sample(rng, 1000)
        assert samples.min() >= -1.0 and samples.max() <= 1.0

    def test_conditional_samples_within_interval(self, rng):
        dist = TruncatedNormalDistribution(mean=0.0, std=1.0, low=-3.0, high=3.0)
        samples = dist.sample(rng, 500, Interval(1.0, 2.0))
        assert samples.min() >= 1.0 and samples.max() <= 2.0

    def test_invalid_parameters(self):
        with pytest.raises(DomainError):
            TruncatedNormalDistribution(0.0, -1.0, 0.0, 1.0)
        with pytest.raises(DomainError):
            TruncatedNormalDistribution(0.0, 1.0, 2.0, 1.0)


class TestPiecewiseUniform:
    def test_measure_respects_weights(self):
        dist = PiecewiseUniformDistribution(edges=(0.0, 1.0, 2.0), weights=(3.0, 1.0))
        assert dist.measure(Interval(0.0, 1.0)) == pytest.approx(0.75)
        assert dist.measure(Interval(1.0, 2.0)) == pytest.approx(0.25)

    def test_measure_of_partial_bin(self):
        dist = PiecewiseUniformDistribution(edges=(0.0, 1.0, 2.0), weights=(1.0, 1.0))
        assert dist.measure(Interval(0.0, 0.5)) == pytest.approx(0.25)

    def test_sampling_respects_weights(self, rng):
        dist = PiecewiseUniformDistribution(edges=(0.0, 1.0, 2.0), weights=(9.0, 1.0))
        samples = dist.sample(rng, 4000)
        fraction_low = float(np.mean(samples < 1.0))
        assert fraction_low == pytest.approx(0.9, abs=0.05)

    def test_invalid_construction(self):
        with pytest.raises(DomainError):
            PiecewiseUniformDistribution(edges=(0.0,), weights=())
        with pytest.raises(DomainError):
            PiecewiseUniformDistribution(edges=(0.0, 1.0), weights=(-1.0,))
        with pytest.raises(DomainError):
            PiecewiseUniformDistribution(edges=(1.0, 0.0), weights=(1.0,))


class TestUsageProfile:
    def test_uniform_constructor_and_domain(self):
        profile = UsageProfile.uniform({"x": (0, 1), "y": (-1, 1)})
        domain = profile.domain()
        assert domain.interval("x") == Interval(0.0, 1.0)
        assert domain.interval("y") == Interval(-1.0, 1.0)

    def test_empty_profile_rejected(self):
        with pytest.raises(DomainError):
            UsageProfile({})

    def test_weight_matches_relative_volume_for_uniform(self):
        profile = UsageProfile.uniform({"x": (0, 2), "y": (0, 2)})
        box = Box.from_bounds({"x": (0, 1), "y": (0, 1)})
        assert profile.weight(box) == pytest.approx(0.25)

    def test_weight_for_projected_box(self):
        profile = UsageProfile.uniform({"x": (0, 2), "y": (0, 2)})
        box = Box.from_bounds({"x": (0, 1)})
        assert profile.weight(box) == pytest.approx(0.5)

    def test_sample_returns_requested_variables(self, rng):
        profile = UsageProfile.uniform({"x": (0, 1), "y": (0, 1), "z": (0, 1)})
        batch = profile.sample(rng, 100, variables=["x", "z"])
        assert set(batch) == {"x", "z"}
        assert len(batch["x"]) == 100

    def test_sample_within_box(self, rng):
        profile = UsageProfile.uniform({"x": (0, 10), "y": (0, 10)})
        box = Box.from_bounds({"x": (1, 2), "y": (3, 4)})
        batch = profile.sample(rng, 200, box=box)
        assert batch["x"].min() >= 1.0 and batch["x"].max() <= 2.0
        assert batch["y"].min() >= 3.0 and batch["y"].max() <= 4.0

    def test_restrict(self):
        profile = UsageProfile.uniform({"x": (0, 1), "y": (0, 2)})
        restricted = profile.restrict(["y"])
        assert restricted.variables == ("y",)
        with pytest.raises(DomainError):
            profile.restrict(["unknown"])

    def test_check_covers(self):
        profile = UsageProfile.uniform({"x": (0, 1)})
        profile.check_covers({"x"})
        with pytest.raises(DomainError):
            profile.check_covers({"x", "y"})

    def test_mixed_distributions(self, rng):
        profile = UsageProfile({"u": UniformDistribution(0, 1), "n": TruncatedNormalDistribution(0.5, 0.2, 0.0, 1.0)})
        batch = profile.sample(rng, 300)
        assert set(batch) == {"u", "n"}
        assert profile.weight(Box.from_bounds({"u": (0, 0.5), "n": (0, 1)})) == pytest.approx(0.5, abs=1e-6)
