"""Tests for the benchmark subjects (Tables 2, 3 and 4 of the paper)."""

import pytest

from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.lang.analysis import constraint_set_statistics
from repro.subjects import aerospace, solids, volcomp_suite
from repro.subjects.solids import all_solids, estimate_volume, solid_by_name


class TestSolids:
    def test_thirteen_subjects_in_three_groups(self):
        subjects = all_solids()
        assert len(subjects) == 13
        assert {s.group for s in subjects} == {
            "Convex Polyhedra",
            "Solids of Revolution",
            "Intersection",
        }

    def test_lookup_by_name(self):
        assert solid_by_name("cube").name == "Cube"
        with pytest.raises(KeyError):
            solid_by_name("dodecahedron")

    def test_bounding_boxes_contain_solids(self):
        """Volume never exceeds the bounding box volume."""
        for solid in all_solids():
            assert solid.analytical_volume <= solid.bounding_volume() + 1e-9

    def test_paper_matching_analytical_values(self):
        import math

        assert solid_by_name("Cube").analytical_volume == pytest.approx(8.0)
        assert solid_by_name("Sphere").analytical_volume == pytest.approx(4.0 / 3.0 * math.pi)
        assert solid_by_name("Cylinder").analytical_volume == pytest.approx(math.pi)
        assert solid_by_name("Cone").analytical_volume == pytest.approx(1.047198, abs=1e-5)
        assert solid_by_name("Conical frustrum").analytical_volume == pytest.approx(1.8326, abs=1e-3)
        assert solid_by_name("Torus").analytical_volume == pytest.approx(1.233701, abs=1e-5)
        assert solid_by_name("Oblate spheroid").analytical_volume == pytest.approx(16.755161, abs=1e-4)
        assert solid_by_name("Icosahedron").analytical_volume == pytest.approx(2.181695, abs=1e-5)

    def test_cube_estimate_is_exact(self):
        estimate = estimate_volume(solid_by_name("Cube"), samples=500, seed=1)
        assert estimate.volume == pytest.approx(8.0, abs=1e-9)
        assert estimate.std == 0.0

    @pytest.mark.parametrize("name", ["Sphere", "Cone", "Torus", "Tetrahedron"])
    def test_estimates_close_to_analytical(self, name):
        solid = solid_by_name(name)
        estimate = estimate_volume(solid, samples=4000, seed=3)
        assert estimate.relative_error < 0.1

    def test_estimate_scales_with_bounding_volume(self):
        solid = solid_by_name("Sphere")
        estimate = estimate_volume(solid, samples=2000, seed=5)
        assert 0.0 < estimate.volume < solid.bounding_volume()


class TestVolCompSuite:
    def test_eight_subjects_twenty_rows(self):
        subjects = volcomp_suite.all_subjects()
        assert len(subjects) == 8
        assert len(volcomp_suite.all_assertion_cases()) == 20

    def test_subject_lookup(self):
        subject = volcomp_suite.subject_by_name("pack")
        assert subject.name == "PACK"
        with pytest.raises(KeyError):
            volcomp_suite.subject_by_name("missing")

    def test_assertion_lookup(self):
        subject = volcomp_suite.subject_by_name("CART")
        assert subject.assertion("count >= 3").condition == "count >= 3"
        with pytest.raises(KeyError):
            subject.assertion("count >= 99")

    def test_profiles_cover_constraint_variables(self):
        for subject, assertion in volcomp_suite.all_assertion_cases():
            constraint_set = subject.constraint_set(assertion)
            subject.profile().check_covers(constraint_set.free_variables())

    def test_constraints_are_linear_style_programs(self):
        """Every Table 3 subject symbolically executes into at least one PC set."""
        subject = volcomp_suite.subject_by_name("CORONARY")
        cs = subject.constraint_set(subject.assertion("tmp >= 5"))
        stats = constraint_set_statistics(cs)
        assert stats.path_count >= 1
        assert stats.conjunct_count >= stats.path_count

    def test_pack_counts_are_monotone(self):
        """P(count >= 5) >= P(count >= 6) >= P(count >= 7)."""
        subject = volcomp_suite.subject_by_name("PACK")
        probabilities = []
        for label in ("count >= 5", "count >= 6", "count >= 7"):
            cs = subject.constraint_set(subject.assertion(label))
            analyzer = QCoralAnalyzer(subject.profile(), QCoralConfig.strat_partcache(2000, seed=4))
            probabilities.append(analyzer.analyze(cs).estimate.clamped().mean)
        assert probabilities[0] >= probabilities[1] - 0.05
        assert probabilities[1] >= probabilities[2] - 0.05

    def test_invpend_single_path(self):
        subject = volcomp_suite.subject_by_name("INVPEND")
        cs = subject.constraint_set(subject.assertions[0])
        assert len(cs) == 1


class TestAerospace:
    def test_three_subjects(self):
        subjects = aerospace.all_subjects()
        assert [subject.name for subject in subjects] == ["Apollo", "Conflict", "Turn Logic"]

    def test_subject_lookup(self):
        assert aerospace.subject_by_name("apollo").name == "Apollo"
        with pytest.raises(KeyError):
            aerospace.subject_by_name("voyager")

    def test_selected_fraction_of_paths(self):
        subject = aerospace.apollo(depth=6, fraction=0.7)
        assert subject.total_paths == 64
        assert subject.selected_paths == pytest.approx(45, abs=1)

    def test_paths_are_pairwise_disjoint(self):
        """No sampled input satisfies two different generated path conditions."""
        import numpy as np

        from repro.lang.evaluator import holds_path_condition

        subject = aerospace.tsafe_conflict(depth=4)
        rng = np.random.default_rng(3)
        bounds = subject.bounds
        for _ in range(100):
            point = {name: float(rng.uniform(lo, hi)) for name, (lo, hi) in bounds.items()}
            matches = sum(1 for pc in subject.constraint_set.path_conditions if holds_path_condition(pc, point))
            assert matches <= 1

    def test_generation_is_deterministic(self):
        first = aerospace.apollo(depth=5, seed=1)
        second = aerospace.apollo(depth=5, seed=1)
        assert str(first.constraint_set) == str(second.constraint_set)

    def test_profile_covers_variables(self):
        for subject in aerospace.all_subjects():
            subject.profile().check_covers(subject.constraint_set.free_variables())

    def test_quantification_is_bounded_away_from_extremes(self):
        subject = aerospace.tsafe_conflict(depth=4)
        analyzer = QCoralAnalyzer(subject.profile(), QCoralConfig.strat_partcache(1500, seed=6))
        result = analyzer.analyze(subject.constraint_set)
        assert 0.05 < result.mean < 0.99

    def test_scale_parameter_changes_depth(self):
        small = aerospace.all_subjects(scale=0.5)
        default = aerospace.all_subjects(scale=1.0)
        assert small[0].total_paths < default[0].total_paths
