"""Property-based tests (hypothesis) for the core invariants of the reproduction.

The invariants checked here are the ones the paper's correctness argument rests
on:

* interval arithmetic and the interval evaluator are *enclosing*;
* HC4 contraction and paving never lose solutions (soundness of ICP);
* the estimate algebra matches the closed-form mean/variance formulas;
* the compiled NumPy evaluator agrees with the reference interpreter;
* stratified estimates converge to the exact probability for box-shaped events.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.estimate import Estimate, product_independent, sum_disjoint
from repro.core.profiles import UsageProfile
from repro.icp.hc4 import evaluate_interval, hc4_revise
from repro.intervals import Box, Interval
from repro.lang import ast
from repro.lang.compiler import compile_expression
from repro.lang.evaluator import evaluate, holds
from repro.lang.simplify import simplify_expression

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)
probabilities = st.floats(min_value=0.0, max_value=1.0)
variances = st.floats(min_value=0.0, max_value=0.25)


@st.composite
def intervals(draw):
    low = draw(finite_floats)
    high = draw(finite_floats)
    if low > high:
        low, high = high, low
    return Interval.make(low, high)


@st.composite
def expressions(draw, depth=0):
    """Random expressions over the variables x and y using safe operators."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return ast.const(draw(small_floats))
        return ast.var("x" if choice == 1 else "y")
    kind = draw(st.sampled_from(["+", "-", "*", "neg", "sin", "cos", "abs"]))
    if kind in ("+", "-", "*"):
        return ast.BinaryOp(kind, draw(expressions(depth + 1)), draw(expressions(depth + 1)))
    if kind == "neg":
        return ast.neg(draw(expressions(depth + 1)))
    return ast.call(kind, draw(expressions(depth + 1)))


# --------------------------------------------------------------------------- #
# Interval arithmetic properties
# --------------------------------------------------------------------------- #
class TestIntervalProperties:
    @given(intervals(), intervals(), small_floats, small_floats)
    def test_addition_encloses_pointwise_sum(self, a, b, ta, tb):
        x = a.lo + (a.hi - a.lo) * abs(math.sin(ta))
        y = b.lo + (b.hi - b.lo) * abs(math.sin(tb))
        assert (a + b).contains(x + y)

    @given(intervals(), intervals(), small_floats, small_floats)
    def test_multiplication_encloses_pointwise_product(self, a, b, ta, tb):
        x = a.lo + (a.hi - a.lo) * abs(math.sin(ta))
        y = b.lo + (b.hi - b.lo) * abs(math.sin(tb))
        product = (a * b)
        assert product.contains(x * y) or math.isclose(
            x * y, product.lo, rel_tol=1e-9
        ) or math.isclose(x * y, product.hi, rel_tol=1e-9)

    @given(intervals())
    def test_sqr_is_non_negative_enclosure(self, a):
        squared = a.sqr()
        if not a.is_empty():
            assert squared.lo >= 0.0
            assert squared.contains(a.lo * a.lo) or math.isclose(a.lo * a.lo, squared.hi, rel_tol=1e-12)

    @given(intervals(), intervals())
    def test_intersection_is_subset_of_both(self, a, b):
        inter = a.intersect(b)
        if not inter.is_empty():
            assert a.contains_interval(inter)
            assert b.contains_interval(inter)

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains_interval(a)
        assert hull.contains_interval(b)


# --------------------------------------------------------------------------- #
# Interval evaluation and HC4 soundness
# --------------------------------------------------------------------------- #
class TestEnclosureProperties:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(expressions(), st.floats(0, 1), st.floats(0, 1))
    def test_interval_evaluation_encloses_concrete_evaluation(self, expr, tx, ty):
        box = Box.from_bounds({"x": (-2.0, 3.0), "y": (-1.0, 4.0)})
        x = -2.0 + 5.0 * tx
        y = -1.0 + 5.0 * ty
        value = evaluate(expr, {"x": x, "y": y})
        assume(math.isfinite(value))
        enclosure = evaluate_interval(expr, box)
        assert enclosure.contains(value) or math.isclose(value, enclosure.lo, abs_tol=1e-9) or math.isclose(
            value, enclosure.hi, abs_tol=1e-9
        )

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(expressions(), st.floats(0, 1), st.floats(0, 1), st.sampled_from(["<=", ">=", "<", ">"]))
    def test_hc4_revise_never_removes_solutions(self, expr, tx, ty, operator):
        constraint = ast.Constraint(operator, expr, ast.const(0.5))
        box = Box.from_bounds({"x": (-2.0, 3.0), "y": (-1.0, 4.0)})
        x = -2.0 + 5.0 * tx
        y = -1.0 + 5.0 * ty
        point = {"x": x, "y": y}
        assume(holds(constraint, point))
        narrowed = hc4_revise(constraint, box)
        assert narrowed is not None
        assert narrowed.contains_point(point)

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(expressions(), st.floats(0, 1), st.floats(0, 1))
    def test_simplification_preserves_value(self, expr, tx, ty):
        point = {"x": -2.0 + 5.0 * tx, "y": -1.0 + 5.0 * ty}
        original = evaluate(expr, point)
        simplified = evaluate(simplify_expression(expr), point)
        if math.isnan(original):
            assert math.isnan(simplified) or math.isfinite(simplified)
        else:
            assert simplified == pytest.approx(original, rel=1e-9, abs=1e-9)

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(expressions())
    def test_compiled_evaluator_matches_interpreter(self, expr):
        compiled = compile_expression(expr)
        xs = np.linspace(-2.0, 3.0, 5)
        ys = np.linspace(-1.0, 4.0, 5)
        values = compiled({"x": xs, "y": ys})
        for index in range(len(xs)):
            expected = evaluate(expr, {"x": xs[index], "y": ys[index]})
            actual = float(values[index])
            if math.isnan(expected):
                assert math.isnan(actual)
            else:
                assert actual == pytest.approx(expected, rel=1e-9, abs=1e-9)


# --------------------------------------------------------------------------- #
# Estimate algebra properties
# --------------------------------------------------------------------------- #
class TestEstimateProperties:
    @given(st.lists(st.tuples(probabilities, variances), min_size=1, max_size=6))
    def test_disjoint_sum_means_add(self, pairs):
        estimates = [Estimate(mean, variance) for mean, variance in pairs]
        total = sum_disjoint(estimates)
        assert total.mean == pytest.approx(sum(mean for mean, _ in pairs))
        assert total.variance == pytest.approx(sum(variance for _, variance in pairs))

    @given(st.lists(st.tuples(probabilities, variances), min_size=1, max_size=5))
    def test_product_mean_is_product_of_means(self, pairs):
        estimates = [Estimate(mean, variance) for mean, variance in pairs]
        product = product_independent(estimates)
        expected_mean = 1.0
        for mean, _ in pairs:
            expected_mean *= mean
        assert product.mean == pytest.approx(expected_mean)

    @given(probabilities, variances, probabilities, variances)
    def test_product_variance_matches_equation_8(self, m1, v1, m2, v2):
        combined = Estimate(m1, v1).multiply_independent(Estimate(m2, v2))
        assert combined.variance == pytest.approx(m1 * m1 * v2 + m2 * m2 * v1 + v1 * v2)

    @given(probabilities, variances, st.floats(min_value=0.0, max_value=1.0))
    def test_scaling_is_quadratic_in_variance(self, mean, variance, weight):
        scaled = Estimate(mean, variance).scale(weight)
        assert scaled.mean == pytest.approx(weight * mean)
        assert scaled.variance == pytest.approx(weight * weight * variance)

    @given(st.integers(min_value=1, max_value=10_000), st.integers(min_value=0, max_value=10_000))
    def test_from_hits_is_valid_probability(self, samples, hits):
        assume(hits <= samples)
        estimate = Estimate.from_hits(hits, samples)
        assert 0.0 <= estimate.mean <= 1.0
        assert estimate.variance <= 0.25


# --------------------------------------------------------------------------- #
# End-to-end statistical property
# --------------------------------------------------------------------------- #
class TestQuantificationProperties:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.floats(min_value=-0.9, max_value=0.4),
        st.floats(min_value=0.1, max_value=0.5),
        st.floats(min_value=-0.9, max_value=0.4),
        st.floats(min_value=0.1, max_value=0.5),
    )
    def test_box_events_are_estimated_exactly(self, x_low, x_width, y_low, y_width):
        """Axis-aligned box events are resolved by ICP with zero variance."""
        from repro.core.qcoral import QCoralConfig, quantify
        from repro.lang.parser import parse_constraint_set

        x_high = x_low + x_width
        y_high = y_low + y_width
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        cs = parse_constraint_set(f"x >= {x_low} && x <= {x_high} && y >= {y_low} && y <= {y_high}")
        result = quantify(cs, profile, QCoralConfig.strat_partcache(200, seed=1))
        exact = (x_width / 2.0) * (y_width / 2.0)
        assert result.mean == pytest.approx(exact, abs=1e-6)
        assert result.variance == pytest.approx(0.0, abs=1e-12)
