"""Unit tests for the constraint language: AST, parser, evaluation, simplification."""

import math

import numpy as np
import pytest

from repro.errors import ParseError, UnknownFunctionError, UnknownVariableError
from repro.lang import ast
from repro.lang.analysis import (
    constraint_set_statistics,
    extract_related_constraints,
    group_constraints_by_block,
    shared_constraints,
)
from repro.lang.compiler import (
    compile_constraint,
    compile_constraint_set,
    compile_expression,
    compile_path_condition,
)
from repro.lang.evaluator import evaluate, holds, holds_any, holds_path_condition
from repro.lang.parser import (
    parse_constraint,
    parse_constraint_set,
    parse_expression,
    parse_path_condition,
)
from repro.lang.simplify import (
    simplify_constraint,
    simplify_expression,
    simplify_path_condition,
)
from repro.lang.substitution import substitute, substitute_constraint


class TestAst:
    def test_free_variables_of_expression(self):
        expr = parse_expression("x * sin(y) + 2")
        assert expr.free_variables() == {"x", "y"}

    def test_constraint_negation_roundtrip(self):
        constraint = parse_constraint("x <= 1")
        assert constraint.negate().operator == ">"
        assert constraint.negate().negate() == constraint

    def test_negation_table_covers_all_operators(self):
        for operator in ast.COMPARISON_OPERATORS:
            constraint = ast.Constraint(operator, ast.var("x"), ast.const(0))
            assert constraint.negate().operator in ast.COMPARISON_OPERATORS

    def test_invalid_comparison_operator_rejected(self):
        with pytest.raises(ValueError):
            ast.Constraint("<>", ast.var("x"), ast.const(0))

    def test_path_condition_conjoin_and_len(self):
        pc = ast.PathCondition.of([parse_constraint("x <= 1")])
        extended = pc.conjoin(parse_constraint("y >= 0"))
        assert len(extended) == 2
        assert extended.free_variables() == {"x", "y"}

    def test_canonical_is_order_insensitive_for_path_conditions(self):
        pc1 = parse_path_condition("x <= 1 && y >= 0")
        pc2 = parse_path_condition("y >= 0 && x <= 1")
        assert pc1.canonical() == pc2.canonical()

    def test_expression_size_and_operation_count(self):
        expr = parse_expression("sin(x) * x + pow(y, 2)")
        assert ast.expression_size(expr) > 5
        counts = ast.count_operations(expr)
        assert counts["sin"] == 1 and counts["pow"] == 1 and counts["*"] == 1

    def test_constraint_set_iteration(self):
        cs = parse_constraint_set("x <= 1 || x > 1 && y <= 0")
        assert len(cs) == 2
        assert cs.free_variables() == {"x", "y"}


class TestParser:
    def test_parse_number_forms(self):
        assert evaluate(parse_expression("1.5e2"), {}) == 150.0
        assert evaluate(parse_expression(".5"), {}) == 0.5

    def test_precedence(self):
        assert evaluate(parse_expression("2 + 3 * 4"), {}) == 14.0
        assert evaluate(parse_expression("(2 + 3) * 4"), {}) == 20.0

    def test_unary_minus(self):
        assert evaluate(parse_expression("-x * 2"), {"x": 3}) == -6.0

    def test_math_prefix_normalisation(self):
        expr = parse_expression("Math.sin(x)")
        assert isinstance(expr, ast.FunctionCall) and expr.name == "sin"

    def test_function_with_two_arguments(self):
        expr = parse_expression("atan2(y, x)")
        assert isinstance(expr, ast.FunctionCall) and len(expr.arguments) == 2

    def test_parse_constraint_operators(self):
        for op in ("<=", "<", ">=", ">", "==", "!="):
            constraint = parse_constraint(f"x {op} 1")
            assert constraint.operator == op

    def test_parse_path_condition(self):
        pc = parse_path_condition("x <= 1 && y > 0 && x + y != 2")
        assert len(pc) == 3

    def test_parse_constraint_set(self):
        cs = parse_constraint_set("x <= 1 || x > 1 && y <= 0 || y > 5")
        assert len(cs) == 3

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x <= 1 garbage")

    def test_missing_comparison_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x + 1")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(x + 1")

    def test_unexpected_character_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("x $ 1")

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_expression("x +\n@")
        assert excinfo.value.line == 2


class TestEvaluator:
    def test_arithmetic(self):
        assert evaluate(parse_expression("x * y - 3 / z"), {"x": 2, "y": 5, "z": 3}) == pytest.approx(9.0)

    def test_functions(self):
        value = evaluate(parse_expression("sqrt(pow(x, 2) + pow(y, 2))"), {"x": 3, "y": 4})
        assert value == pytest.approx(5.0)

    def test_division_by_zero_gives_infinity(self):
        assert math.isinf(evaluate(parse_expression("1 / x"), {"x": 0}))

    def test_zero_over_zero_gives_nan(self):
        assert math.isnan(evaluate(parse_expression("x / y"), {"x": 0, "y": 0}))

    def test_sqrt_of_negative_gives_nan(self):
        assert math.isnan(evaluate(parse_expression("sqrt(x)"), {"x": -1}))

    def test_unknown_variable(self):
        with pytest.raises(UnknownVariableError):
            evaluate(parse_expression("missing + 1"), {})

    def test_unknown_function(self):
        with pytest.raises(UnknownFunctionError):
            evaluate(ast.call("bogus", ast.const(1)), {})

    def test_holds_comparison(self):
        assert holds(parse_constraint("x <= 1"), {"x": 0.5})
        assert not holds(parse_constraint("x <= 1"), {"x": 2.0})

    def test_nan_comparison_is_unsatisfied(self):
        constraint = parse_constraint("sqrt(x) <= 10")
        assert not holds(constraint, {"x": -1.0})

    def test_holds_path_condition_and_any(self):
        pc = parse_path_condition("x >= 0 && x <= 1")
        assert holds_path_condition(pc, {"x": 0.5})
        cs = parse_constraint_set("x < 0 || x >= 0 && x <= 1")
        assert holds_any(cs, {"x": 0.5})
        assert not holds_any(cs, {"x": 3.0})


class TestSimplify:
    def test_constant_folding(self):
        expr = simplify_expression(parse_expression("2 * 3 + 1"))
        assert isinstance(expr, ast.Constant) and expr.value == 7.0

    def test_identity_elimination(self):
        expr = simplify_expression(parse_expression("x + 0"))
        assert isinstance(expr, ast.Variable)
        expr = simplify_expression(parse_expression("1 * x"))
        assert isinstance(expr, ast.Variable)
        expr = simplify_expression(parse_expression("x * 0"))
        assert isinstance(expr, ast.Constant) and expr.value == 0.0

    def test_double_negation(self):
        expr = simplify_expression(ast.neg(ast.neg(ast.var("x"))))
        assert isinstance(expr, ast.Variable)

    def test_function_folding(self):
        expr = simplify_expression(parse_expression("sqrt(4)"))
        assert isinstance(expr, ast.Constant) and expr.value == 2.0

    def test_simplification_preserves_semantics(self):
        source = "2 * x + 0 + sqrt(4) * (1 * y)"
        original = parse_expression(source)
        simplified = simplify_expression(original)
        for point in ({"x": 1.0, "y": 2.0}, {"x": -3.5, "y": 0.0}):
            assert evaluate(original, point) == pytest.approx(evaluate(simplified, point))

    def test_duplicate_conjuncts_removed(self):
        pc = parse_path_condition("x <= 1 && x <= 1 && y > 0")
        assert len(simplify_path_condition(pc)) == 2

    def test_simplify_constraint_both_sides(self):
        constraint = simplify_constraint(parse_constraint("x + 0 <= 2 * 3"))
        assert constraint.canonical() == "x <= 6.0"


class TestSubstitution:
    def test_substitute_variable(self):
        result = substitute(parse_expression("a + b"), {"a": parse_expression("x * 2")})
        assert result.free_variables() == {"x", "b"}

    def test_substitute_inside_function(self):
        result = substitute(parse_expression("sin(a)"), {"a": parse_expression("x + 1")})
        assert evaluate(result, {"x": 0.0}) == pytest.approx(math.sin(1.0))

    def test_substitute_constraint(self):
        constraint = substitute_constraint(parse_constraint("total >= 5"), {"total": parse_expression("x + y")})
        assert constraint.free_variables() == {"x", "y"}


class TestCompiler:
    def _batch(self, **columns):
        return {name: np.asarray(values, dtype=float) for name, values in columns.items()}

    def test_compiled_expression_matches_evaluator(self):
        expr = parse_expression("sin(x) * sqrt(y) + pow(x, 2) / (y + 1)")
        compiled = compile_expression(expr)
        xs = np.linspace(0.1, 2.0, 7)
        ys = np.linspace(0.5, 3.0, 7)
        batch = self._batch(x=xs, y=ys)
        values = compiled(batch)
        for index in range(len(xs)):
            expected = evaluate(expr, {"x": xs[index], "y": ys[index]})
            assert values[index] == pytest.approx(expected)

    def test_compiled_constraint(self):
        predicate = compile_constraint(parse_constraint("x * x + y * y <= 1"))
        batch = self._batch(x=[0.0, 1.0, 0.9], y=[0.0, 1.0, 0.1])
        assert predicate(batch).tolist() == [True, False, True]

    def test_compiled_path_condition_short_circuits(self):
        predicate = compile_path_condition(parse_path_condition("x >= 0 && sqrt(x) <= 2"))
        batch = self._batch(x=[-1.0, 1.0, 9.0])
        assert predicate(batch).tolist() == [False, True, False]

    def test_compiled_constraint_set_is_disjunction(self):
        predicate = compile_constraint_set(parse_constraint_set("x < 0 || x > 1"))
        batch = self._batch(x=[-0.5, 0.5, 1.5])
        assert predicate(batch).tolist() == [True, False, True]

    def test_nan_rows_never_hit(self):
        predicate = compile_path_condition(parse_path_condition("sqrt(x) <= 2"))
        batch = self._batch(x=[-1.0, 4.0])
        assert predicate(batch).tolist() == [False, True]

    def test_unknown_variable_in_batch(self):
        predicate = compile_expression(parse_expression("x + 1"))
        with pytest.raises(UnknownVariableError):
            predicate(self._batch(y=[1.0]))


class TestAnalysis:
    def test_statistics_counts(self):
        cs = parse_constraint_set("x + y <= 1 && sin(x) > 0 || x - y > 1")
        stats = constraint_set_statistics(cs)
        assert stats.path_count == 2
        assert stats.conjunct_count == 3
        assert stats.arithmetic_operation_count >= 3
        assert stats.variable_count == 2

    def test_extract_related_constraints(self):
        pc = parse_path_condition("x <= 1 && y >= 0 && x + z <= 2")
        factor = extract_related_constraints(pc, {"x", "z"})
        assert len(factor) == 2
        assert factor.free_variables() == {"x", "z"}

    def test_group_constraints_by_block_skips_empty_blocks(self):
        pc = parse_path_condition("x <= 1 && y >= 0")
        groups = group_constraints_by_block(pc, [frozenset({"x"}), frozenset({"y"}), frozenset({"w"})])
        assert len(groups) == 2

    def test_shared_constraints_histogram(self):
        cs = parse_constraint_set("x <= 1 && y > 0 || x <= 1 && y <= 0")
        histogram = shared_constraints(cs)
        assert histogram["x <= 1.0"] == 2
