"""Property-based tests (hypothesis) of the distribution measure/sampling contract.

Every distribution the profile layer ships — continuous and discrete — must
satisfy two invariants the whole stratified/importance stack rests on:

* **partition additivity**: the measures of the cells of any partition of the
  support sum to exactly 1 (for discrete families the cells meet on
  half-integer boundaries, the same boundaries the ICP layer and the mass
  refiner use, so no atom is counted twice);
* **conditioned containment**: samples drawn conditioned on an interval land
  inside that interval (and, for discrete families, on integer atoms).

These are exactly the properties that make ``Σ w_i p̂_i`` an unbiased
stratified estimator: weights partition the domain mass, and per-stratum
draws stay in their stratum.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profiles import (
    BinomialDistribution,
    CategoricalDistribution,
    PiecewiseUniformDistribution,
    TruncatedGeometricDistribution,
    TruncatedNormalDistribution,
    TruncatedPoissonDistribution,
    UniformDistribution,
)
from repro.intervals import Interval

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
probabilities = st.floats(min_value=0.01, max_value=0.99)
positive_rates = st.floats(min_value=0.1, max_value=20.0)


@st.composite
def discrete_distributions(draw):
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return BinomialDistribution(draw(st.integers(1, 40)), draw(probabilities))
    if kind == 1:
        low = draw(st.integers(0, 5))
        high = low + draw(st.integers(0, 40))
        return TruncatedPoissonDistribution(draw(positive_rates), low, high)
    if kind == 2:
        low = draw(st.integers(0, 5))
        high = low + draw(st.integers(0, 40))
        return TruncatedGeometricDistribution(draw(probabilities), low, high)
    low = draw(st.integers(-10, 10))
    weights = draw(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=12))
    if sum(weights) <= 0.0:
        weights = [1.0] * len(weights)
    return CategoricalDistribution(low, tuple(weights))


@st.composite
def continuous_distributions(draw):
    kind = draw(st.integers(min_value=0, max_value=2))
    low = draw(st.floats(-50.0, 50.0, allow_nan=False))
    width = draw(st.floats(0.1, 100.0, allow_nan=False))
    if kind == 0:
        return UniformDistribution(low, low + width)
    if kind == 1:
        mean = draw(st.floats(-50.0, 50.0, allow_nan=False))
        std = draw(st.floats(0.1, 20.0, allow_nan=False))
        return TruncatedNormalDistribution(mean, std, low, low + width)
    bins = draw(st.integers(1, 6))
    edges = [low]
    for _ in range(bins):
        edges.append(edges[-1] + draw(st.floats(0.1, 20.0, allow_nan=False)))
    weights = draw(st.lists(st.floats(0.1, 10.0), min_size=bins, max_size=bins))
    return PiecewiseUniformDistribution(tuple(edges), tuple(weights))


@st.composite
def continuous_partitions(draw):
    """A continuous distribution plus interior cut points of its support."""
    distribution = draw(continuous_distributions())
    support = distribution.support
    fractions = draw(st.lists(st.floats(0.01, 0.99), min_size=0, max_size=5))
    cuts = sorted(support.lo + f * support.width() for f in fractions)
    return distribution, [support.lo] + cuts + [support.hi]


@st.composite
def discrete_partitions(draw):
    """A discrete distribution plus half-integer cut points of its support."""
    distribution = draw(discrete_distributions())
    support = distribution.support
    atoms = int(support.hi - support.lo)
    offsets = draw(st.lists(st.integers(0, max(0, atoms - 1)), min_size=0, max_size=5))
    cuts = sorted({support.lo + offset + 0.5 for offset in offsets})
    return distribution, [support.lo - 0.5] + cuts + [support.hi + 0.5]


# --------------------------------------------------------------------------- #
# Partition additivity
# --------------------------------------------------------------------------- #
class TestPartitionAdditivity:
    @settings(max_examples=80)
    @given(continuous_partitions())
    def test_continuous_partition_sums_to_one(self, case):
        distribution, cuts = case
        total = sum(distribution.measure(Interval.make(a, b)) for a, b in zip(cuts, cuts[1:]))
        assert math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=80)
    @given(discrete_partitions())
    def test_discrete_partition_sums_to_one(self, case):
        distribution, cuts = case
        total = sum(distribution.measure(Interval.make(a, b)) for a, b in zip(cuts, cuts[1:]))
        assert math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=80)
    @given(discrete_distributions())
    def test_atom_masses_sum_to_one(self, distribution):
        support = distribution.support
        total = sum(
            distribution.measure(Interval.point(float(atom)))
            for atom in range(int(support.lo), int(support.hi) + 1)
        )
        assert math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9)

    @settings(max_examples=60)
    @given(discrete_distributions())
    def test_mass_median_split_partitions_mass(self, distribution):
        at = distribution.split_point()
        if at is None:
            return
        support = distribution.support
        left = distribution.measure(Interval.make(support.lo, at))
        right = distribution.measure(Interval.make(at, support.hi))
        assert math.isclose(left + right, 1.0, rel_tol=1e-9, abs_tol=1e-9)


# --------------------------------------------------------------------------- #
# Conditioned sampling containment
# --------------------------------------------------------------------------- #
class TestConditionedSampling:
    @settings(max_examples=50, deadline=None)
    @given(continuous_distributions(), st.floats(0.0, 1.0), st.floats(0.05, 1.0), st.integers(0, 2**31))
    def test_continuous_samples_stay_inside(self, distribution, start, width, seed):
        support = distribution.support
        lo = support.lo + start * (1.0 - width) * support.width()
        hi = lo + width * support.width()
        window = Interval.make(lo, min(hi, support.hi))
        samples = distribution.sample(np.random.default_rng(seed), 200, window)
        assert samples.min() >= window.lo - 1e-9
        assert samples.max() <= window.hi + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(discrete_distributions(), st.floats(0.0, 1.0), st.floats(0.05, 1.0), st.integers(0, 2**31))
    def test_discrete_samples_stay_on_atoms_inside(self, distribution, start, width, seed):
        support = distribution.support
        lo = support.lo + start * (1.0 - width) * support.width()
        hi = min(lo + max(1.0, width * support.width()), support.hi)
        window = Interval.make(math.floor(lo), math.ceil(hi))
        samples = distribution.sample(np.random.default_rng(seed), 200, window)
        assert np.all(samples == np.floor(samples))
        assert samples.min() >= window.lo
        assert samples.max() <= window.hi

    @settings(max_examples=50, deadline=None)
    @given(discrete_distributions(), st.integers(0, 2**31))
    def test_unconditioned_samples_cover_only_the_support(self, distribution, seed):
        samples = distribution.sample(np.random.default_rng(seed), 200)
        support = distribution.support
        assert samples.min() >= support.lo
        assert samples.max() <= support.hi
        assert np.all(samples == np.floor(samples))
