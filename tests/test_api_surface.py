"""API-stability gate: the public surface must match a committed snapshot.

Renders ``repro.__all__`` — every name's kind, every function's parameter
list, every class's public methods — into a canonical text form and diffs it
against ``tests/api_surface.txt``.  Silent drift (a renamed parameter, a
dropped export, a signature change) fails this test; intentional changes
regenerate the snapshot in the same commit::

    QCORAL_UPDATE_API_SURFACE=1 PYTHONPATH=src python -m pytest tests/test_api_surface.py

The rendering deliberately omits type annotations (their ``repr`` varies
across Python versions) and keeps only parameter names and default values,
which are stable on every version CI runs.
"""

import inspect
import os
import warnings

import repro

SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "api_surface.txt")


def _parameters(obj) -> str:
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return "(?)"
    rendered = []
    for parameter in signature.parameters.values():
        name = parameter.name
        if parameter.kind == parameter.VAR_POSITIONAL:
            name = "*" + name
        elif parameter.kind == parameter.VAR_KEYWORD:
            name = "**" + name
        if parameter.default is not parameter.empty:
            name += f"={parameter.default!r}"
        rendered.append(name)
    return "(" + ", ".join(rendered) + ")"


def _class_lines(name, cls):
    yield f"class {name}{_parameters(cls)}"
    for attr_name in sorted(vars(cls)):
        if attr_name.startswith("_"):
            continue
        attr = inspect.getattr_static(cls, attr_name)
        if isinstance(attr, property):
            yield f"  {attr_name}: property"
        elif isinstance(attr, staticmethod):
            yield f"  {attr_name}: staticmethod{_parameters(attr.__func__)}"
        elif isinstance(attr, classmethod):
            yield f"  {attr_name}: classmethod{_parameters(attr.__func__)}"
        elif inspect.isfunction(attr):
            yield f"  {attr_name}: method{_parameters(attr)}"


def render_surface() -> str:
    lines = []
    # Deprecated shims are not in __all__ (star-imports must stay silent) but
    # are still public surface: the snapshot tracks them so their removal is
    # a visible change.
    names = set(repro.__all__) | set(repro._DEPRECATED_EXPORTS)
    for name in sorted(names):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            obj = getattr(repro, name)
        if inspect.isclass(obj):
            lines.extend(_class_lines(name, obj))
        elif inspect.isfunction(obj) or inspect.isbuiltin(obj):
            lines.append(f"def {name}{_parameters(obj)}")
        else:
            lines.append(f"{name} = {obj!r}")
    return "\n".join(lines) + "\n"


def test_public_api_matches_snapshot():
    rendered = render_surface()
    if os.environ.get("QCORAL_UPDATE_API_SURFACE"):
        with open(SNAPSHOT_PATH, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    with open(SNAPSHOT_PATH, "r", encoding="utf-8") as handle:
        snapshot = handle.read()
    assert rendered == snapshot, (
        "public API surface drifted from tests/api_surface.txt; if the change "
        "is intentional, regenerate the snapshot with "
        "QCORAL_UPDATE_API_SURFACE=1 and commit it with this change"
    )


def test_all_names_resolve():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name


def test_star_import_is_warning_free():
    # Deprecated shims live outside __all__: `from repro import *` (which
    # getattrs every __all__ entry) must not trip DeprecationWarnings.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        namespace = {}
        exec("from repro import *", namespace)  # noqa: S102 - deliberate star-import probe
    assert "Session" in namespace
    assert "quantify" not in namespace


def test_py_typed_marker_ships():
    package_dir = os.path.dirname(repro.__file__)
    assert os.path.exists(os.path.join(package_dir, "py.typed"))
