"""Tests of the quantification service: wire format, admission, HTTP/SSE.

The integration tests run a real server on an ephemeral port via
:func:`repro.serve.serve_in_thread` and talk to it with the stdlib
:class:`~repro.serve.client.ServeClient` — the same pair the quickstart and
the CI smoke job use.  The contract under test is the ISSUE's: a served
query is bit-identical to the in-process Query at the same seed, a repeated
identical request draws zero samples, a client disconnect stops sampling
early, and a graceful drain flushes store and ledger.
"""

import json
import threading
import time

import pytest

from repro import Session
from repro.errors import ConfigurationError, ParseError, UsageError
from repro.obs import Observability
from repro.obs.ledger import open_ledger
from repro.serve import (
    AdmissionController,
    AdmissionError,
    AdmissionLimits,
    ServeClient,
    ServeClientError,
    WireError,
    parse_quantify_payload,
    serve_in_thread,
)
from repro.serve.wire import build_query, error_status, payload_from_query_params, sse_event

CIRCLE = "x*x + y*y <= 1"
DOMAINS = {"x": "-1:1", "y": "-1:1"}


def _metric_value(metrics_text, prefix):
    """The value of the first exposition line starting with ``prefix``."""
    for line in metrics_text.splitlines():
        if line.startswith(prefix):
            return float(line.rsplit(" ", 1)[1])
    return None


# --------------------------------------------------------------------- #
# Wire format (no sockets)
# --------------------------------------------------------------------- #
class TestWireFormat:
    def test_parse_minimal_payload(self):
        spec = parse_quantify_payload({"constraints": CIRCLE, "domains": DOMAINS})
        assert spec.constraints == CIRCLE
        assert spec.domains == DOMAINS
        assert spec.budget == 30_000  # engine default
        assert spec.max_seconds is None

    def test_parse_full_payload(self):
        spec = parse_quantify_payload(
            {
                "constraints": CIRCLE,
                "domains": {"x": [-1, 1], "y": "-1:1"},
                "method": "importance",
                "budget": 5000,
                "target_std": 1e-3,
                "max_rounds": 4,
                "initial_fraction": 0.5,
                "allocation": "neyman",
                "seed": 7,
                "features": {"stratified": True, "partition_and_cache": False},
                "max_seconds": 2.5,
            }
        )
        settings = spec.settings_dict()
        assert settings["method"] == "importance"
        assert settings["samples_per_query"] == 5000
        assert settings["seed"] == 7
        assert settings["stratified"] is True
        assert settings["partition_and_cache"] is False
        assert spec.budget == 5000
        assert spec.max_seconds == 2.5

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([], "JSON object"),
            ({"domains": DOMAINS}, "constraints"),
            ({"constraints": CIRCLE}, "domains"),
            ({"constraints": CIRCLE, "domains": {}}, "domains"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "sed": 1}, "unknown request keys"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "budget": 1, "samples": 1}, "aliases"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "budget": True}, "integer"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "budget": 0}, ">= 1"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "seed": "7"}, "integer"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "target_std": -1.0}, "> 0"),
            ({"constraints": CIRCLE, "domains": {"x": [1, 2, 3]}}, "domain 'x'"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "features": {"turbo": True}}, "unknown feature"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "features": {"stratified": 1}}, "boolean"),
            ({"constraints": CIRCLE, "domains": DOMAINS, "max_seconds": 0}, "> 0"),
        ],
    )
    def test_parse_rejections(self, payload, fragment):
        with pytest.raises(WireError) as excinfo:
            parse_quantify_payload(payload)
        assert fragment in str(excinfo.value)
        assert excinfo.value.status == 400

    def test_query_params_payload(self):
        params = {
            "constraints": [CIRCLE],
            "domain": ["x=-1:1", "y=-1:1"],
            "seed": ["7"],
            "budget": ["1000"],
            "target_std": ["0.01"],
            "method": ["hit-or-miss"],
        }
        payload = payload_from_query_params(params)
        spec = parse_quantify_payload(payload)
        assert spec.domains == {"x": "-1:1", "y": "-1:1"}
        assert spec.settings_dict()["seed"] == 7
        assert spec.budget == 1000

    def test_query_params_rejections(self):
        with pytest.raises(WireError, match="name=SPEC"):
            payload_from_query_params({"domain": ["oops"]})
        with pytest.raises(WireError, match="not a valid int"):
            payload_from_query_params({"seed": ["x"]})
        with pytest.raises(WireError, match="unknown query parameters"):
            payload_from_query_params({"sed": ["1"]})
        with pytest.raises(WireError, match="more than once"):
            payload_from_query_params({"seed": ["1", "2"]})

    def test_error_status_mapping(self):
        assert error_status(ConfigurationError("x")) == 400
        assert error_status(ParseError("x")) == 400
        assert error_status(UsageError("x")) == 400
        assert error_status(WireError("x", status=413)) == 413
        from repro.errors import AnalysisError

        assert error_status(AnalysisError("x")) == 500

    def test_build_query_surfaces_validation_eagerly(self):
        with Session() as session:
            spec = parse_quantify_payload(
                {"constraints": CIRCLE, "domains": DOMAINS, "method": "importance", "seed": 3}
            )
            query = build_query(session, spec)
            assert query.compile().method == "importance"
            bad = parse_quantify_payload({"constraints": CIRCLE, "domains": {"x": "binomial:n:p", "y": "-1:1"}})
            with pytest.raises(ConfigurationError, match="binomial:n:p"):
                build_query(session, bad)

    def test_sse_event_rendering(self):
        frame = sse_event("round", {"round": 1}).decode("utf-8")
        assert frame == 'event: round\ndata: {"round": 1}\n\n'


# --------------------------------------------------------------------- #
# Admission control (no sockets)
# --------------------------------------------------------------------- #
class TestAdmission:
    def test_limit_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionLimits(max_concurrent=0)
        with pytest.raises(ConfigurationError):
            AdmissionLimits(max_budget=0)
        with pytest.raises(ConfigurationError):
            AdmissionLimits(max_seconds=0.0)

    def test_capacity_and_budget_rejections(self):
        hub = Observability()
        controller = AdmissionController(AdmissionLimits(max_concurrent=1, max_budget=100), hub)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(budget=101)
        assert excinfo.value.status == 413
        ticket = controller.admit(budget=10)
        assert controller.in_flight == 1
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(budget=10)
        assert excinfo.value.status == 429
        ticket.release()
        ticket.release()  # idempotent
        assert controller.in_flight == 0
        controller.admit(budget=10).release()
        controller.begin_drain()
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit(budget=10)
        assert excinfo.value.status == 503
        text = hub.prometheus()
        assert 'serve_rejections_total{reason="budget"} 1' in text
        assert 'serve_rejections_total{reason="capacity"} 1' in text
        assert 'serve_rejections_total{reason="draining"} 1' in text

    def test_deadline_is_min_of_client_and_server(self):
        controller = AdmissionController(AdmissionLimits(max_seconds=5.0))
        assert controller.deadline_seconds(None) == 5.0
        assert controller.deadline_seconds(2.0) == 2.0
        assert controller.deadline_seconds(9.0) == 5.0
        unlimited = AdmissionController(AdmissionLimits())
        assert unlimited.deadline_seconds(None) is None
        assert unlimited.deadline_seconds(3.0) == 3.0


# --------------------------------------------------------------------- #
# The served endpoints (real server, ephemeral port)
# --------------------------------------------------------------------- #
class TestServedEndpoints:
    def test_health_metrics_and_routing(self):
        with serve_in_thread() as handle:
            client = ServeClient(handle.url)
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["accepting"] is True
            assert health["store"] == "memory"
            stats = client.store_stats()
            assert stats["store"] == "memory"
            assert stats["statistics"]["gets"] == 0
            metrics = client.metrics()
            assert "serve_requests_total" in metrics
            with pytest.raises(ServeClientError) as excinfo:
                client._json_request("GET", "/nope")
            assert excinfo.value.status == 404
            with pytest.raises(ServeClientError) as excinfo:
                client._json_request("GET", "/v1/quantify")
            assert excinfo.value.status == 405

    @pytest.mark.parametrize("method", ["hit-or-miss", "importance"])
    def test_served_result_is_bit_identical_to_in_process(self, method):
        request = dict(seed=11, budget=4000, method=method)
        with serve_in_thread() as handle:
            served = ServeClient(handle.url).quantify(CIRCLE, DOMAINS, **request)
        with Session(store_backend="memory", observability=Observability()) as session:
            local = (
                session.quantify(CIRCLE, DOMAINS)
                .configure(samples_per_query=request["budget"], seed=request["seed"], method=method)
                .run()
                .to_dict()
            )
        # Timing, the shared hub's metrics, and wall-clock-derived
        # diagnostic wording are the only run-dependent fields; every
        # estimate-bearing field must match bit for bit.
        for volatile in ("time", "metrics"):
            served.pop(volatile, None)
            local.pop(volatile, None)
        served_codes = [diagnostic["code"] for diagnostic in served.pop("diagnostics", [])]
        local_codes = [diagnostic["code"] for diagnostic in local.pop("diagnostics", [])]
        assert served_codes == local_codes
        assert served == local

    def test_repeated_request_draws_zero_samples(self):
        with serve_in_thread() as handle:
            client = ServeClient(handle.url)
            cold = client.quantify(CIRCLE, DOMAINS, seed=5, budget=3000)
            warm = client.quantify(CIRCLE, DOMAINS, seed=5, budget=3000)
            assert cold["samples"] == 3000
            assert warm["samples"] == 0
            assert warm["mean"] == cold["mean"]
            stats = client.store_stats()["statistics"]
            assert stats["hits"] >= 1
            assert stats["creates"] >= 1

    def test_parallel_clients_pool_the_store(self):
        # Satellite: N parallel requests on one constraint family merge
        # their deltas; a follow-up request is answered without sampling.
        with serve_in_thread() as handle:
            url = handle.url
            reports, errors = [], []

            def hit(seed):
                try:
                    reports.append(ServeClient(url).quantify(CIRCLE, DOMAINS, seed=seed, budget=2000))
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [threading.Thread(target=hit, args=(seed,)) for seed in (1, 2, 3, 4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert len(reports) == 4
            client = ServeClient(url)
            stats = client.store_stats()["statistics"]
            # Every request either sampled (and published a create or a
            # merge into the shared family) or arrived after the family
            # already covered its budget and drew nothing at all.
            sampled = [report for report in reports if report["samples"] > 0]
            assert sampled  # someone had to pay the cold cost exactly once
            assert stats["creates"] >= 1
            assert stats["creates"] + stats["merges"] == len(sampled)
            follow_up = client.quantify(CIRCLE, DOMAINS, seed=9, budget=2000)
            assert follow_up["samples"] == 0

    def test_streamed_rounds_then_report_and_done(self):
        with serve_in_thread() as handle:
            client = ServeClient(handle.url)
            events = list(
                client.stream(CIRCLE, DOMAINS, seed=3, budget=2000, max_rounds=3, target_std=1e-9)
            )
            kinds = [event.event for event in events]
            assert kinds[-2:] == ["report", "done"]
            rounds = [event for event in events if event.event == "round"]
            assert rounds and rounds[0].data["round"] == 1
            assert events[-1].data["stopped"] is None
            report = events[-2].data
            assert report["samples"] == rounds[-1].data["cumulative"]

    def test_stream_accepts_query_parameters(self):
        with serve_in_thread() as handle:
            client = ServeClient(handle.url)
            connection = client._connect()
            connection.request(
                "GET",
                "/v1/quantify/stream?constraints=x*x%20%2B%20y*y%20%3C%3D%201"
                "&domain=x%3D-1:1&domain=y%3D-1:1&seed=3&budget=1000",
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "text/event-stream"
            body = response.read().decode("utf-8")
            connection.close()
            assert "event: report" in body
            assert "event: done" in body

    def test_disconnect_stops_sampling_early(self, tmp_path):
        ledger_path = str(tmp_path / "serve.jsonl")
        budget = 50_000_000
        with serve_in_thread(ledger=ledger_path) as handle:
            client = ServeClient(handle.url)
            with client.stream(
                CIRCLE, DOMAINS, seed=9, budget=budget, max_rounds=500, target_std=1e-12, initial_fraction=0.001
            ) as rounds:
                for event in rounds:
                    if event.event == "round" and event.data["round"] >= 2:
                        break  # closing the stream drops the connection
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if _metric_value(client.metrics(), "serve_in_flight") == 0:
                    break
                time.sleep(0.05)
            metrics = client.metrics()
            assert _metric_value(metrics, "serve_stream_disconnects_total") == 1
            assert _metric_value(metrics, 'serve_early_stops_total{reason="cancelled"}') == 1
        # The early-stopped run still published: the ledger has the partial
        # run with far fewer samples than the requested budget.
        with open_ledger(ledger_path, "jsonl") as ledger:
            entries = ledger.entries()
        assert len(entries) == 1
        assert 0 < entries[0].samples < budget // 10

    def test_wall_clock_ceiling_truncates_a_run(self):
        with serve_in_thread(limits=AdmissionLimits(max_seconds=0.15)) as handle:
            client = ServeClient(handle.url)
            budget = 50_000_000
            report = client.quantify(
                CIRCLE, DOMAINS, seed=9, budget=budget, max_rounds=500, target_std=1e-12, initial_fraction=0.001
            )
            assert 0 < report["samples"] < budget
            assert _metric_value(client.metrics(), 'serve_early_stops_total{reason="deadline"}') == 1

    def test_busy_server_answers_429(self):
        with serve_in_thread(limits=AdmissionLimits(max_concurrent=1)) as handle:
            client = ServeClient(handle.url)
            stream = client.stream(
                CIRCLE, DOMAINS, seed=9, budget=50_000_000, max_rounds=500, target_std=1e-12, initial_fraction=0.001
            )
            try:
                next(iter(stream))  # the run holds the only slot now
                with pytest.raises(ServeClientError) as excinfo:
                    client.quantify(CIRCLE, DOMAINS, seed=1, budget=1000)
                assert excinfo.value.status == 429
            finally:
                stream.close()

    def test_oversized_budget_answers_413(self):
        with serve_in_thread(limits=AdmissionLimits(max_budget=10_000)) as handle:
            client = ServeClient(handle.url)
            with pytest.raises(ServeClientError) as excinfo:
                client.quantify(CIRCLE, DOMAINS, budget=10_001)
            assert excinfo.value.status == 413
            assert "10000" in str(excinfo.value)
            report = client.quantify(CIRCLE, DOMAINS, seed=1, budget=10_000)
            assert report["samples"] == 10_000

    def test_client_errors_answer_400(self):
        with serve_in_thread() as handle:
            client = ServeClient(handle.url)
            cases = [
                dict(constraints=CIRCLE, domains={"x": "binomial:n:p", "y": "-1:1"}),
                dict(constraints="x >= 0 &&", domains={"x": "-1:1"}),
                dict(constraints=CIRCLE, domains=DOMAINS, method="nope"),
                dict(constraints=CIRCLE, domains=DOMAINS, sed=1),
            ]
            for case in cases:
                with pytest.raises(ServeClientError) as excinfo:
                    client.quantify(case.pop("constraints"), case.pop("domains"), **case)
                assert excinfo.value.status == 400, case
            # Malformed JSON bodies are a 400 too, not a connection reset.
            status, _, raw = client._raw_request("POST", "/v1/quantify")
            connection = client._connect()
            connection.request(
                "POST", "/v1/quantify", body=b"{nope", headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"JSON" in response.read()
            connection.close()

    def test_graceful_drain_flushes_store_and_ledger(self, tmp_path):
        ledger_path = str(tmp_path / "drain.jsonl")
        store_path = str(tmp_path / "drain.db")
        handle = serve_in_thread(store=store_path, ledger=ledger_path)
        client = ServeClient(handle.url)
        client.quantify(CIRCLE, DOMAINS, seed=5, budget=2000)
        stream = client.stream(
            CIRCLE, DOMAINS, seed=9, budget=50_000_000, max_rounds=500, target_std=1e-12, initial_fraction=0.001
        )
        next(iter(stream))  # the long run is in flight now
        handle.stop()  # the same code path as SIGTERM: drain, flush, exit
        stream.close()
        assert handle.server.session.closed
        # No lost entries: both the finished run and the drain-cancelled one
        # are in the ledger, and the store kept the finished run's samples.
        with open_ledger(ledger_path, "jsonl") as ledger:
            entries = ledger.entries()
        assert len(entries) == 2
        assert entries[0].samples == 2000
        assert 0 < entries[1].samples < 50_000_000
        with Session(store=store_path) as session:
            warm = session.quantify(CIRCLE, DOMAINS).configure(samples_per_query=2000, seed=5).run()
        assert warm.total_samples == 0
        # New connections are refused after the drain.
        with pytest.raises(ServeClientError):
            client.healthz()
