"""Cross-module integration tests: qCORAL vs baselines vs ground truth."""

import math

import numpy as np
import pytest

from repro.baselines.numint import NumIntConfig, integrate_indicator
from repro.baselines.plain_mc import plain_monte_carlo
from repro.baselines.volcomp import VolCompConfig, bound_probability
from repro.core.profiles import TruncatedNormalDistribution, UniformDistribution, UsageProfile
from repro.core.qcoral import QCoralConfig, quantify
from repro.lang.evaluator import holds_any
from repro.lang.parser import parse_constraint_set
from repro.subjects import programs
from repro.symexec import execute_program, parse_program


class TestCrossValidationAgainstGroundTruth:
    """The three techniques must agree with each other and with brute force."""

    def _brute_force(self, constraint_set, profile, samples=200_000, seed=0):
        rng = np.random.default_rng(seed)
        batch = profile.sample(rng, samples)
        hits = 0
        names = list(batch)
        for index in range(samples):
            point = {name: float(batch[name][index]) for name in names}
            if holds_any(constraint_set, point):
                hits += 1
        return hits / samples

    @pytest.mark.parametrize(
        "text,exact",
        [
            ("x * x + y * y <= 1", math.pi / 4),
            ("x <= 0 - y && y <= x", 0.25),
            ("x > 0.5 || x < 0 - 0.5 && y > 0", 0.25 + 0.125),
        ],
    )
    def test_qcoral_matches_exact_values(self, text, exact):
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        cs = parse_constraint_set(text)
        result = quantify(cs, profile, QCoralConfig.strat_partcache(20_000, seed=3))
        assert result.mean == pytest.approx(exact, abs=0.02)

    def test_all_techniques_agree_on_nonlinear_subject(self):
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        domain = profile.domain()
        cs = parse_constraint_set("sin(3 * x) * y <= 0.2 && x * x + y * y <= 0.9")

        qcoral = quantify(cs, profile, QCoralConfig.strat_partcache(20_000, seed=5))
        mc = plain_monte_carlo(cs, profile, 20_000, seed=5)
        numint = integrate_indicator(cs, domain, NumIntConfig(accuracy_goal=5e-3))
        bounds = bound_probability(cs, profile, VolCompConfig(max_boxes=3000))

        assert qcoral.mean == pytest.approx(mc.mean, abs=0.03)
        assert qcoral.mean == pytest.approx(numint.probability, abs=0.03)
        assert bounds.lower - 0.02 <= qcoral.mean <= bounds.upper + 0.02

    def test_qcoral_estimate_falls_inside_volcomp_bounds(self):
        """Table 3 consistency property: estimates fall within the bounding intervals."""
        profile = UsageProfile.uniform({"x": (0, 10), "y": (0, 10)})
        cs = parse_constraint_set("x + y <= 12 && x - y <= 4 || x + y > 18")
        result = quantify(cs, profile, QCoralConfig.strat_partcache(10_000, seed=6))
        bounds = bound_probability(cs, profile, VolCompConfig(max_boxes=4000))
        assert bounds.lower - 0.02 <= result.mean <= bounds.upper + 0.02

    def test_pipeline_matches_brute_force_for_safety_monitor(self):
        program = parse_program(programs.SAFETY_MONITOR)
        symbolic = execute_program(program)
        cs = symbolic.constraint_set_for(programs.SAFETY_MONITOR_EVENT)
        profile = UsageProfile.uniform(program.input_bounds())
        brute = self._brute_force(cs, profile, samples=50_000, seed=4)
        result = quantify(cs, profile, QCoralConfig.strat_partcache(20_000, seed=4))
        assert result.mean == pytest.approx(brute, abs=0.02)
        assert result.mean == pytest.approx(programs.SAFETY_MONITOR_EXACT, abs=0.02)


class TestNonUniformProfiles:
    def test_truncated_normal_profile_shifts_probability(self):
        """The future-work extension: the same event under two profiles."""
        cs = parse_constraint_set("x >= 0.5")
        uniform = UsageProfile.uniform({"x": (0, 1)})
        skewed = UsageProfile({"x": TruncatedNormalDistribution(0.8, 0.15, 0.0, 1.0)})
        uniform_result = quantify(cs, uniform, QCoralConfig.strat_partcache(20_000, seed=8))
        skewed_result = quantify(cs, skewed, QCoralConfig.strat_partcache(20_000, seed=8))
        assert uniform_result.mean == pytest.approx(0.5, abs=0.02)
        assert skewed_result.mean > uniform_result.mean + 0.2

    def test_mixed_profile_composition(self):
        profile = UsageProfile({"x": UniformDistribution(0, 1), "y": TruncatedNormalDistribution(0.5, 0.2, 0.0, 1.0)})
        cs = parse_constraint_set("x <= 0.5 && y <= 0.5")
        result = quantify(cs, profile, QCoralConfig.strat_partcache(30_000, seed=9))
        # Independence: P = 0.5 * P(y <= 0.5) = 0.5 * 0.5 (the normal is symmetric).
        assert result.mean == pytest.approx(0.25, abs=0.03)


class TestFeatureAblationTrends:
    """Table 4 qualitative trends on a complex-constraint subject."""

    def test_stratification_reduces_variance_on_box_friendly_subject(self):
        profile = UsageProfile.uniform({"x": (-5, 5), "y": (-5, 5)})
        cs = parse_constraint_set("x * x + y * y <= 1")
        plain = quantify(cs, profile, QCoralConfig.plain(5000, seed=10))
        strat = quantify(cs, profile, QCoralConfig.strat(5000, seed=10))
        assert strat.variance < plain.variance

    def test_partcache_reduces_sampling_work_on_shared_factors(self):
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1), "z": (-1, 1)})
        text = " || ".join(f"sin(x * y) > 0.25 && z > {threshold}" for threshold in (-0.5, 0.0, 0.5))
        cs = parse_constraint_set(text)
        no_cache = quantify(cs, profile, QCoralConfig.strat(3000, seed=11))
        cached = quantify(cs, profile, QCoralConfig.strat_partcache(3000, seed=11))
        assert cached.total_samples < no_cache.total_samples
        assert cached.mean == pytest.approx(no_cache.mean, abs=0.05)

    def test_accuracy_improves_with_samples(self):
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        cs = parse_constraint_set("sin(x * y * 4) > 0.25")
        errors = []
        reference = quantify(cs, profile, QCoralConfig.strat_partcache(100_000, seed=12)).mean
        for samples in (500, 50_000):
            estimates = [
                quantify(cs, profile, QCoralConfig.strat_partcache(samples, seed=seed)).mean
                for seed in range(5)
            ]
            errors.append(float(np.std(estimates)))
        assert errors[1] < errors[0]
        assert abs(reference - np.mean(estimates)) < 0.05
