"""Golden-file tests of the versioned Report JSON schema.

One golden file (``tests/data/report_golden.json``) pins the exact JSON a
fixed-seed run emits, and is shared by ``Report.to_json()`` and the CLI's
``--json`` output — the two must never diverge.

**Schema version bump rule** (also documented in :mod:`repro.api.report`):

* Adding a key is backward compatible: update the golden file, do NOT bump
  ``SCHEMA_VERSION``.
* Renaming, removing, or changing the meaning/type of an existing key bumps
  ``SCHEMA_VERSION`` *and* updates the golden file in the same change.

The wall-clock ``time`` field is the one legitimately nondeterministic value;
it is normalised to ``0.0`` on both sides before comparison.

Regenerate the golden file after an intentional schema change with::

    QCORAL_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_report_schema.py
"""

import json
import os

from repro.api import SCHEMA_VERSION, Session
from repro.cli import main
from repro.core.qcoral import QCoralConfig

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "report_golden.json")

CONSTRAINTS = "x <= 0 - y && y <= x"
BOUNDS = {"x": (-1.0, 1.0), "y": (-1.0, 1.0)}
SAMPLES = 2000
SEED = 1


def _golden_report_dict():
    config = QCoralConfig.strat_partcache(SAMPLES, seed=SEED)
    with Session() as session:
        report = session.quantify(CONSTRAINTS, BOUNDS, config=config).run()
    payload = report.to_dict()
    payload["time"] = 0.0
    return payload


def _load_golden():
    payload = _golden_report_dict()
    if os.environ.get("QCORAL_UPDATE_GOLDEN"):
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_report_to_json_matches_golden():
    golden = _load_golden()
    assert golden["schema_version"] == SCHEMA_VERSION, (
        "schema_version drifted: if keys were renamed/removed/retyped this is "
        "the intended bump — regenerate the golden file in the same change; "
        "otherwise revert the version change"
    )
    assert _golden_report_dict() == golden


def test_report_json_round_trips():
    config = QCoralConfig.strat_partcache(SAMPLES, seed=SEED)
    with Session() as session:
        report = session.quantify(CONSTRAINTS, BOUNDS, config=config).run()
    assert json.loads(report.to_json()) == report.to_dict()
    assert json.loads(report.to_json(indent=2)) == report.to_dict()


def test_cli_json_output_matches_golden(capsys):
    golden = _load_golden()
    exit_code = main(
        [
            "quantify",
            CONSTRAINTS,
            "--domain",
            "x=-1:1",
            "--domain",
            "y=-1:1",
            "--samples",
            str(SAMPLES),
            "--seed",
            str(SEED),
            "--json",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.out)
    payload["time"] = 0.0
    assert payload == golden


def test_program_report_schema_keys(capsys, tmp_path):
    """Program reports speak the same schema with event/bounded filled in."""
    from repro.subjects import programs

    program_file = tmp_path / "monitor.prog"
    program_file.write_text(programs.SAFETY_MONITOR)
    exit_code = main(
        ["analyze", str(program_file), programs.SAFETY_MONITOR_EVENT, "--samples", "500", "--seed", "3", "--json"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    payload = json.loads(captured.out)
    golden = _load_golden()
    assert set(payload) == set(golden)  # one schema, both kinds
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["kind"] == "program"
    assert payload["bounded"] == {"mean": 0.0, "std": 0.0}
