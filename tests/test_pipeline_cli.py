"""Tests for the end-to-end pipeline, the experiment runner, and the CLI."""

import statistics

import pytest

from repro.analysis.pipeline import ProbabilisticAnalysisPipeline, analyze_program
from repro.analysis.results import Table, format_interval
from repro.analysis.runner import repeat_analysis, trial_seeds
from repro.cli import main
from repro.core.qcoral import QCoralConfig
from repro.errors import AnalysisError
from repro.subjects import programs


class TestPipeline:
    def test_safety_monitor_end_to_end(self):
        result = analyze_program(
            programs.SAFETY_MONITOR,
            programs.SAFETY_MONITOR_EVENT,
            config=QCoralConfig.strat_partcache(20_000, seed=1),
        )
        assert result.mean == pytest.approx(programs.SAFETY_MONITOR_EXACT, abs=0.02)
        assert result.bounded_probability.mean == 0.0

    def test_unknown_event_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_program(programs.SAFETY_MONITOR, "noSuchEvent", config=QCoralConfig.plain(100))

    def test_symbolic_execution_is_cached(self):
        pipeline = ProbabilisticAnalysisPipeline(programs.SAFETY_MONITOR, config=QCoralConfig.plain(500, seed=2))
        first = pipeline.symbolic_execution()
        second = pipeline.symbolic_execution()
        assert first is second

    def test_custom_profile_overrides_bounds(self):
        from repro.core.profiles import UsageProfile

        profile = UsageProfile.uniform({"altitude": (9500, 20000), "headFlap": (-10, 10), "tailFlap": (-10, 10)})
        result = analyze_program(
            programs.SAFETY_MONITOR,
            programs.SAFETY_MONITOR_EVENT,
            profile=profile,
            config=QCoralConfig.strat_partcache(2000, seed=3),
        )
        # With altitude always above 9000 the supervisor is always called.
        assert result.mean == pytest.approx(1.0, abs=1e-6)

    def test_bounded_paths_probability_reported(self):
        source = """
        input x in [0.01, 1];
        total = 0;
        while (total <= 3) { total = total + x; }
        observe(done);
        """
        pipeline = ProbabilisticAnalysisPipeline(source, config=QCoralConfig.strat_partcache(1000, seed=4), max_depth=8)
        result = pipeline.analyze("done")
        assert result.bounded_probability.mean > 0.0
        assert "bound" in result.confidence_note

    def test_assert_violation_analysis(self):
        result = analyze_program(
            programs.SCORING_WITH_ASSERT,
            "assert.violation",
            config=QCoralConfig.strat_partcache(5000, seed=5),
        )
        # P(score + bonus > 110) over [0,100]x[0,20] = 50/2000 = 0.025.
        assert result.mean == pytest.approx(0.025, abs=0.01)


class TestRunner:
    def test_aggregates_trials(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return (0.5 + (seed % 7) * 0.01, 0.1)

        outcomes = repeat_analysis(run, runs=5)
        assert outcomes.runs == 5
        # Trial seeds are spawned from one SeedSequence: distinct and
        # reproducible for a fixed base seed.
        assert len(set(seen)) == 5
        assert seen == trial_seeds(5, base_seed=0)
        assert outcomes.mean_estimate == pytest.approx(statistics.fmean(0.5 + (seed % 7) * 0.01 for seed in seen))
        assert outcomes.mean_reported_std == pytest.approx(0.1)

    def test_single_run_has_zero_empirical_std(self):
        outcomes = repeat_analysis(lambda seed: (0.3, 0.05), runs=1)
        assert outcomes.empirical_std == 0.0

    def test_invalid_run_count(self):
        with pytest.raises(ValueError):
            repeat_analysis(lambda seed: (0.5, 0.1), runs=0)

    def test_nan_results_rejected(self):
        with pytest.raises(ValueError):
            repeat_analysis(lambda seed: (float("nan"), 0.0), runs=1)

    def test_summary_contains_fields(self):
        outcomes = repeat_analysis(lambda seed: (0.5, 0.1), runs=2)
        summary = outcomes.summary()
        assert "estimate=" in summary and "time=" in summary


class TestResultsFormatting:
    def test_table_rendering(self):
        table = Table("Demo", ("estimate", "std"))
        table.add_row("subject-a", 0.5, 1e-6)
        table.add_row("subject-b", 123456.0, 0.25)
        rendered = table.render()
        assert "Demo" in rendered
        assert "subject-a" in rendered
        assert "1.00e-06" in rendered

    def test_format_interval(self):
        assert format_interval(0.1, 0.25) == "[0.1000, 0.2500]"


class TestCli:
    def test_quantify_command(self, capsys):
        exit_code = main(
            [
                "quantify",
                "x <= 0 - y && y <= x",
                "--domain",
                "x=-1:1",
                "--domain",
                "y=-1:1",
                "--samples",
                "2000",
                "--seed",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "probability:" in captured.out
        assert "qCORAL{STRAT,PARTCACHE}" in captured.out

    def test_quantify_with_disabled_features(self, capsys):
        exit_code = main(
            [
                "quantify",
                "x >= 0",
                "--domain",
                "x=-1:1",
                "--samples",
                "500",
                "--no-strat",
                "--no-partcache",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "qCORAL{}" in captured.out

    def test_quantify_missing_constraints_errors(self, capsys):
        exit_code = main(["quantify", "", "--domain", "x=0:1"])
        assert exit_code == 2

    def test_quantify_bad_domain_spec(self, capsys):
        exit_code = main(["quantify", "x >= 0", "--domain", "x=oops"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error" in captured.err

    def test_analyze_command(self, tmp_path, capsys):
        program_file = tmp_path / "monitor.prog"
        program_file.write_text(programs.SAFETY_MONITOR)
        exit_code = main(
            [
                "analyze",
                str(program_file),
                programs.SAFETY_MONITOR_EVENT,
                "--samples",
                "2000",
                "--seed",
                "9",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "probability:" in captured.out
        assert "paths:" in captured.out
