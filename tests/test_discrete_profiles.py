"""Unit tests for the discrete bounded distributions and discrete subjects."""

import math

import numpy as np
import pytest

from repro.core.profiles import (
    BinomialDistribution,
    CategoricalDistribution,
    TruncatedGeometricDistribution,
    TruncatedNormalDistribution,
    TruncatedPoissonDistribution,
    UniformDistribution,
    UsageProfile,
    parse_distribution_spec,
)
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.core.stratified import StratifiedSampler
from repro.errors import DomainError
from repro.intervals import Box, Interval
from repro.lang.parser import parse_constraint_set, parse_path_condition
from repro.subjects.discrete import (
    all_discrete_subjects,
    discrete_subject_by_name,
    exact_probability,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


ALL_DISCRETE = (
    BinomialDistribution(12, 0.3),
    TruncatedPoissonDistribution(4.0, 0, 25),
    TruncatedGeometricDistribution(0.35, 0, 30),
    CategoricalDistribution(2, (0.1, 0.5, 0.3, 0.1)),
    CategoricalDistribution.uniform_integers(-3, 5),
)


class TestDiscreteMeasure:
    @pytest.mark.parametrize("dist", ALL_DISCRETE, ids=lambda d: type(d).__name__)
    def test_support_measure_is_one(self, dist):
        assert dist.measure(dist.support) == pytest.approx(1.0)

    @pytest.mark.parametrize("dist", ALL_DISCRETE, ids=lambda d: type(d).__name__)
    def test_half_integer_partition_sums_to_one(self, dist):
        low, high = dist.support.lo, dist.support.hi
        cuts = [low - 0.5] + [k + 0.5 for k in range(int(low), int(high))] + [high + 0.5]
        total = sum(dist.measure(Interval.make(a, b)) for a, b in zip(cuts, cuts[1:]))
        assert total == pytest.approx(1.0)

    def test_atom_masses_match_binomial_pmf(self):
        dist = BinomialDistribution(10, 0.25)
        for k in range(11):
            expected = math.comb(10, k) * 0.25**k * 0.75 ** (10 - k)
            assert dist.measure(Interval.point(float(k))) == pytest.approx(expected)

    def test_no_atoms_means_no_mass(self):
        dist = CategoricalDistribution.uniform_integers(0, 10)
        assert dist.measure(Interval.make(3.2, 3.8)) == 0.0
        assert dist.measure(Interval.make(11.5, 20.0)) == 0.0

    def test_integer_endpoints_count_inclusively(self):
        dist = CategoricalDistribution.uniform_integers(0, 9)
        assert dist.measure(Interval.make(2.0, 4.0)) == pytest.approx(0.3)

    def test_log_mass_matches_mass(self):
        dist = BinomialDistribution(20, 0.5)
        interval = Interval.make(8.5, 11.5)
        assert dist.log_mass(interval) == pytest.approx(math.log(dist.mass(interval)))
        assert dist.log_mass(Interval.make(0.1, 0.9)) == -math.inf


class TestDiscreteSampling:
    @pytest.mark.parametrize("dist", ALL_DISCRETE, ids=lambda d: type(d).__name__)
    def test_samples_are_integer_valued_atoms(self, dist, rng):
        samples = dist.sample(rng, 500)
        assert np.all(samples == np.floor(samples))
        assert samples.min() >= dist.support.lo
        assert samples.max() <= dist.support.hi

    def test_conditioned_samples_stay_inside(self, rng):
        dist = BinomialDistribution(20, 0.5)
        samples = dist.sample(rng, 500, Interval.make(7.5, 12.5))
        assert set(np.unique(samples)) <= {8.0, 9.0, 10.0, 11.0, 12.0}

    def test_single_atom_interval(self, rng):
        dist = TruncatedPoissonDistribution(3.0, 0, 20)
        samples = dist.sample(rng, 50, Interval.make(4.5, 5.5))
        assert np.all(samples == 5.0)

    def test_atom_free_interval_rejected(self, rng):
        with pytest.raises(DomainError):
            BinomialDistribution(10, 0.5).sample(rng, 10, Interval.make(3.2, 3.8))

    def test_empirical_frequencies_match_pmf(self, rng):
        dist = CategoricalDistribution(0, (0.2, 0.5, 0.3))
        samples = dist.sample(rng, 20_000)
        for value, weight in enumerate((0.2, 0.5, 0.3)):
            assert np.mean(samples == value) == pytest.approx(weight, abs=0.02)

    def test_sampling_is_seed_deterministic(self):
        dist = TruncatedGeometricDistribution(0.4, 0, 25)
        first = dist.sample(np.random.default_rng(9), 100)
        second = dist.sample(np.random.default_rng(9), 100)
        assert np.array_equal(first, second)


class TestSplitPoints:
    @pytest.mark.parametrize("dist", ALL_DISCRETE, ids=lambda d: type(d).__name__)
    def test_discrete_split_points_are_half_integers(self, dist):
        at = dist.split_point()
        assert at is not None
        assert at - math.floor(at) == pytest.approx(0.5)
        assert dist.support.lo < at < dist.support.hi
        # The two halves partition the mass exactly (no shared atom).
        left = dist.measure(Interval.make(dist.support.lo, at))
        right = dist.measure(Interval.make(at, dist.support.hi))
        assert left + right == pytest.approx(1.0)
        # The mass-median split is reasonably balanced.
        assert 0.0 < left < 1.0

    def test_single_atom_is_unsplittable(self):
        dist = BinomialDistribution(10, 0.5)
        assert dist.split_point(Interval.make(4.5, 5.5)) is None

    def test_truncnormal_split_is_conditional_median(self):
        dist = TruncatedNormalDistribution(0.0, 1.0, -2.0, 2.0)
        at = dist.split_point()
        assert at == pytest.approx(0.0, abs=1e-9)
        window = Interval.make(0.0, 2.0)
        median = dist.split_point(window)
        left = dist.measure(Interval.make(0.0, median))
        assert left == pytest.approx(dist.measure(window) / 2.0, rel=1e-6)

    def test_uniform_split_is_midpoint(self):
        dist = UniformDistribution(0.0, 4.0)
        assert dist.split_point(Interval.make(1.0, 3.0)) == pytest.approx(2.0)
        assert dist.split_point(Interval.make(2.0, 2.0)) is None


class TestDistributionSpecs:
    def test_bare_uniform(self):
        dist = parse_distribution_spec("-1:1")
        assert dist == UniformDistribution(-1.0, 1.0)

    def test_integer_range(self):
        dist = parse_distribution_spec("int:0:20")
        assert dist == CategoricalDistribution.uniform_integers(0, 20)

    def test_discrete_families(self):
        assert parse_distribution_spec("binomial:20:0.3") == BinomialDistribution(20, 0.3)
        assert parse_distribution_spec("poisson:4:0:30") == TruncatedPoissonDistribution(4.0, 0, 30)
        assert parse_distribution_spec("geometric:0.5:0:10") == TruncatedGeometricDistribution(0.5, 0, 10)
        assert parse_distribution_spec("categorical:1:0.2,0.8") == CategoricalDistribution(1, (0.2, 0.8))
        assert parse_distribution_spec("normal:0:1:-2:2") == TruncatedNormalDistribution(0.0, 1.0, -2.0, 2.0)

    @pytest.mark.parametrize("spec", ["", "x", "int:0", "binomial:0.5:20", "poisson:4:0", "nope:1:2", "1:2:3:4"])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(DomainError):
            parse_distribution_spec(spec)

    def test_profile_from_specs(self):
        profile = UsageProfile.from_specs({"x": "int:0:5", "y": "-1:1"})
        assert profile.discrete_variables() == ("x",)
        assert profile.distribution("y") == UniformDistribution(-1.0, 1.0)


class TestProfileMass:
    def test_mass_is_product_of_per_variable_masses(self):
        profile = UsageProfile({"x": BinomialDistribution(10, 0.5), "y": UniformDistribution(0.0, 2.0)})
        box = Box.from_bounds({"x": (2.5, 7.5), "y": (0.0, 1.0)})
        expected = profile.distribution("x").mass(Interval.make(2.5, 7.5)) * 0.5
        assert profile.mass(box) == pytest.approx(expected)
        assert profile.weight(box) == profile.mass(box)
        assert profile.log_mass(box) == pytest.approx(math.log(expected))

    def test_mass_free_box_short_circuits(self):
        profile = UsageProfile({"x": BinomialDistribution(10, 0.5), "y": UniformDistribution(0.0, 2.0)})
        box = Box.from_bounds({"x": (3.2, 3.8), "y": (0.0, 1.0)})
        assert profile.mass(box) == 0.0
        assert profile.log_mass(box) == -math.inf


class TestDiscretePaving:
    def test_strata_masses_partition_without_atom_sharing(self):
        """Integer-aware splits never place an atom in two sibling strata."""
        profile = UsageProfile(
            {
                "x": CategoricalDistribution.uniform_integers(0, 20),
                "y": CategoricalDistribution.uniform_integers(0, 20),
            }
        )
        pc = parse_path_condition("x + y <= 20")
        sampler = StratifiedSampler(pc, profile, np.random.default_rng(0))
        covered = sum(stratum.weight for stratum in sampler.strata)
        exact = exact_probability(pc, profile)
        # The union of strata must cover all solutions at least once and, with
        # half-integer splits, at most once: the covered mass lies between the
        # true probability and 1, and never exceeds 1.
        assert exact <= covered <= 1.0 + 1e-12

    @pytest.mark.parametrize("method", ["hit-or-miss", "importance"])
    def test_strict_inequality_boundary_atom_not_overcounted(self, method):
        """An atom exactly on a strict boundary must not count as satisfied.

        ICP pads box bounds outward and inner certification tolerates the
        padded boundary — sound for continuous profiles where the boundary
        has measure zero, wrong for an atom with positive mass.  With
        discrete variables the solver must therefore certify strictly:
        ``x < 2`` over the uniform integers 0..20 is 2/21, never 3/21.
        """
        profile = UsageProfile({"x": CategoricalDistribution.uniform_integers(0, 20)})
        config = QCoralConfig(samples_per_query=20_000, seed=3, method=method, max_rounds=1)
        result = QCoralAnalyzer(profile, config).analyze(parse_constraint_set("x < 2"))
        assert result.mean == pytest.approx(2.0 / 21.0, abs=5e-3)
        result = QCoralAnalyzer(profile, config).analyze(parse_constraint_set("x > 18"))
        assert result.mean == pytest.approx(2.0 / 21.0, abs=5e-3)
        # The non-strict counterpart keeps its exact ICP resolution.
        result = QCoralAnalyzer(profile, config).analyze(parse_constraint_set("x <= 2"))
        assert result.mean == pytest.approx(3.0 / 21.0, abs=1e-9)

    def test_discrete_estimate_is_unbiased(self):
        subject = discrete_subject_by_name("SensorGrid")
        exact = subject.exact_probability()
        config = QCoralConfig.strat_partcache(40_000, seed=3)
        result = QCoralAnalyzer(subject.profile, config).analyze(subject.constraint_set())
        assert result.mean == pytest.approx(exact, abs=5 * max(result.std, 1e-4))


class TestDiscreteSubjects:
    def test_all_subjects_have_distinct_names_and_parse(self):
        subjects = all_discrete_subjects()
        names = [subject.name for subject in subjects]
        assert len(set(names)) == len(subjects) >= 5
        for subject in subjects:
            assert subject.constraint.free_variables() <= set(subject.profile.variables)

    def test_discrete_subjects_enumerate_exactly(self):
        for subject in all_discrete_subjects():
            exact = subject.exact_probability()
            if subject.group == "discrete":
                assert exact is not None and 0.0 < exact < 1.0
            else:
                assert exact is None

    def test_unknown_subject_rejected(self):
        with pytest.raises(KeyError):
            discrete_subject_by_name("NoSuchSubject")
