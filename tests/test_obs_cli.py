"""Smoke tests of the ``qcoral obs`` cross-run analysis CLI family.

End-to-end over real artifacts: ``quantify --ledger/--trace`` produces the
ledger and trace files, then ``obs summary|history|diff|lint-trace`` analyses
them.  The drift acceptance path is exercised both ways — two identical
fixed-seed runs agree (exit 0, drift 0), and an injected estimate shift of
five sigma trips the default three-sigma threshold (exit 1, ``GATE``).
Usage failures (missing files, wrong file kinds, a ledger too thin to
compare) exit 2, pinning the exit-code contract shared with ``qcoral ci``.
"""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import LedgerEntry, open_ledger

CONSTRAINTS = "x*x + y*y <= 1"
DOMAINS = ["--domain", "x=-1:1", "--domain", "y=-1:1"]


def _quantify(tmp_path, *, seed=11, ledger=None, trace=None, extra=()):
    argv = ["quantify", CONSTRAINTS, *DOMAINS, "--samples", "2000", "--seed", str(seed)]
    if ledger is not None:
        argv += ["--ledger", str(ledger)]
    if trace is not None:
        argv += ["--trace", str(trace)]
    argv += list(extra)
    assert main(argv) == 0


@pytest.fixture()
def ledger_path(tmp_path):
    path = tmp_path / "runs.jsonl"
    _quantify(tmp_path, seed=11, ledger=path)
    _quantify(tmp_path, seed=11, ledger=path)
    return path


def test_quantify_ledger_flag_appends_entries(ledger_path):
    with open_ledger(str(ledger_path)) as ledger:
        entries = ledger.entries()
    assert len(entries) == 2
    assert entries[0].family == entries[1].family
    assert entries[0].mean == entries[1].mean  # same seed, same estimate


def test_obs_summary_on_ledger(ledger_path, capsys):
    assert main(["obs", "summary", str(ledger_path)]) == 0
    out = capsys.readouterr().out
    assert "entries:        2 across 1 families" in out
    assert "diagnostics:" in out


def test_obs_history_renders_family(ledger_path, capsys):
    assert main(["obs", "history", str(ledger_path)]) == 0
    out = capsys.readouterr().out
    assert "2 run(s)" in out
    assert out.count("\n") >= 4  # header + rule + two rows


def test_obs_diff_same_seed_runs_agree(ledger_path, capsys):
    assert main(["obs", "diff", str(ledger_path)]) == 0
    out = capsys.readouterr().out
    assert "drift:      0.00 sigma" in out
    assert "OK: estimates agree" in out


def test_obs_diff_flags_injected_drift(ledger_path, capsys):
    # Inject a candidate whose mean shifted by five sigma: the default
    # three-sigma threshold must flag it and exit non-zero.
    with open_ledger(str(ledger_path)) as ledger:
        base = ledger.entries()[-1]
        report = dict(base.report)
        report["mean"] = base.mean + 5.0 * base.std
        shifted = LedgerEntry.from_dict({**base.to_dict(), "run_id": "f" * 16, "report": report})
        ledger.append(shifted)
    assert main(["obs", "diff", str(ledger_path)]) == 1
    out = capsys.readouterr().out
    assert "GATE: estimates differ" in out
    drift_sigmas = 5.0 / (2.0**0.5)
    assert f"{drift_sigmas:.2f} sigma" in out
    # A looser threshold accepts the same pair.
    assert main(["obs", "diff", str(ledger_path), "--threshold", "10"]) == 0


def test_obs_diff_needs_two_runs(tmp_path, capsys):
    path = tmp_path / "single.jsonl"
    _quantify(tmp_path, ledger=path)
    # A ledger too thin to compare is a usage error (exit 2), not a tripped
    # gate (exit 1) — CI must not read "nothing to compare" as a verdict.
    assert main(["obs", "diff", str(path)]) == 2
    assert "need at least two runs" in capsys.readouterr().err


def test_obs_on_sqlite_ledger(tmp_path, capsys):
    path = tmp_path / "runs.db"
    _quantify(tmp_path, seed=3, ledger=path)
    _quantify(tmp_path, seed=3, ledger=path)
    assert main(["obs", "history", str(path)]) == 0
    assert "2 run(s)" in capsys.readouterr().out
    assert main(["obs", "diff", str(path)]) == 0


def test_obs_lint_trace_accepts_real_trace(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _quantify(tmp_path, trace=trace)
    _quantify(tmp_path, trace=trace)  # appended second run: span ids restart
    assert main(["obs", "lint-trace", str(trace)]) == 0
    assert "OK:" in capsys.readouterr().out


def test_obs_lint_trace_rejects_corrupt_trace(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _quantify(tmp_path, trace=trace)
    with open(trace, "a", encoding="utf-8") as handle:
        handle.write("not json\n")
        handle.write(json.dumps({"name": "missing keys"}) + "\n")
    assert main(["obs", "lint-trace", str(trace)]) == 1
    out = capsys.readouterr().out
    assert "not valid JSON" in out
    assert "FAIL: 2 problem(s)" in out


def test_obs_summary_on_trace(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    _quantify(tmp_path, seed=5, trace=trace)
    assert main(["obs", "summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "schema:         qcoral-trace-1" in out
    assert "seed:           5" in out
    assert "qcoral.round" in out


def test_obs_rejects_wrong_file_kinds(tmp_path, capsys):
    ledger = tmp_path / "runs.jsonl"
    trace = tmp_path / "trace.jsonl"
    _quantify(tmp_path, ledger=ledger, trace=trace)
    # Wrong-kind and missing files are usage errors: exit 2 across the board.
    assert main(["obs", "lint-trace", str(ledger)]) == 2
    assert "run ledger, not a trace" in capsys.readouterr().err
    assert main(["obs", "diff", str(trace)]) == 2
    assert "trace file, not a run ledger" in capsys.readouterr().err
    assert main(["obs", "summary", str(tmp_path / "missing.jsonl")]) == 2
    assert "no such file" in capsys.readouterr().err
