"""Tests for the incremental/adaptive estimation engine.

Covers the tentpole invariants of the iterative refactor:

* :class:`RunningEstimate` is a faithful, mergeable accumulator;
* the samplers are resumable (extending a prior equals one longer run);
* budget allocation conserves every sample (no leak on inner/empty strata);
* the adaptive loop respects ``target_std``, never exceeds the budget, and
  reproduces the fixed-budget mean;
* the pipeline shares one analyzer (and hence one factor cache) between the
  event and bounded-path analyses.
"""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimate import Estimate, RunningEstimate
from repro.core.montecarlo import hit_or_miss
from repro.core.profiles import UsageProfile
from repro.core.qcoral import (
    DEFAULT_ADAPTIVE_ROUNDS,
    QCoralAnalyzer,
    QCoralConfig,
    quantify,
)
from repro.core.stratified import (
    StratifiedSampler,
    allocate_budget,
    allocation_priorities,
    stratified_sampling,
)
from repro.errors import ConfigurationError
from repro.icp.config import ICPConfig
from repro.lang.parser import parse_constraint_set, parse_path_condition


@pytest.fixture
def square_profile():
    return UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})


# --------------------------------------------------------------------------- #
# RunningEstimate
# --------------------------------------------------------------------------- #
class TestRunningEstimate:
    def test_matches_from_hits(self):
        accumulator = RunningEstimate.from_counts(30, 100)
        reference = Estimate.from_hits(30, 100)
        assert accumulator.to_estimate().mean == pytest.approx(reference.mean)
        assert accumulator.to_estimate().variance == pytest.approx(reference.variance)

    def test_incremental_equals_one_shot(self):
        incremental = RunningEstimate()
        incremental.absorb_counts(10, 40)
        incremental.absorb_counts(25, 60)
        one_shot = RunningEstimate.from_counts(35, 100)
        assert incremental.samples == 100
        assert incremental.mean == pytest.approx(one_shot.mean)
        assert incremental.m2 == pytest.approx(one_shot.m2)

    def test_merge_is_commutative(self):
        a = RunningEstimate.from_counts(3, 10)
        b = RunningEstimate.from_counts(45, 90)
        ab = a.merged(b)
        ba = b.merged(a)
        assert ab.samples == ba.samples == 100
        assert ab.mean == pytest.approx(ba.mean)
        assert ab.m2 == pytest.approx(ba.m2)

    def test_empty_accumulator_is_maximally_uncertain(self):
        estimate = RunningEstimate().to_estimate()
        assert estimate.mean == 0.5
        assert estimate.variance == 0.25

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=500), st.floats(0.0, 1.0)), min_size=1, max_size=8))
    def test_batched_absorption_matches_totals(self, batches):
        accumulator = RunningEstimate()
        total_hits = 0
        total_samples = 0
        for samples, rate in batches:
            hits = int(rate * samples)
            accumulator.absorb_counts(hits, samples)
            total_hits += hits
            total_samples += samples
        reference = Estimate.from_hits(total_hits, total_samples)
        assert accumulator.samples == total_samples
        assert accumulator.mean == pytest.approx(reference.mean, abs=1e-12)
        assert accumulator.variance_of_mean() == pytest.approx(reference.variance, abs=1e-12)

    def test_invalid_counts_rejected(self):
        accumulator = RunningEstimate()
        with pytest.raises(ValueError):
            accumulator.absorb_counts(5, 3)
        with pytest.raises(ValueError):
            accumulator.absorb_counts(-1, 3)


# --------------------------------------------------------------------------- #
# Resumable samplers
# --------------------------------------------------------------------------- #
class TestResumableSampling:
    def test_prior_extends_counts(self, square_profile):
        pc = parse_path_condition("x >= 0")
        rng = np.random.default_rng(1)
        first = hit_or_miss(pc, square_profile, 1000, rng)
        second = hit_or_miss(pc, square_profile, 2000, rng, prior=first)
        assert second.samples == 3000
        assert second.hits >= first.hits
        assert second.estimate.mean == pytest.approx(second.hits / 3000)

    def test_resumed_run_equals_merged_runs(self, square_profile):
        pc = parse_path_condition("x * x + y * y <= 1")
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        merged = hit_or_miss(pc, square_profile, 500, rng_a).merge(hit_or_miss(pc, square_profile, 700, rng_a))
        resumed = hit_or_miss(
            pc,
            square_profile,
            700,
            rng_b,
            prior=hit_or_miss(pc, square_profile, 500, rng_b),
        )
        assert resumed.hits == merged.hits
        assert resumed.samples == merged.samples

    def test_sampler_extension_accumulates(self, square_profile):
        pc = parse_path_condition("x * x + y * y <= 1")
        sampler = StratifiedSampler(pc, square_profile, np.random.default_rng(4))
        assert sampler.extend(1000) == 1000
        first = sampler.estimate()
        assert sampler.extend(4000) == 4000
        second = sampler.estimate()
        assert sampler.total_samples == 5000
        assert second.variance < first.variance
        assert second.mean == pytest.approx(np.pi / 4, abs=0.03)


# --------------------------------------------------------------------------- #
# Budget conservation and allocation
# --------------------------------------------------------------------------- #
class TestBudgetAllocation:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_allocation_conserves_budget(self, priorities, budget):
        shares = allocate_budget(priorities, budget)
        assert sum(shares) == budget
        assert all(share >= 0 for share in shares)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_active_entries_get_minimum_one(self, priorities, budget):
        shares = allocate_budget(priorities, budget)
        if budget >= len(priorities):
            assert all(share >= 1 for share in shares)

    def test_zero_priority_entries_get_nothing(self):
        shares = allocate_budget([0.0, 5.0, 0.0, 5.0], 1000)
        assert shares[0] == 0 and shares[2] == 0
        assert shares[1] + shares[3] == 1000

    def test_all_zero_priorities_split_evenly(self):
        assert allocate_budget([0.0, 0.0], 10) == [5, 5]

    def test_negative_priorities_rejected(self):
        with pytest.raises(ConfigurationError):
            allocate_budget([-1.0], 10)

    def test_stratified_budget_fully_spent(self, square_profile):
        """The seed's leak: inner boxes must not silently eat budget shares."""
        profile = UsageProfile.uniform({"x": (-2, 2)})
        pc = parse_path_condition("x * x <= 1")
        for budget in (100, 999, 5000):
            result = stratified_sampling(pc, profile, budget, np.random.default_rng(9))
            sampleable = [r for r in result.strata if not r.inner and r.weight > 0]
            if sampleable:
                assert result.total_samples == budget
            inner = [r for r in result.strata if r.inner]
            assert all(r.samples == 0 for r in inner)

    def test_circle_budget_conserved_with_inner_boxes(self, square_profile):
        pc = parse_path_condition("x * x + y * y <= 1")
        result = stratified_sampling(
            pc, square_profile, 7531, np.random.default_rng(11), icp_config=ICPConfig(max_boxes=16)
        )
        assert any(r.inner for r in result.strata)
        assert result.total_samples == 7531

    def test_neyman_priorities_weighted_by_sigma(self, square_profile):
        pc = parse_path_condition("x * x + y * y <= 1")
        sampler = StratifiedSampler(pc, square_profile, np.random.default_rng(12))
        sampler.extend(2000, allocation="even")
        priorities = allocation_priorities(sampler.strata, "neyman")
        for stratum, priority in zip(sampler.strata, priorities):
            if stratum.sampleable:
                assert priority == pytest.approx(stratum.weight * stratum.sigma())
            else:
                assert priority == 0.0

    def test_all_miss_pilot_does_not_starve_a_stratum(self):
        from repro.core.stratified import Stratum, laplace_sigma_floor
        from repro.intervals.box import Box
        from repro.intervals.interval import Interval

        stratum = Stratum(Box({"x": Interval.make(0.0, 1.0)}), weight=0.5, inner=False)
        stratum.absorb(0, 100)  # pilot saw no hits: observed σ̂ is exactly 0
        assert stratum.sigma() == pytest.approx(laplace_sigma_floor(0, 100))
        assert stratum.sigma() > 0.0
        assert allocation_priorities([stratum], "neyman")[0] > 0.0
        # All-hit pilots are floored symmetrically.
        saturated = Stratum(Box({"x": Interval.make(0.0, 1.0)}), weight=0.5, inner=False)
        saturated.absorb(50, 50)
        assert saturated.sigma() == pytest.approx(laplace_sigma_floor(50, 50))

    def test_sigma_floor_decays_with_evidence(self):
        from repro.core.stratified import laplace_sigma_floor

        floors = [laplace_sigma_floor(0, n) for n in (10, 100, 1000, 10_000)]
        assert floors == sorted(floors, reverse=True)
        assert floors[-1] < 0.02

    def test_zero_variance_factor_keeps_priority(self, square_profile):
        # A factor whose pilot samples all missed must still receive budget
        # in later Neyman rounds (the Laplace floor in _factor_priorities);
        # a hard-zero priority would freeze it at its pilot share forever.
        config = QCoralConfig(
            samples_per_query=2000,
            stratified=False,
            partition_and_cache=True,
            seed=21,
            allocation="neyman",
            max_rounds=3,
        )
        analyzer = QCoralAnalyzer(square_profile, config)
        # P(x >= 0.99999) = 5e-6: the rare factor's pilot sees 0 hits.
        result = analyzer.analyze(parse_constraint_set("x >= 0.99999 || y <= 0"))
        rare = next(
            factor
            for report in result.path_reports
            for factor in report.factors
            if factor.variables == frozenset({"x"})
        )
        assert rare.estimate.mean == 0.0  # the pilot indeed saw no hits
        # Pilot share: 25% of the 4000-sample pool, split evenly => 500.
        assert rare.samples > 500


# --------------------------------------------------------------------------- #
# Adaptive configuration
# --------------------------------------------------------------------------- #
class TestAdaptiveConfig:
    def test_target_std_activates_rounds(self):
        config = QCoralConfig(target_std=1e-3)
        assert config.is_adaptive
        assert config.max_rounds == DEFAULT_ADAPTIVE_ROUNDS

    def test_neyman_activates_rounds(self):
        config = QCoralConfig(allocation="neyman")
        assert config.is_adaptive

    def test_adaptive_preset_label(self):
        assert QCoralConfig.adaptive().feature_label() == "qCORAL{STRAT,PARTCACHE,ADAPT}"

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            QCoralConfig(target_std=0.0)
        with pytest.raises(ConfigurationError):
            QCoralConfig(max_rounds=0)
        with pytest.raises(ConfigurationError):
            QCoralConfig(initial_fraction=0.0)
        with pytest.raises(ConfigurationError):
            QCoralConfig(allocation="magic")


# --------------------------------------------------------------------------- #
# The adaptive loop
# --------------------------------------------------------------------------- #
class TestAdaptiveLoop:
    def test_stops_once_target_met(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        config = QCoralConfig(samples_per_query=100_000, target_std=5e-3, seed=21, allocation="neyman")
        result = quantify(cs, square_profile, config)
        assert result.met_target
        assert result.std <= 5e-3
        assert result.rounds < config.max_rounds
        assert result.total_samples < 100_000

    def test_never_exceeds_budget(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1 || x > 0.5 && sin(y) > 0.3")
        config = QCoralConfig(samples_per_query=5000, target_std=1e-12, seed=22, allocation="neyman")
        result = quantify(cs, square_profile, config)
        sampled_factors = sum(1 for report in result.path_reports for factor in report.factors if factor.samples > 0)
        assert not result.met_target
        assert result.total_samples <= 5000 * sampled_factors
        assert result.rounds == config.max_rounds

    def test_round_reports_are_monotone(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        config = QCoralConfig(samples_per_query=20_000, seed=23, allocation="neyman", max_rounds=5)
        result = quantify(cs, square_profile, config)
        assert result.rounds == 5
        cumulative = [report.total_samples for report in result.round_reports]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == result.total_samples == 20_000
        assert result.round_reports[-1].std <= result.round_reports[0].std

    def test_adaptive_reproduces_fixed_budget_mean(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        fixed = quantify(cs, square_profile, QCoralConfig.strat_partcache(20_000, seed=24))
        adaptive = quantify(cs, square_profile, QCoralConfig.adaptive(20_000, seed=24))
        assert adaptive.total_samples == fixed.total_samples
        assert adaptive.mean == pytest.approx(fixed.mean, abs=0.02)
        assert adaptive.mean == pytest.approx(np.pi / 4, abs=0.02)

    def test_single_round_has_one_report(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        result = quantify(cs, square_profile, QCoralConfig.strat_partcache(2000, seed=25))
        assert result.rounds == 1
        assert result.round_reports[0].total_samples == result.total_samples

    def test_exact_queries_have_no_rounds(self, square_profile):
        cs = parse_constraint_set("x <= 2")
        result = quantify(cs, square_profile, QCoralConfig.adaptive(1000, seed=26))
        assert result.rounds == 0
        assert result.total_samples == 0
        assert result.mean == pytest.approx(1.0, abs=1e-9)

    def test_plain_mc_adaptive(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        config = QCoralConfig(
            samples_per_query=10_000,
            stratified=False,
            partition_and_cache=False,
            seed=27,
            allocation="neyman",
        )
        result = quantify(cs, square_profile, config)
        assert result.total_samples == 10_000
        assert result.mean == pytest.approx(np.pi / 4, abs=0.03)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=200, max_value=5000), st.integers(min_value=0, max_value=50))
    def test_budget_conservation_property(self, budget, seed):
        """Non-exact single-factor queries spend exactly their budget."""
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        cs = parse_constraint_set("x * x + y * y <= 1")
        result = quantify(cs, profile, QCoralConfig.adaptive(budget, seed=seed))
        assert result.total_samples == budget


# --------------------------------------------------------------------------- #
# Pipeline analyzer sharing
# --------------------------------------------------------------------------- #
class TestPipelineAnalyzerSharing:
    def test_single_analyzer_shared_between_analyses(self):
        from repro.analysis.pipeline import ProbabilisticAnalysisPipeline
        from repro.subjects import programs

        pipeline = ProbabilisticAnalysisPipeline(
            programs.SAFETY_MONITOR, config=QCoralConfig.strat_partcache(2000, seed=31)
        )
        assert pipeline.analyzer() is pipeline.analyzer()
        result = pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        assert result.mean == pytest.approx(0.737848, abs=0.05)

    def test_cache_shared_across_events(self):
        from repro.analysis.pipeline import ProbabilisticAnalysisPipeline
        from repro.subjects import programs

        pipeline = ProbabilisticAnalysisPipeline(
            programs.SAFETY_MONITOR, config=QCoralConfig.strat_partcache(2000, seed=32)
        )
        first = pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        # The statistics object is shared with the analyzer's live cache, so
        # snapshot the counter before the second run mutates it.
        hits_after_first = first.qcoral_result.cache_statistics.hits
        second = pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        # The second analysis of the same event is served from the factor
        # cache of the shared analyzer: no new samples are drawn.
        assert second.qcoral_result.total_samples == 0
        assert second.qcoral_result.cache_statistics.hits > hits_after_first
        assert second.mean == pytest.approx(first.mean, abs=1e-12)
