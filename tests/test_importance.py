"""Tests of the distribution-aware importance-sampling estimation layer."""

import os
import tempfile

import numpy as np
import pytest

from repro.cli import main
from repro.core.importance import (
    ESTIMATION_METHODS,
    ImportanceSampler,
    importance_sampling,
)
from repro.core.profiles import (
    BinomialDistribution,
    CategoricalDistribution,
    TruncatedNormalDistribution,
    UsageProfile,
)
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.core.stratified import stratified_sampling
from repro.errors import ConfigurationError
from repro.icp.config import ICPConfig
from repro.lang.parser import parse_path_condition
from repro.subjects.discrete import all_discrete_subjects, discrete_subject_by_name


def peaked_profile():
    return UsageProfile({"x": BinomialDistribution(20, 0.5), "y": TruncatedNormalDistribution(0.0, 0.4, -1.0, 1.0)})


PEAKED_PC = "sin(x * 0.55) + y * y <= 0.3"


class TestImportanceSampler:
    def test_refinement_respects_box_cap(self):
        pc = parse_path_condition(PEAKED_PC)
        for cap in (10, 32, 64):
            sampler = ImportanceSampler(pc, peaked_profile(), np.random.default_rng(0), max_boxes=cap)
            assert len(sampler.strata) <= cap

    def test_refined_strata_masses_stay_a_partition(self):
        pc = parse_path_condition(PEAKED_PC)
        sampler = ImportanceSampler(pc, peaked_profile(), np.random.default_rng(0))
        covered = sum(stratum.weight for stratum in sampler.strata)
        assert 0.0 < covered <= 1.0 + 1e-9

    def test_self_normalised_estimate_matches_stratified_combination(self):
        """With exact masses the SN estimator equals Σ w_i p̂_i (module doc)."""
        pc = parse_path_condition(PEAKED_PC)
        sampler = ImportanceSampler(pc, peaked_profile(), np.random.default_rng(1))
        sampler.extend(5_000, allocation="neyman")
        expected = super(ImportanceSampler, sampler).estimate()
        actual = sampler.estimate()
        assert actual.mean == pytest.approx(expected.mean, rel=1e-12)
        assert actual.variance == pytest.approx(expected.variance, rel=1e-12)

    def test_lower_sigma_than_hit_or_miss_at_equal_budget(self):
        pc = parse_path_condition(PEAKED_PC)
        base = stratified_sampling(pc, peaked_profile(), 20_000, np.random.default_rng(7))
        imp = importance_sampling(pc, peaked_profile(), 20_000, np.random.default_rng(7))
        assert imp.total_samples == base.total_samples == 20_000
        assert imp.estimate.std < base.estimate.std
        assert imp.estimate.mean == pytest.approx(base.estimate.mean, abs=0.02)

    def test_mass_allocation_policy_follows_masses(self):
        pc = parse_path_condition(PEAKED_PC)
        sampler = ImportanceSampler(pc, peaked_profile(), np.random.default_rng(2))
        sampler.extend(10_000, allocation="mass")
        sampled = [s for s in sampler.strata if s.sampleable and s.samples > 0]
        heavy = max(sampled, key=lambda s: s.weight)
        light = min(sampled, key=lambda s: s.weight)
        if heavy.weight > 10 * light.weight:
            assert heavy.samples > light.samples

    def test_invalid_knobs_rejected(self):
        pc = parse_path_condition(PEAKED_PC)
        with pytest.raises(ConfigurationError):
            ImportanceSampler(pc, peaked_profile(), np.random.default_rng(0), max_boxes=0)
        with pytest.raises(ConfigurationError):
            ImportanceSampler(pc, peaked_profile(), np.random.default_rng(0), adaptive_splits=-1)

    def test_adaptive_splits_account_for_discarded_budget(self):
        pc = parse_path_condition(PEAKED_PC)
        sampler = ImportanceSampler(pc, peaked_profile(), np.random.default_rng(3), max_boxes=16, adaptive_splits=3)
        used = 0
        for _ in range(4):
            used += sampler.extend(2_000, allocation="neyman")
        # Every drawn sample is accounted for: live strata plus write-offs.
        assert sampler.total_samples == used
        assert sampler.discarded_samples > 0
        assert sum(s.samples for s in sampler.strata) == used - sampler.discarded_samples

    def test_adaptive_split_resolving_last_stratum_freezes_exact(self):
        """When splits prove every stratum inner, sampling stops for good.

        ``sin(x) - sin(x) >= -0.6`` holds everywhere, but the interval
        evaluator cannot certify it over a wide box (the classic dependency
        problem: both ``sin(x)`` occurrences range over [-1, 1] independently,
        so the difference encloses [-2, 2]); narrow single-atom boxes do
        certify.  Adaptive splits must therefore eventually prove the whole
        domain inner, freeze the exact estimate, and refuse further budget —
        instead of dumping it into inner boxes via the all-zero-priority
        allocation fallback.
        """
        profile = UsageProfile({"x": CategoricalDistribution.uniform_integers(0, 3)})
        pc = parse_path_condition("sin(x) - sin(x) >= 0.0 - 0.6")
        sampler = ImportanceSampler(
            pc,
            profile,
            np.random.default_rng(1),
            # A one-box ICP paving and no upfront refinement leave a single
            # uncertifiable stratum, so only adaptive splits can resolve it.
            icp_config=ICPConfig(max_boxes=1),
            max_boxes=1,
            adaptive_splits=5,
        )
        assert not sampler.is_exact
        used = []
        for _ in range(6):
            used.append(sampler.extend(100, allocation="neyman"))
        assert sampler.is_exact
        assert used[-1] == 0
        assert sampler.estimate().mean == pytest.approx(1.0)
        assert sampler.estimate().variance == 0.0
        # Every drawn sample is still accounted for after the write-offs.
        assert sampler.total_samples == sum(used)
        assert sampler.discarded_samples > 0

    def test_fingerprint_carries_refinement_prefix(self):
        pc = parse_path_condition(PEAKED_PC)
        sampler = ImportanceSampler(pc, peaked_profile(), np.random.default_rng(0))
        fingerprint = sampler.paving_fingerprint(("x", "y"))
        assert fingerprint.startswith("imp64|")


class TestImportanceConfig:
    def test_method_validation(self):
        with pytest.raises(ConfigurationError):
            QCoralConfig(method="nope")
        with pytest.raises(ConfigurationError):
            QCoralConfig(method="importance", stratified=False)
        with pytest.raises(ConfigurationError):
            QCoralConfig(mass_split_boxes=0)
        with pytest.raises(ConfigurationError):
            QCoralConfig(mass_split_adaptive=-1)
        assert "hit-or-miss" in ESTIMATION_METHODS and "importance" in ESTIMATION_METHODS

    def test_importance_upgrades_allocation_and_rounds(self):
        config = QCoralConfig(method="importance")
        assert config.allocation == "neyman"
        assert config.is_adaptive

    def test_mass_allocation_is_preserved(self):
        config = QCoralConfig(method="importance", allocation="mass")
        assert config.allocation == "mass"

    def test_preset_and_label(self):
        config = QCoralConfig.importance(5_000, seed=1, mass_split_boxes=32)
        assert config.method == "importance"
        assert config.mass_split_boxes == 32
        assert config.feature_label() == "qCORAL{STRAT,PARTCACHE,ADAPT,IMP}"


class TestImportanceAnalyzer:
    def test_equal_budget_lower_sigma_on_peaked_subjects(self):
        improved = 0
        for name in ("LoadSpike", "BurstySensor"):
            subject = discrete_subject_by_name(name)
            base = QCoralAnalyzer(
                subject.profile, QCoralConfig.strat_partcache(15_000, seed=11)
            ).analyze(subject.constraint_set())
            imp = QCoralAnalyzer(
                subject.profile, QCoralConfig.importance(15_000, seed=11)
            ).analyze(subject.constraint_set())
            assert imp.total_samples == base.total_samples
            if imp.std < base.std:
                improved += 1
        assert improved == 2

    def test_discrete_subjects_are_resolved_to_ground_truth(self):
        """Per-atom refinement makes all-discrete subjects effectively exact."""
        for subject in all_discrete_subjects():
            if subject.group != "discrete":
                continue
            result = QCoralAnalyzer(
                subject.profile, QCoralConfig.importance(5_000, seed=2, mass_split_boxes=256)
            ).analyze(subject.constraint_set())
            assert result.mean == pytest.approx(subject.exact_probability(), abs=1e-9)

    def test_bit_identical_across_executors(self):
        subject = discrete_subject_by_name("BurstySensor")
        outcomes = set()
        for executor, workers in (("serial", None), ("thread", 3), ("process", 2)):
            config = QCoralConfig.importance(8_000, seed=5, mass_split_adaptive=2).with_executor(executor, workers)
            with QCoralAnalyzer(subject.profile, config) as analyzer:
                result = analyzer.analyze(subject.constraint_set())
            outcomes.add((result.mean, result.variance, result.total_samples))
        assert len(outcomes) == 1

    def test_serial_path_matches_itself_across_runs(self):
        subject = discrete_subject_by_name("LoadSpike")
        config = QCoralConfig.importance(6_000, seed=9)
        first = QCoralAnalyzer(subject.profile, config).analyze(subject.constraint_set())
        second = QCoralAnalyzer(subject.profile, config).analyze(subject.constraint_set())
        assert first.mean == second.mean and first.variance == second.variance


class TestImportanceStore:
    def _store_path(self):
        handle, path = tempfile.mkstemp(suffix=".db")
        os.close(handle)
        os.remove(path)
        return path

    def test_method_tags_never_pool_across_methods(self):
        subject = discrete_subject_by_name("BurstySensor")
        path = self._store_path()
        try:
            imp_config = QCoralConfig.importance(5_000, seed=5).with_store(path)
            with QCoralAnalyzer(subject.profile, imp_config) as analyzer:
                analyzer.analyze(subject.constraint_set())
            hom_config = QCoralConfig.strat_partcache(5_000, seed=5).with_store(path)
            with QCoralAnalyzer(subject.profile, hom_config) as analyzer:
                result = analyzer.analyze(subject.constraint_set())
            # The hit-or-miss run sees a store with only importance entries:
            # every lookup must miss and its own counts publish separately.
            assert result.cache_statistics.store_hits == 0
            assert result.cache_statistics.store_publishes > 0
        finally:
            os.remove(path)

    def test_warm_importance_rerun_reuses_outright(self):
        subject = discrete_subject_by_name("BurstySensor")
        path = self._store_path()
        try:
            config = QCoralConfig.importance(5_000, seed=5).with_store(path)
            with QCoralAnalyzer(subject.profile, config) as analyzer:
                cold = analyzer.analyze(subject.constraint_set())
            with QCoralAnalyzer(subject.profile, config) as analyzer:
                warm = analyzer.analyze(subject.constraint_set())
            assert warm.total_samples == 0
            assert warm.cache_statistics.store_hits > 0
            assert warm.mean == cold.mean
        finally:
            os.remove(path)

    def test_stratified_entries_reject_invalid_stratum_counts(self):
        """Per-stratum counts must be valid Bernoulli pools — the store's last
        line of defence against a corrupted delta."""
        from repro.store.entry import StoreEntry, StoreError

        with pytest.raises(StoreError):
            StoreEntry.from_strata(((5, 3),), paving="imp64|Bx")
        with pytest.raises(StoreError):
            StoreEntry.from_strata(((-1, 3),), paving="imp64|Bx")
        entry = StoreEntry.from_strata(((2, 3), (0, 4)), paving="imp64|Bx")
        assert entry.samples == 7

    def test_adaptive_split_warm_run_skips_publish(self):
        """A warm run whose paving drifted via adaptive splits publishes nothing."""
        subject = discrete_subject_by_name("BurstySensor")
        path = self._store_path()
        try:
            cold_config = QCoralConfig.importance(4_000, seed=5).with_store(path)
            with QCoralAnalyzer(subject.profile, cold_config) as analyzer:
                analyzer.analyze(subject.constraint_set())
            warm_config = QCoralConfig.importance(8_000, seed=6, mass_split_adaptive=4).with_store(path)
            with QCoralAnalyzer(subject.profile, warm_config) as analyzer:
                warm = analyzer.analyze(subject.constraint_set())
            stats = warm.cache_statistics
            if stats.warm_starts > 0 and warm.total_samples > 0:
                # Either the paving survived (publish merges) or it drifted
                # (publish skipped); both keep the store consistent.
                assert stats.store_publishes in (0, stats.warm_starts)
        finally:
            os.remove(path)


class TestImportanceCli:
    def test_quantify_with_discrete_domain_and_method(self, capsys):
        code = main(
            [
                "quantify",
                PEAKED_PC,
                "--domain",
                "x=binomial:20:0.5",
                "--domain",
                "y=normal:0:0.4:-1:1",
                "--samples",
                "5000",
                "--seed",
                "3",
                "--method",
                "importance",
                "--mass-split-boxes",
                "32",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "qCORAL{STRAT,PARTCACHE,ADAPT,IMP}" in captured.out

    def test_quantify_rejects_bad_domain_spec(self, capsys):
        code = main(["quantify", "x <= 1", "--domain", "x=binomial:oops", "--samples", "100"])
        assert code == 1
        assert "invalid distribution spec" in capsys.readouterr().err

    def test_analyze_rejects_unknown_override_variable(self, tmp_path, capsys):
        program = tmp_path / "prog.prob"
        program.write_text("input x in [0, 20];\nif (x >= 5) { observe(high); } else { skip; }\n")
        code = main(["analyze", str(program), "high", "--domain", "y=int:0:5", "--samples", "100"])
        assert code == 1
        assert "unknown program inputs" in capsys.readouterr().err

    def test_analyze_rejects_override_wider_than_declared_bounds(self, tmp_path, capsys):
        """Symbolic execution prunes against declared bounds, so a wider
        override would silently drop the mass of paths outside them."""
        program = tmp_path / "prog.prob"
        program.write_text("input x in [0, 10];\nif (x >= 5) { observe(high); } else { skip; }\n")
        code = main(["analyze", str(program), "high", "--domain", "x=int:0:20", "--samples", "100"])
        assert code == 1
        assert "outside the declared bounds" in capsys.readouterr().err

    def test_analyze_accepts_domain_override(self, tmp_path, capsys):
        source = ("input x in [0, 20];\n" "if (x * x >= 50) { observe(high); } else { skip; }\n")
        program = tmp_path / "prog.prob"
        program.write_text(source)
        code = main(
            [
                "analyze",
                str(program),
                "high",
                "--domain",
                "x=binomial:20:0.3",
                "--samples",
                "4000",
                "--seed",
                "1",
                "--method",
                "importance",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "probability:" in captured.out
