"""Unit tests for the mini language: parser, interpreter, symbolic executor."""

import numpy as np
import pytest

from repro.errors import ParseError, SymbolicExecutionError
from repro.lang.evaluator import holds_any
from repro.subjects import programs
from repro.symexec import (
    ASSERTION_VIOLATION_EVENT,
    ConcreteInterpreter,
    SymbolicExecutor,
    execute_program,
    parse_program,
    run_program,
)


class TestProgramParser:
    def test_parse_safety_monitor(self):
        program = parse_program(programs.SAFETY_MONITOR, name="monitor")
        assert program.input_names() == ("altitude", "headFlap", "tailFlap")
        assert program.input_bounds()["altitude"] == (0.0, 20000.0)

    def test_negative_bounds(self):
        program = parse_program("input x in [-5, -1];\nskip;")
        assert program.input_bounds()["x"] == (-5.0, -1.0)

    def test_empty_domain_rejected(self):
        with pytest.raises(ParseError):
            parse_program("input x in [1, 0];\nskip;")

    def test_program_without_inputs_rejected(self):
        with pytest.raises(ParseError):
            parse_program("skip;")

    def test_else_if_chain(self):
        source = """
        input x in [0, 10];
        if (x >= 7) { observe(high); }
        else if (x >= 3) { observe(mid); }
        else { observe(low); }
        """
        program = parse_program(source)
        result = execute_program(program)
        assert set(result.events()) == {"high", "mid", "low"}

    def test_while_loop_parsing(self):
        program = parse_program(programs.THERMOSTAT)
        assert program.input_names() == ("temperature", "heatingRate")

    def test_boolean_conditions(self):
        source = """
        input x in [0, 1];
        input y in [0, 1];
        if (x >= 0.5 && y >= 0.5 || !(x <= 0.9)) { observe(hit); }
        """
        program = parse_program(source)
        result = execute_program(program)
        assert "hit" in result.events()

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_program("input x in [0, 1]\nskip;")


class TestConcreteInterpreter:
    def test_safety_monitor_high_altitude(self):
        program = parse_program(programs.SAFETY_MONITOR)
        trace = run_program(program, {"altitude": 12000, "headFlap": 0, "tailFlap": 0})
        assert trace.observed("callSupervisor")

    def test_safety_monitor_low_altitude_safe_flaps(self):
        program = parse_program(programs.SAFETY_MONITOR)
        trace = run_program(program, {"altitude": 100, "headFlap": 0.0, "tailFlap": 0.0})
        assert not trace.observed("callSupervisor")

    def test_assignment_and_arithmetic(self):
        program = parse_program("input x in [0, 10];\ny = x * 2 + 1;\nif (y >= 5) { observe(big); }")
        assert run_program(program, {"x": 3}).observed("big")
        assert not run_program(program, {"x": 1}).observed("big")

    def test_while_loop_terminates(self):
        program = parse_program(programs.THERMOSTAT)
        trace = run_program(program, {"temperature": 10, "heatingRate": 0.5})
        assert trace.observed("slowHeating")

    def test_loop_bound_flag(self):
        source = "input x in [0, 1];\nwhile (x >= 0) { x = x + 1; }"
        program = parse_program(source)
        trace = run_program(program, {"x": 0.5}, loop_bound=10)
        assert trace.hit_bound

    def test_assert_violation_event(self):
        program = parse_program(programs.SCORING_WITH_ASSERT)
        violated = run_program(program, {"score": 100, "bonus": 15})
        satisfied = run_program(program, {"score": 50, "bonus": 10})
        assert violated.observed(ASSERTION_VIOLATION_EVENT)
        assert not satisfied.observed(ASSERTION_VIOLATION_EVENT)

    def test_missing_input_rejected(self):
        program = parse_program(programs.SAFETY_MONITOR)
        with pytest.raises(SymbolicExecutionError):
            run_program(program, {"altitude": 100})

    def test_invalid_loop_bound(self):
        program = parse_program(programs.SAFETY_MONITOR)
        with pytest.raises(SymbolicExecutionError):
            ConcreteInterpreter(program, loop_bound=0)


class TestSymbolicExecutor:
    def test_safety_monitor_paths(self):
        program = parse_program(programs.SAFETY_MONITOR)
        result = execute_program(program)
        assert result.path_count == 3
        target = result.constraint_set_for("callSupervisor")
        assert len(target) == 2

    def test_paths_are_disjoint_and_cover_domain(self):
        """Sampled inputs satisfy exactly one path condition (Section 4 disjointness)."""
        program = parse_program(programs.SAFETY_MONITOR)
        result = execute_program(program)
        rng = np.random.default_rng(5)
        bounds = program.input_bounds()
        for _ in range(200):
            point = {name: float(rng.uniform(lo, hi)) for name, (lo, hi) in bounds.items()}
            satisfied = [
                path for path in result.paths
                if all(
                    __import__("repro.lang.evaluator", fromlist=["holds"]).holds(c, point)
                    for c in path.condition.constraints
                )
            ]
            assert len(satisfied) == 1

    def test_agreement_with_concrete_interpreter(self):
        """An input observes the event iff it satisfies a PC reported for it."""
        program = parse_program(programs.SAFETY_MONITOR)
        symbolic = execute_program(program)
        target = symbolic.constraint_set_for("callSupervisor")
        rng = np.random.default_rng(11)
        bounds = program.input_bounds()
        for _ in range(200):
            point = {name: float(rng.uniform(lo, hi)) for name, (lo, hi) in bounds.items()}
            concrete = run_program(program, point).observed("callSupervisor")
            symbolic_hit = holds_any(target, point)
            assert concrete == symbolic_hit

    def test_collision_check_single_branch(self):
        program = parse_program(programs.COLLISION_CHECK)
        result = execute_program(program)
        assert set(result.events()) == {"collision"}
        assert len(result.constraint_set_for("collision")) == 1

    def test_loop_unrolling_produces_multiple_paths(self):
        program = parse_program(programs.THERMOSTAT)
        result = execute_program(program, max_depth=30)
        assert result.path_count > 2

    def test_bounded_paths_reported_separately(self):
        source = "input x in [0.1, 1];\ntotal = 0;\nwhile (total <= 100) { total = total + x; }\nobserve(done);"
        program = parse_program(source)
        result = execute_program(program, max_depth=10)
        bounded = result.bounded_constraint_set()
        assert len(bounded) >= 1
        # Paths that hit the bound are excluded from the event's PC set.
        assert all(not path.hit_bound for path in result.paths if path.observed("done"))

    def test_assert_violation_constraints(self):
        program = parse_program(programs.SCORING_WITH_ASSERT)
        result = execute_program(program)
        violations = result.constraint_set_for(ASSERTION_VIOLATION_EVENT)
        assert len(violations) == 1
        assert holds_any(violations, {"score": 100.0, "bonus": 15.0})
        assert not holds_any(violations, {"score": 10.0, "bonus": 5.0})

    def test_infeasible_branches_pruned(self):
        source = """
        input x in [0, 1];
        if (x >= 5) { observe(impossible); }
        if (x <= 2) { observe(always); }
        """
        result = execute_program(parse_program(source))
        assert "impossible" not in result.events()
        assert "always" in result.events()

    def test_constraint_set_against_event(self):
        program = parse_program(programs.SAFETY_MONITOR)
        result = execute_program(program)
        against = result.constraint_set_against("callSupervisor")
        assert len(against) == 1

    def test_max_paths_truncation_flag(self):
        source = "\n".join(
            ["input x in [0, 1];"]
            + [f"if (x >= 0.{i}) {{ observe(e{i}); }} else {{ skip; }}" for i in range(1, 8)]
        )
        result = execute_program(parse_program(source), max_paths=5)
        assert result.truncated

    def test_invalid_bounds_rejected(self):
        program = parse_program(programs.SAFETY_MONITOR)
        with pytest.raises(SymbolicExecutionError):
            SymbolicExecutor(program, max_depth=0)
        with pytest.raises(SymbolicExecutionError):
            SymbolicExecutor(program, max_paths=0)
