"""Fused-kernel compiler: closure-oracle equivalence, caching, and tiers.

The closure-tree compiler (:mod:`repro.lang.compiler`) is the reference
oracle; every test here holds the fused codegen to *bit-identical* outputs —
including the domain-error semantics (division by zero, roots/logs of
negatives) that feed hit counts — and pins the cache-key contract:
alpha-equivalent constraints share one kernel, a version bump invalidates,
and the persistent source cache survives an in-process cache clear.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, UnknownFunctionError, UnknownVariableError
from repro.lang import ast, kernel
from repro.lang.compiler import compile_constraint_set, compile_path_condition
from repro.lang.kernel import (
    clear_kernel_cache,
    current_kernel_tier,
    get_kernel,
    kernel_cache_stats,
    kernel_digest,
    kernel_key,
    kernel_source,
    set_kernel_tier,
)
from repro.lang.parser import parse_constraint_set, parse_path_condition


@pytest.fixture(autouse=True)
def isolated_kernel_cache(tmp_path, monkeypatch):
    """Every test gets an empty private disk cache and a reset tier."""
    monkeypatch.setenv(kernel.CACHE_DIR_ENV, str(tmp_path / "kernels"))
    monkeypatch.delenv(kernel.TIER_ENV, raising=False)
    monkeypatch.setattr(kernel, "_NUMBA_WARNED", False)
    set_kernel_tier(None)
    clear_kernel_cache()
    yield
    set_kernel_tier(None)
    clear_kernel_cache()


def random_batch(names, size=512, seed=0, low=-3.0, high=3.0):
    rng = np.random.default_rng(seed)
    return {name: rng.uniform(low, high, size) for name in names}


# --------------------------------------------------------------------------- #
# Closure-oracle equivalence
# --------------------------------------------------------------------------- #
PC_TEXTS = [
    "x <= 0.5",
    "x * y >= 18 && x + y <= 30",
    "(x - 8.0) * (y - 9.0) <= 3.0 && x + 2.0 * y >= 20.0",
    "sin(x * 0.4) + y * y <= 0.5",
    "sqrt(x) + log(y) > 1 && x / (y - 2.0) <= 4",
    "pow(x, 2.0) + pow(y, 2.0) <= 1 && atan2(y, x) >= 0",
    "min(x, y) <= 0 && max(x, y) > 0 && abs(x - y) < 2.5",
    "exp(x) > 1.5 && log10(abs(y) + 0.1) < 0.4",
    "tanh(x) < 0.9 && cosh(y) < 10 && sinh(x) > -10",
    "asin(x / 4.0) < 1 && acos(y / 4.0) > 0.1 && atan(x) < 1.5",
    "-x <= y && -(x * y) < 5",
]


@pytest.mark.parametrize("text", PC_TEXTS)
def test_fused_matches_closure_on_path_conditions(text):
    pc = parse_path_condition(text)
    batch = random_batch(sorted(pc.free_variables()), seed=7)
    expected = compile_path_condition(pc)(batch)
    observed = get_kernel(pc, tier="fused")(batch)
    assert observed.dtype == np.bool_
    assert np.array_equal(observed, expected)


def test_fused_matches_closure_on_constraint_sets():
    cs = parse_constraint_set(
        "x <= 0.5 && y * y <= 0.3 || x > 0.5 && sin(x) + y <= 0.2 || x * y > 8.5"
    )
    batch = random_batch(["x", "y"], seed=11)
    expected = compile_constraint_set(cs)(batch)
    observed = get_kernel(cs, tier="fused")(batch)
    assert np.array_equal(observed, expected)


def test_atomic_constraint_and_empty_forms():
    constraint = parse_path_condition("x <= 0.25").constraints[0]
    batch = random_batch(["x"], seed=3)
    assert np.array_equal(get_kernel(constraint)(batch), batch["x"] <= 0.25)

    empty_pc = ast.PathCondition.of([])
    assert np.array_equal(get_kernel(empty_pc)(batch), np.ones(512, dtype=bool))

    empty_cs = ast.ConstraintSet.of([])
    assert np.array_equal(get_kernel(empty_cs)(batch), np.zeros(512, dtype=bool))


def test_variable_free_conjunct_broadcasts():
    pc = parse_path_condition("1.0 <= 2.0 && x > 0")
    batch = {"x": np.array([-1.0, 1.0])}
    expected = compile_path_condition(pc)(batch)
    assert np.array_equal(get_kernel(pc)(batch), expected)
    assert list(expected) == [False, True]


def test_early_exit_short_circuit_matches_closure():
    # First (sorted) conjunct kills every sample; the kernel must return the
    # all-false array without evaluating the rest, like the closure loop.
    pc = parse_path_condition("x < -100 && sqrt(x) > 0")
    batch = random_batch(["x"], seed=5, low=0.0, high=1.0)
    expected = compile_path_condition(pc)(batch)
    observed = get_kernel(pc)(batch)
    assert not observed.any()
    assert np.array_equal(observed, expected)


def test_missing_variable_raises_like_closure():
    pc = parse_path_condition("x + y <= 1")
    with pytest.raises(UnknownVariableError):
        get_kernel(pc)({"x": np.zeros(4)})


def test_unknown_function_raises_at_compile_time():
    pc = ast.PathCondition.of(
        [ast.Constraint("<=", ast.call("frobnicate", ast.var("x")), ast.const(1))]
    )
    with pytest.raises(UnknownFunctionError):
        get_kernel(pc)


# --------------------------------------------------------------------------- #
# Division-by-zero and domain-error semantics (satellite: pin NaN handling)
# --------------------------------------------------------------------------- #
def test_division_semantics_zero_over_zero_and_x_over_zero():
    pc = parse_path_condition("x / y >= 0")
    batch = {
        "x": np.array([0.0, 1.0, -1.0, 2.0]),
        "y": np.array([0.0, 0.0, 0.0, 1.0]),
    }
    expected = compile_path_condition(pc)(batch)
    observed = get_kernel(pc)(batch)
    # 0/0 -> NaN (comparison unsatisfied), 1/0 -> +inf (satisfied),
    # -1/0 -> -inf (unsatisfied), 2/1 -> 2.0 (satisfied).
    assert list(expected) == [False, True, False, True]
    assert np.array_equal(observed, expected)


def test_division_by_zero_denominator_in_subexpression():
    pc = parse_path_condition("1.0 / (x - x) <= 100")
    batch = {"x": np.array([1.0, -2.0])}
    expected = compile_path_condition(pc)(batch)
    observed = get_kernel(pc)(batch)
    assert not observed.any()  # +inf <= 100 is false everywhere
    assert np.array_equal(observed, expected)


@pytest.mark.parametrize(
    "text, values, expected",
    [
        # sqrt of a negative -> NaN -> unsatisfied either way.
        ("sqrt(x) <= 10", [-1.0, 4.0], [False, True]),
        ("sqrt(x) > -10", [-1.0, 4.0], [False, True]),
        # log of zero -> -inf (ordered); log of a negative -> NaN.
        ("log(x) >= -1000", [0.0, -1.0, 1.0], [False, False, True]),
        ("log(x) < 0", [0.0, -1.0, 0.5], [True, False, True]),
        # asin outside [-1, 1] -> NaN.
        ("asin(x) <= 2", [-3.0, 0.5], [False, True]),
        # exp overflow -> +inf, still ordered.
        ("exp(x) > 0", [1000.0, 0.0], [True, True]),
    ],
)
def test_domain_error_semantics_match_closure(text, values, expected):
    pc = parse_path_condition(text)
    batch = {"x": np.array(values)}
    closure_hits = compile_path_condition(pc)(batch)
    fused_hits = get_kernel(pc)(batch)
    assert list(closure_hits) == expected
    assert np.array_equal(fused_hits, closure_hits)


def test_domain_errors_raise_no_warnings():
    pc = parse_path_condition("sqrt(x) <= 1 && log(x) >= -10 && 1.0 / x <= 5")
    batch = {"x": np.array([-1.0, 0.0, 0.5])}
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        get_kernel(pc)(batch)


def test_hit_counts_identical_closure_vs_fused_on_domain_error_heavy_batch():
    pc = parse_path_condition("sqrt(x) + log(y) > 0.1 && x / y <= 2.0")
    batch = random_batch(["x", "y"], size=4096, seed=13)  # negatives included
    closure_hits = int(np.count_nonzero(compile_path_condition(pc)(batch)))
    fused_hits = int(np.count_nonzero(get_kernel(pc)(batch)))
    assert fused_hits == closure_hits


# --------------------------------------------------------------------------- #
# Non-finite constants (regression: bare `inf`/`nan` are not kernel names)
# --------------------------------------------------------------------------- #
def test_overflowing_literal_parses_to_inf_and_fused_matches_closure():
    # `1e999` overflows float64 at parse time, producing Constant(inf); the
    # fused tier must emit it in a form that evaluates, not a bare `inf`.
    pc = parse_path_condition("x < 1e999")
    batch = {"x": np.array([-1.0, 0.0, 1e308, np.inf])}
    expected = compile_path_condition(pc)(batch)
    observed = get_kernel(pc, tier="fused")(batch)
    assert list(expected) == [True, True, True, False]
    assert np.array_equal(observed, expected)


def test_simplify_folded_division_inf_constant_compiles():
    from repro.lang.simplify import simplify_path_condition

    # simplify folds 1.0/0.0 to Constant(inf) — the default analyzer path.
    pc = simplify_path_condition(parse_path_condition("1.0 / 0.0 >= x"))
    batch = {"x": np.array([0.0, np.inf, -np.inf])}
    expected = compile_path_condition(pc)(batch)
    observed = get_kernel(pc, tier="fused")(batch)
    assert np.array_equal(observed, expected)


@pytest.mark.parametrize("value", [np.inf, -np.inf, np.nan])
def test_nonfinite_constants_fused_matches_closure(value):
    pc = ast.PathCondition.of(
        [
            ast.Constraint("<=", ast.var("x"), ast.const(value)),
            ast.Constraint(">", ast.BinaryOp("+", ast.var("x"), ast.const(value)), ast.const(0.0)),
        ]
    )
    batch = {"x": np.array([-2.0, 0.0, 2.0, np.nan])}
    expected = compile_path_condition(pc)(batch)
    observed = get_kernel(pc, tier="fused")(batch)
    assert np.array_equal(observed, expected)
    source = kernel_source(pc)
    assert "float64(inf" not in source and "float64(nan" not in source


# --------------------------------------------------------------------------- #
# Hypothesis: random ASTs, fused == closure element-wise
# --------------------------------------------------------------------------- #
VARIABLES = ("x", "y", "z")

_UNARY_FUNCTIONS = sorted(kernel._UNARY_NUMPY)
_BINARY_FUNCTIONS = sorted(kernel._BINARY_NUMPY)


def _expressions():
    leaves = st.one_of(
        st.sampled_from(VARIABLES).map(ast.var),
        st.floats(-4.0, 4.0, allow_nan=False).map(ast.const),
        # Non-finite constants are reachable (overflowing literals, folded
        # division by zero) and must round-trip through codegen.
        st.sampled_from([float("inf"), float("-inf"), float("nan")]).map(ast.const),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(ast.ARITHMETIC_OPERATORS), children, children).map(
                lambda t: ast.BinaryOp(t[0], t[1], t[2])
            ),
            children.map(ast.neg),
            st.tuples(st.sampled_from(_UNARY_FUNCTIONS), children).map(lambda t: ast.call(t[0], t[1])),
            st.tuples(st.sampled_from(_BINARY_FUNCTIONS), children, children).map(
                lambda t: ast.call(t[0], t[1], t[2])
            ),
        )

    return st.recursive(leaves, extend, max_leaves=8)


def _constraints():
    return st.tuples(
        st.sampled_from(ast.COMPARISON_OPERATORS), _expressions(), _expressions()
    ).map(lambda t: ast.Constraint(t[0], t[1], t[2]))


@settings(max_examples=60, deadline=None)
@given(
    constraints=st.lists(_constraints(), min_size=1, max_size=4),
    seed=st.integers(0, 2**32 - 1),
)
def test_random_ast_fused_equals_closure(constraints, seed):
    pc = ast.PathCondition.of(constraints)
    batch = random_batch(VARIABLES, size=64, seed=seed)
    expected = compile_path_condition(pc)(batch)
    observed = get_kernel(pc, tier="fused")(batch)
    assert np.array_equal(observed, expected)


@settings(max_examples=25, deadline=None)
@given(
    path_conditions=st.lists(st.lists(_constraints(), min_size=1, max_size=3), min_size=1, max_size=3),
    seed=st.integers(0, 2**32 - 1),
)
def test_random_ast_constraint_set_fused_equals_closure(path_conditions, seed):
    cs = ast.ConstraintSet.of([ast.PathCondition.of(cs) for cs in path_conditions])
    batch = random_batch(VARIABLES, size=64, seed=seed)
    expected = compile_constraint_set(cs)(batch)
    observed = get_kernel(cs, tier="fused")(batch)
    assert np.array_equal(observed, expected)


# --------------------------------------------------------------------------- #
# Cache keys: alpha equivalence, version invalidation, two-tier behaviour
# --------------------------------------------------------------------------- #
def test_alpha_equivalent_constraints_share_a_kernel():
    first = parse_path_condition("x * x + y <= 1 && y > 0")
    second = parse_path_condition("u * u + v <= 1 && v > 0")
    assert kernel_key(first) == kernel_key(second)
    assert kernel_digest(first) == kernel_digest(second)

    get_kernel(first)
    before = kernel_cache_stats()
    get_kernel(second)  # same kernel, different wrapper binding u/v
    after = kernel_cache_stats()
    assert after.memory_hits == before.memory_hits + 1
    assert after.codegens == before.codegens

    batch = random_batch(["u", "v"], seed=2)
    expected = compile_path_condition(second)(batch)
    assert np.array_equal(get_kernel(second)(batch), expected)


def test_different_constraints_do_not_share_keys():
    assert kernel_digest(parse_path_condition("x <= 1")) != kernel_digest(parse_path_condition("x < 1"))
    assert kernel_digest(parse_path_condition("x <= 1")) != kernel_digest(parse_path_condition("x <= 2"))


def test_version_tag_bump_invalidates_cached_kernels(monkeypatch):
    pc = parse_path_condition("x * y <= 0.5")
    old_digest = kernel_digest(pc)
    get_kernel(pc)
    assert kernel_cache_stats().codegens == 1

    monkeypatch.setattr(kernel, "KERNEL_VERSION", "qcoral-kernel-TEST")
    clear_kernel_cache()  # drop the in-memory tier; the disk file survives
    assert kernel_digest(pc) != old_digest
    get_kernel(pc)
    stats = kernel_cache_stats()
    assert stats.codegens == 1  # regenerated: the old disk entry keys differently
    assert stats.disk_hits == 0


def test_disk_cache_survives_memory_clear_and_rejects_corruption(tmp_path):
    pc = parse_path_condition("x + y * y <= 2.5")
    get_kernel(pc)
    assert kernel_cache_stats().codegens == 1
    path = kernel._disk_path(kernel_digest(pc))
    assert path is not None and path.startswith(str(tmp_path))

    clear_kernel_cache()
    get_kernel(pc)  # simulates a fresh worker process: source comes from disk
    stats = kernel_cache_stats()
    assert stats.disk_hits == 1
    assert stats.codegens == 0

    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# corrupted\n")
    clear_kernel_cache()
    get_kernel(pc)
    assert kernel_cache_stats().codegens == 1  # corrupt file regenerated, not trusted


def test_disk_cache_rejects_tampered_body_with_intact_header(tmp_path):
    # A file whose header lines survive but whose body was altered must not
    # be exec'd: the body hash recorded at write time catches the tampering.
    pc = parse_path_condition("x - y <= 1.25")
    get_kernel(pc)
    path = kernel._disk_path(kernel_digest(pc))
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    tampered = source.replace("out &=", "out |=")
    assert tampered != source
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(tampered)

    clear_kernel_cache()
    batch = random_batch(["x", "y"], seed=17)
    observed = get_kernel(pc)(batch)
    stats = kernel_cache_stats()
    assert stats.disk_hits == 0
    assert stats.codegens == 1  # tampered file regenerated, not trusted
    assert np.array_equal(observed, compile_path_condition(pc)(batch))


def test_disk_cache_can_be_disabled(monkeypatch):
    monkeypatch.setenv(kernel.DISK_CACHE_ENV, "0")
    assert kernel.kernel_cache_dir() is None
    pc = parse_path_condition("x <= 0.125")
    get_kernel(pc)
    clear_kernel_cache()
    get_kernel(pc)
    stats = kernel_cache_stats()
    assert stats.disk_hits == 0
    assert stats.codegens == 1


@pytest.mark.parametrize("value", ["0", "false", "FALSE", "No", " off ", "OFF"])
def test_disk_cache_env_disabled_values_are_normalised(monkeypatch, value):
    monkeypatch.setenv(kernel.DISK_CACHE_ENV, value)
    assert kernel.kernel_cache_dir() is None


@pytest.mark.parametrize("value", ["", "1", "true", "yes", "anything"])
def test_disk_cache_env_other_values_keep_it_enabled(monkeypatch, value):
    monkeypatch.setenv(kernel.DISK_CACHE_ENV, value)
    assert kernel.kernel_cache_dir() is not None


def test_clear_kernel_cache_disk_removes_sources():
    pc = parse_path_condition("x <= 0.0625")
    get_kernel(pc)
    path = kernel._disk_path(kernel_digest(pc))
    import os

    assert os.path.exists(path)
    clear_kernel_cache(disk=True)
    assert not os.path.exists(path)


def test_lru_capacity_is_bounded(monkeypatch):
    monkeypatch.setenv(kernel.CACHE_SIZE_ENV, "4")
    for index in range(10):
        get_kernel(parse_path_condition(f"x <= {float(index)}"))
    assert len(kernel._KERNEL_CACHE) <= 4


def test_kernel_source_is_deterministic_and_headed():
    pc = parse_path_condition("x * y >= 18 && x + y <= 30")
    source = kernel_source(pc)
    assert source == kernel_source(pc)
    assert f"# version: {kernel.KERNEL_VERSION}" in source
    assert f"# key-sha256: {kernel_digest(pc)}" in source
    assert source.count("def qcoral_kernel(") == 1


def test_common_subexpressions_are_fused_once():
    # x * y appears in both conjuncts; the kernel must compute it once.
    pc = parse_path_condition("x * y >= 10.0 && x * y <= 60.0")
    source = kernel_source(pc)
    assert source.count("v0 * v1") == 1


# --------------------------------------------------------------------------- #
# Tier selection
# --------------------------------------------------------------------------- #
def test_tier_resolution_env_override_and_validation(monkeypatch):
    assert current_kernel_tier() == "fused"
    monkeypatch.setenv(kernel.TIER_ENV, "closure")
    assert current_kernel_tier() == "closure"
    set_kernel_tier("fused")
    assert current_kernel_tier() == "fused"
    set_kernel_tier(None)
    assert current_kernel_tier() == "closure"
    monkeypatch.setenv(kernel.TIER_ENV, "warp-drive")
    with pytest.raises(ConfigurationError):
        current_kernel_tier()
    with pytest.raises(ConfigurationError):
        set_kernel_tier("warp-drive")


def test_closure_tier_is_cached_and_equivalent():
    pc = parse_path_condition("x * x + y * y <= 1")
    batch = random_batch(["x", "y"], seed=21, low=-1.0, high=1.0)
    closure = get_kernel(pc, tier="closure")
    fused = get_kernel(pc, tier="fused")
    assert np.array_equal(closure(batch), fused(batch))
    before = kernel_cache_stats()
    get_kernel(pc, tier="closure")
    assert kernel_cache_stats().memory_hits == before.memory_hits + 1


def test_numba_tier_degrades_gracefully():
    pc = parse_path_condition("x * y >= 18 && x + y <= 30 && x / y <= 4")
    batch = random_batch(["x", "y"], seed=23, low=-5.0, high=35.0)
    expected = compile_path_condition(pc)(batch)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        observed = get_kernel(pc, tier="numba")(batch)
    assert np.array_equal(observed, expected)
    if kernel._numba_njit() is None:
        assert kernel_cache_stats().numba_fallbacks >= 1
        assert any("numba" in str(w.message) for w in caught)


def test_auto_tier_resolves_to_an_available_backend():
    resolved = kernel._resolve_tier("auto")
    expected = "numba" if kernel._numba_njit() is not None else "fused"
    assert resolved == expected


# --------------------------------------------------------------------------- #
# Thread safety and pipeline bit-identity
# --------------------------------------------------------------------------- #
def test_get_kernel_is_thread_safe():
    texts = [f"x * y >= {float(index)} && x + y <= 30" for index in range(6)]
    pcs = [parse_path_condition(text) for text in texts]
    batch = random_batch(["x", "y"], seed=29, low=-5.0, high=35.0)
    expected = [compile_path_condition(pc)(batch) for pc in pcs]
    failures = []

    def worker(worker_index):
        try:
            for repeat in range(25):
                index = (worker_index + repeat) % len(pcs)
                observed = get_kernel(pcs[index])(batch)
                if not np.array_equal(observed, expected[index]):
                    failures.append(index)
        except Exception as error:  # pragma: no cover - only on regression
            failures.append(error)

    threads = [threading.Thread(target=worker, args=(index,)) for index in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures


def test_engine_estimates_bit_identical_across_tiers():
    from repro.api import Session

    results = {}
    for tier in ("closure", "fused"):
        set_kernel_tier(tier)
        clear_kernel_cache()
        with Session() as session:
            report = (
                session.quantify(
                    "x * x + y * y <= 1 && x / (y + 2.0) <= 0.4",
                    {"x": (-1, 1), "y": (-1, 1)},
                )
                .with_budget(20_000)
                .seed(3)
                .run()
            )
        results[tier] = (report.mean, report.std, report.total_samples)
    assert results["closure"] == results["fused"]


def test_sharded_worker_path_bit_identical_across_tiers():
    from repro.core.montecarlo import hit_or_miss_sharded
    from repro.core.profiles import UsageProfile
    from repro.exec import SeedStream, ThreadPoolExecutor

    pc = parse_path_condition("x * y >= 18 && x + y <= 30")
    profile = UsageProfile.uniform({"x": (0.0, 30.0), "y": (0.0, 40.0)})
    counts = {}
    for tier in ("closure", "fused"):
        set_kernel_tier(tier)
        clear_kernel_cache()
        with ThreadPoolExecutor(2) as pool:
            result = hit_or_miss_sharded(
                pc, profile, 60_000, SeedStream(123), executor=pool, chunk_size=10_000
            )
        counts[tier] = (result.hits, result.samples)
    assert counts["closure"] == counts["fused"]
