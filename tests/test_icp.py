"""Unit tests for interval constraint propagation: HC4, contractor, paving."""

import math

import pytest

from repro.errors import ConfigurationError, DomainError
from repro.icp import (
    ICPConfig,
    constraint_certainly_fails,
    constraint_certainly_holds,
    contract,
    evaluate_interval,
    hc4_revise,
    pave,
)
from repro.intervals import Box, Interval
from repro.lang.parser import parse_constraint, parse_expression, parse_path_condition


def box(**bounds):
    return Box.from_bounds({name: tuple(value) for name, value in bounds.items()})


class TestConfig:
    def test_defaults_match_paper(self):
        config = ICPConfig()
        assert config.max_boxes == 10
        assert config.precision == pytest.approx(1e-3)
        assert config.time_budget == pytest.approx(2.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ICPConfig(max_boxes=0)
        with pytest.raises(ConfigurationError):
            ICPConfig(precision=0.0)
        with pytest.raises(ConfigurationError):
            ICPConfig(time_budget=-1.0)


class TestIntervalEvaluation:
    def test_linear_expression(self):
        result = evaluate_interval(parse_expression("2 * x + y"), box(x=(0, 1), y=(1, 2)))
        assert result.contains(1.0) and result.contains(4.0)

    def test_nonlinear_expression(self):
        result = evaluate_interval(parse_expression("sin(x) * sqrt(y)"), box(x=(0, 1), y=(1, 4)))
        assert result.contains(math.sin(0.5) * math.sqrt(2.0))

    def test_enclosure_of_sample_points(self):
        expr = parse_expression("x * x - 2 * x * y + pow(y, 2)")
        domain = box(x=(-1, 2), y=(0, 3))
        enclosure = evaluate_interval(expr, domain)
        for x in (-1.0, 0.0, 1.0, 2.0):
            for y in (0.0, 1.5, 3.0):
                value = (x - y) ** 2
                assert enclosure.contains(value)

    def test_certainly_holds_and_fails(self):
        constraint = parse_constraint("x <= 5")
        assert constraint_certainly_holds(constraint, box(x=(0, 1)))
        assert constraint_certainly_fails(constraint, box(x=(6, 7)))
        undecided = box(x=(4, 6))
        assert not constraint_certainly_holds(constraint, undecided)
        assert not constraint_certainly_fails(constraint, undecided)


class TestHC4Revise:
    def test_prunes_linear_constraint(self):
        narrowed = hc4_revise(parse_constraint("x + y <= 1"), box(x=(0, 5), y=(0, 5)))
        assert narrowed is not None
        assert narrowed.interval("x").hi <= 1.0 + 1e-9
        assert narrowed.interval("y").hi <= 1.0 + 1e-9

    def test_detects_infeasibility(self):
        assert hc4_revise(parse_constraint("x >= 10"), box(x=(0, 1))) is None

    def test_prunes_through_sqrt(self):
        narrowed = hc4_revise(parse_constraint("sqrt(x) <= 2"), box(x=(0, 100)))
        assert narrowed is not None
        assert narrowed.interval("x").hi <= 4.0 + 1e-6

    def test_prunes_through_exp(self):
        narrowed = hc4_revise(parse_constraint("exp(x) <= 1"), box(x=(-5, 5)))
        assert narrowed is not None
        assert narrowed.interval("x").hi <= 1e-9

    def test_prunes_even_power(self):
        narrowed = hc4_revise(parse_constraint("pow(x, 2) <= 4"), box(x=(-10, 10)))
        assert narrowed is not None
        assert narrowed.interval("x").hi <= 2.0 + 1e-6
        assert narrowed.interval("x").lo >= -2.0 - 1e-6

    def test_no_false_pruning_for_sin(self):
        narrowed = hc4_revise(parse_constraint("sin(x) >= 0.5"), box(x=(0, 6.3)))
        assert narrowed is not None
        # Conservative: the solution pi/6..5pi/6 must remain inside.
        assert narrowed.interval("x").contains(math.pi / 2)

    def test_soundness_never_removes_solutions(self):
        constraint = parse_constraint("x * y + sqrt(y) <= 3")
        domain = box(x=(-2, 2), y=(0, 4))
        narrowed = hc4_revise(constraint, domain)
        assert narrowed is not None
        # Sample solutions of the constraint and check they stay inside.
        from repro.lang.evaluator import holds

        steps = 15
        for i in range(steps + 1):
            for j in range(steps + 1):
                x = -2 + 4 * i / steps
                y = 4 * j / steps
                if holds(constraint, {"x": x, "y": y}):
                    assert narrowed.contains_point({"x": x, "y": y})


class TestContractor:
    def test_contract_conjunction(self):
        pc = parse_path_condition("x + y <= 1 && x >= 0 && y >= 0")
        narrowed = contract(pc, box(x=(-5, 5), y=(-5, 5)))
        assert narrowed is not None
        assert narrowed.interval("x").lo >= -1e-9
        assert narrowed.interval("x").hi <= 1.0 + 1e-9

    def test_contract_detects_unsat(self):
        pc = parse_path_condition("x >= 2 && x <= 1")
        assert contract(pc, box(x=(0, 5))) is None

    def test_contract_empty_box(self):
        pc = parse_path_condition("x <= 1")
        assert contract(pc, Box.empty(["x"])) is None


class TestPaving:
    def test_paving_covers_all_solutions(self):
        pc = parse_path_condition("x * x + y * y <= 1")
        domain = box(x=(-2, 2), y=(-2, 2))
        paving = pave(pc, domain)
        assert not paving.is_unsatisfiable()
        from repro.lang.evaluator import holds_path_condition

        steps = 20
        for i in range(steps + 1):
            for j in range(steps + 1):
                x = -2 + 4 * i / steps
                y = -2 + 4 * j / steps
                if holds_path_condition(pc, {"x": x, "y": y}):
                    assert any(paved.box.contains_point({"x": x, "y": y}) for paved in paving.boxes)

    def test_paving_box_budget_respected(self):
        pc = parse_path_condition("sin(x * y) > 0.25")
        domain = box(x=(-10, 10), y=(-10, 10))
        paving = pave(pc, domain, ICPConfig(max_boxes=10, time_budget=2.0))
        assert 1 <= len(paving) <= 10

    def test_exact_box_constraint_gives_single_inner_box(self):
        pc = parse_path_condition("x >= 0 && x <= 1 && y >= 0 && y <= 1")
        domain = box(x=(-1, 2), y=(-1, 2))
        paving = pave(pc, domain)
        assert all(paved.inner for paved in paving.boxes)
        assert paving.covered_volume() == pytest.approx(1.0, rel=1e-6)

    def test_unsatisfiable_constraint_gives_empty_paving(self):
        pc = parse_path_condition("x >= 5")
        paving = pave(pc, box(x=(0, 1)))
        assert paving.is_unsatisfiable()

    def test_trivial_path_condition_returns_domain(self):
        from repro.lang.ast import PathCondition

        domain = box(x=(0, 1))
        paving = pave(PathCondition.of([]), domain)
        assert len(paving) == 1 and paving.boxes[0].inner

    def test_missing_domain_variable_rejected(self):
        pc = parse_path_condition("x + y <= 1")
        with pytest.raises(DomainError):
            pave(pc, box(x=(0, 1)))

    def test_unbounded_domain_rejected(self):
        pc = parse_path_condition("x <= 1")
        domain = Box({"x": Interval(0.0, math.inf)})
        with pytest.raises(DomainError):
            pave(pc, domain)

    def test_covered_fraction_between_zero_and_one(self):
        pc = parse_path_condition("x * x + y * y <= 1")
        paving = pave(pc, box(x=(-2, 2), y=(-2, 2)))
        assert 0.0 < paving.covered_fraction() <= 1.0

    def test_inner_volume_below_exact_solution_volume(self):
        pc = parse_path_condition("x * x + y * y <= 1")
        paving = pave(pc, box(x=(-2, 2), y=(-2, 2)), ICPConfig(max_boxes=40, time_budget=2.0))
        assert paving.inner_volume() <= math.pi + 1e-6
