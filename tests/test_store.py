"""Tests of the persistent estimate store: keys, backends, and cross-run reuse."""

from __future__ import annotations

import json
import multiprocessing
import os
import threading

import pytest

from repro.analysis.pipeline import ProbabilisticAnalysisPipeline
from repro.core.profiles import UsageProfile
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.errors import ConfigurationError
from repro.lang.canonical import alpha_canonical, alpha_equivalent
from repro.lang.parser import parse_constraint_set, parse_path_condition
from repro.store import (
    ESTIMATOR_VERSION,
    JsonlStore,
    MemoryStore,
    SqliteStore,
    StoreContext,
    StoreEntry,
    mc_method,
    open_store,
    stratified_method,
)
from repro.store.entry import StoreError
from repro.subjects import programs


def make_store(backend: str, tmp_path):
    if backend == "memory":
        return MemoryStore()
    if backend == "jsonl":
        return JsonlStore(str(tmp_path / "store.jsonl"))
    return SqliteStore(str(tmp_path / "store.db"))


BACKENDS = ("memory", "jsonl", "sqlite")


# --------------------------------------------------------------------------- #
# Canonicalisation and keys
# --------------------------------------------------------------------------- #
class TestAlphaCanonical:
    def test_renamed_factors_are_alpha_equivalent(self):
        first = parse_path_condition("x <= 0 - y && y <= x")
        second = parse_path_condition("b <= a && a <= 0 - b")
        assert alpha_equivalent(first, second)
        assert alpha_canonical(first).text == alpha_canonical(second).text

    def test_different_shapes_are_not_equivalent(self):
        first = parse_path_condition("x <= 0.5")
        second = parse_path_condition("x < 0.5")
        assert not alpha_equivalent(first, second)

    def test_different_constants_are_not_equivalent(self):
        first = parse_path_condition("x <= 0.5")
        second = parse_path_condition("x <= 0.25")
        assert not alpha_equivalent(first, second)

    def test_conjunct_order_is_irrelevant(self):
        first = parse_path_condition("x <= 0.5 && y >= 0.25")
        second = parse_path_condition("y >= 0.25 && x <= 0.5")
        assert alpha_canonical(first).text == alpha_canonical(second).text

    def test_variables_are_reported_in_canonical_order(self):
        canonical = alpha_canonical(parse_path_condition("q * w <= 1"))
        assert set(canonical.variables) == {"q", "w"}
        for index, name in enumerate(canonical.variables):
            assert f"$v{index}" in canonical.text or len(canonical.variables) <= index
            assert name in {"q", "w"}


class TestFactorKeys:
    PROFILE = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1), "a": (-1, 1), "b": (-1, 1)})

    def test_alpha_equivalent_factors_share_a_key(self):
        context = StoreContext(self.PROFILE, mc_method())
        first = context.key_for(parse_path_condition("x <= 0 - y && y <= x"))
        second = context.key_for(parse_path_condition("b <= a && a <= 0 - b"))
        assert first.digest == second.digest

    def test_profile_fingerprint_mismatch_changes_the_key(self):
        skewed = UsageProfile.uniform({"x": (-1, 1), "y": (-2, 1)})
        pc = parse_path_condition("x <= y")
        uniform_key = StoreContext(self.PROFILE, mc_method()).key_for(pc)
        skewed_key = StoreContext(skewed, mc_method()).key_for(pc)
        assert uniform_key.digest != skewed_key.digest

    def test_distribution_family_changes_the_key(self):
        from repro.core.profiles import TruncatedNormalDistribution, UniformDistribution

        pc = parse_path_condition("x <= 0.5")
        uniform = UsageProfile({"x": UniformDistribution(-1, 1)})
        normal = UsageProfile({"x": TruncatedNormalDistribution(0.0, 1.0, -1, 1)})
        assert (
            StoreContext(uniform, mc_method()).key_for(pc).digest
            != StoreContext(normal, mc_method()).key_for(pc).digest
        )

    def test_method_tag_changes_the_key(self):
        from repro.icp.config import PAPER_CONFIG

        pc = parse_path_condition("x <= 0.5")
        mc_key = StoreContext(self.PROFILE, mc_method()).key_for(pc)
        strat_key = StoreContext(self.PROFILE, stratified_method(PAPER_CONFIG)).key_for(pc)
        assert mc_key.digest != strat_key.digest

    def test_estimator_version_changes_the_key(self):
        pc = parse_path_condition("x <= 0.5")
        current = StoreContext(self.PROFILE, mc_method()).key_for(pc)
        future = StoreContext(self.PROFILE, mc_method(), version="qcoral-est-999").key_for(pc)
        assert ESTIMATOR_VERSION != "qcoral-est-999"
        assert current.digest != future.digest

    def test_symmetric_factor_keys_deterministically(self):
        # x and y can be swapped without changing the constraint text; the
        # fingerprint tie-break must still give one deterministic key.
        skewed = UsageProfile.uniform({"x": (-1, 1), "y": (-2, 1)})
        context = StoreContext(skewed, mc_method())
        first = context.key_for(parse_path_condition("x <= 0.5 && y <= 0.5"))
        second = context.key_for(parse_path_condition("y <= 0.5 && x <= 0.5"))
        assert first.digest == second.digest


# --------------------------------------------------------------------------- #
# Backends: round-trip, merge-on-write, concurrency
# --------------------------------------------------------------------------- #
class TestBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_trip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        entry = StoreEntry.from_mc(7, 100, spawned=2)
        store.merge("key-1", entry)
        loaded = store.get("key-1")
        assert (loaded.hits, loaded.samples, loaded.spawned) == (7, 100, 2)
        assert store.get("missing") is None
        assert len(store) == 1
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stratified_round_trip(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        entry = StoreEntry.from_strata(((3, 10), (0, 5)), paving="B[0,1]|B[1,2]", spawned=4)
        store.merge("key-s", entry)
        loaded = store.get("key-s")
        assert loaded.strata == ((3, 10), (0, 5))
        assert loaded.samples == 15
        assert loaded.paving == "B[0,1]|B[1,2]"
        store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_merge_on_write_accumulates(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.merge("key", StoreEntry.from_mc(10, 100))
        merged = store.merge("key", StoreEntry.from_mc(5, 50))
        assert (merged.hits, merged.samples, merged.runs) == (15, 150, 2)
        assert store.get("key").samples == 150
        assert store.statistics.creates == 1
        assert store.statistics.merges == 1
        store.close()

    @pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
    def test_persistence_across_handles(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        path = store._path
        store.merge("key", StoreEntry.from_mc(10, 100))
        store.close()
        reopened = open_store(path, backend)
        assert reopened.get("key").samples == 100
        reopened.merge("key", StoreEntry.from_mc(1, 10))
        assert reopened.get("key").samples == 110
        reopened.close()

    @pytest.mark.parametrize("backend", ("jsonl", "sqlite"))
    def test_readonly_skips_writes(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        path = store._path
        store.merge("key", StoreEntry.from_mc(10, 100))
        store.close()
        readonly = open_store(path, backend, readonly=True)
        would_be = readonly.merge("key", StoreEntry.from_mc(5, 50))
        assert would_be.samples == 150  # the caller sees the would-be total
        assert readonly.get("key").samples == 100  # ...but nothing was written
        assert readonly.statistics.readonly_skips == 1
        readonly.close()

    def test_open_store_infers_backend(self, tmp_path):
        assert open_store(None).backend == "memory"
        jsonl = open_store(str(tmp_path / "a.jsonl"))
        sqlite = open_store(str(tmp_path / "a.db"))
        assert (jsonl.backend, sqlite.backend) == ("jsonl", "sqlite")
        jsonl.close()
        sqlite.close()
        with pytest.raises(StoreError):
            open_store(str(tmp_path / "x"), backend="nope")

    def test_jsonl_ignores_corrupt_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = JsonlStore(str(path))
        store.merge("key", StoreEntry.from_mc(10, 100))
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"key": "key", "kind": "mc", "hits": 1, "samples": 10}) + "\n")
        reopened = JsonlStore(str(path))
        assert reopened.get("key").samples == 110
        reopened.close()

    def test_paving_mismatch_keeps_larger_pool(self):
        bigger = StoreEntry.from_strata(((10, 100),), paving="A")
        smaller = StoreEntry.from_strata(((1, 10), (2, 20)), paving="B")
        assert bigger.merge(smaller) is bigger
        assert smaller.merge(bigger) is bigger

    def test_exact_wins_any_kind_mismatch(self):
        # Exactness is machine-dependent (the ICP solver has a wall-clock
        # budget): the same key can legitimately receive a stratified delta
        # from one machine and an exact delta from another.  The proof wins.
        exact = StoreEntry.from_exact(0.25)
        sampled = StoreEntry.from_strata(((10, 100),), paving="A")
        for merged in (exact.merge(sampled), sampled.merge(exact)):
            assert merged.kind == "exact"
            assert merged.exact_mean == 0.25
            assert merged.runs == 2

    def test_time_budget_is_part_of_the_method_tag(self):
        from repro.icp.config import ICPConfig

        fast = stratified_method(ICPConfig(time_budget=2.0))
        slow = stratified_method(ICPConfig(time_budget=60.0))
        assert fast != slow

    def test_readonly_sqlite_on_missing_or_unwritable_path(self, tmp_path):
        # A readonly handle on a store nobody has written yet: empty, no file
        # silently created.
        missing = str(tmp_path / "nope.db")
        store = SqliteStore(missing, readonly=True)
        assert store.get("key") is None
        assert store.keys() == []
        store.close()
        assert not os.path.exists(missing)
        # A readonly handle on an unwritable store file still reads fine.
        path = str(tmp_path / "frozen.db")
        writer = SqliteStore(path)
        writer.merge("key", StoreEntry.from_mc(10, 100))
        writer.close()
        os.chmod(path, 0o444)
        try:
            readonly = SqliteStore(path, readonly=True)
            assert readonly.get("key").samples == 100
            readonly.close()
        finally:
            os.chmod(path, 0o644)

    def test_concurrent_thread_writers_sqlite(self, tmp_path):
        path = str(tmp_path / "store.db")
        store = SqliteStore(path)
        errors = []

        def writer(worker: int) -> None:
            try:
                for _ in range(25):
                    store.merge(f"key-{worker % 3}", StoreEntry.from_mc(1, 10))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(index,)) for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = sum(store.get(key).samples for key in store.keys())
        assert total == 4 * 25 * 10
        store.close()

    def test_concurrent_process_writers_sqlite(self, tmp_path):
        path = str(tmp_path / "store.db")
        # Create the schema before the workers race on it.
        SqliteStore(path).close()
        context = multiprocessing.get_context("spawn")
        workers = [context.Process(target=_process_writer, args=(path, worker)) for worker in range(3)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert all(worker.exitcode == 0 for worker in workers)
        store = SqliteStore(path)
        total = sum(store.get(key).samples for key in store.keys())
        assert total == 3 * 20 * 10
        store.close()


def _process_writer(path: str, worker: int) -> None:
    store = SqliteStore(path)
    for _ in range(20):
        store.merge(f"key-{worker % 2}", StoreEntry.from_mc(2, 10))
    store.close()


# --------------------------------------------------------------------------- #
# Cross-run reuse through the analyzer
# --------------------------------------------------------------------------- #
PROFILE_2D = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
CIRCLE = "x * x + y * y <= 1"


class TestAnalyzerReuse:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_rerun_samples_nothing(self, backend, tmp_path):
        path = None if backend == "memory" else str(tmp_path / f"store.{backend}")
        store = open_store(path, backend)
        config = QCoralConfig.strat_partcache(5000, seed=11)
        constraint_set = parse_constraint_set(CIRCLE)
        with QCoralAnalyzer(PROFILE_2D, config, store=store) as cold:
            first = cold.analyze(constraint_set)
        with QCoralAnalyzer(PROFILE_2D, config, store=store) as warm:
            second = warm.analyze(constraint_set)
        assert first.total_samples == 5000
        assert second.total_samples == 0
        assert second.mean == first.mean
        assert second.variance == first.variance
        assert second.cache_statistics.store_hits >= 1
        store.close()

    def test_renamed_subject_reuses_the_entry(self, tmp_path):
        store = open_store(str(tmp_path / "store.db"))
        config = QCoralConfig.strat_partcache(4000, seed=7)
        with QCoralAnalyzer(PROFILE_2D, config, store=store) as cold:
            cold.analyze(parse_constraint_set(CIRCLE))
        renamed_profile = UsageProfile.uniform({"u": (-1, 1), "v": (-1, 1)})
        with QCoralAnalyzer(renamed_profile, config, store=store) as warm:
            result = warm.analyze(parse_constraint_set("u * u + v * v <= 1"))
        assert result.total_samples == 0
        assert result.cache_statistics.store_hits == 1
        store.close()

    def test_profile_mismatch_misses(self, tmp_path):
        store = open_store(str(tmp_path / "store.db"))
        config = QCoralConfig.strat_partcache(2000, seed=7)
        with QCoralAnalyzer(PROFILE_2D, config, store=store) as cold:
            cold.analyze(parse_constraint_set(CIRCLE))
        wider = UsageProfile.uniform({"x": (-2, 2), "y": (-1, 1)})
        with QCoralAnalyzer(wider, config, store=store) as other:
            result = other.analyze(parse_constraint_set(CIRCLE))
        assert result.cache_statistics.store_hits == 0
        assert result.total_samples == 2000
        store.close()

    def test_estimator_config_mismatch_misses(self, tmp_path):
        store = open_store(str(tmp_path / "store.db"))
        constraint_set = parse_constraint_set(CIRCLE)
        strat = QCoralConfig.strat_partcache(2000, seed=7)
        plain_cached = QCoralConfig(samples_per_query=2000, stratified=False, partition_and_cache=True, seed=7)
        with QCoralAnalyzer(PROFILE_2D, strat, store=store) as first:
            first.analyze(constraint_set)
        with QCoralAnalyzer(PROFILE_2D, plain_cached, store=store) as second:
            result = second.analyze(constraint_set)
        assert result.cache_statistics.store_hits == 0
        assert result.total_samples == 2000
        store.close()

    def test_merge_on_write_pools_samples(self, tmp_path):
        store = open_store(str(tmp_path / "store.db"))
        constraint_set = parse_constraint_set(CIRCLE)
        with QCoralAnalyzer(PROFILE_2D, QCoralConfig.strat_partcache(3000, seed=1), store=store) as a:
            a.analyze(constraint_set)
        with QCoralAnalyzer(PROFILE_2D, QCoralConfig.strat_partcache(8000, seed=2), store=store) as b:
            topup = b.analyze(constraint_set)
        assert topup.total_samples == 5000  # only the shortfall is drawn
        (key,) = store.keys()
        entry = store.get(key)
        assert entry.samples == 8000
        assert entry.runs == 2
        assert topup.cache_statistics.warm_starts == 1
        assert topup.cache_statistics.store_merges == 1
        store.close()

    def test_same_seed_warm_rerun_is_deterministic(self, tmp_path):
        first_store = open_store(str(tmp_path / "a.db"))
        second_store = open_store(str(tmp_path / "b.db"))
        constraint_set = parse_constraint_set(CIRCLE)
        results = []
        for store in (first_store, second_store):
            with QCoralAnalyzer(PROFILE_2D, QCoralConfig.strat_partcache(2000, seed=3), store=store) as cold:
                cold.analyze(constraint_set)
            with QCoralAnalyzer(PROFILE_2D, QCoralConfig.strat_partcache(6000, seed=3), store=store) as warm:
                results.append(warm.analyze(constraint_set))
            store.close()
        assert results[0].mean == results[1].mean
        assert results[0].variance == results[1].variance

    def test_warm_start_bit_identical_to_one_long_run(self, tmp_path):
        """Sharded path, chunk-aligned budgets: resume == one long run."""
        store = open_store(str(tmp_path / "store.db"))
        constraint_set = parse_constraint_set(CIRCLE)
        base = dict(stratified=False, seed=42, executor="serial", chunk_size=10_000)
        short = QCoralConfig(samples_per_query=20_000, **base)
        full = QCoralConfig(samples_per_query=50_000, **base)
        with QCoralAnalyzer(PROFILE_2D, short, store=store) as cold:
            cold.analyze(constraint_set)
        with QCoralAnalyzer(PROFILE_2D, full, store=store) as warm:
            resumed = warm.analyze(constraint_set)
        with QCoralAnalyzer(PROFILE_2D, full) as reference:
            long_run = reference.analyze(constraint_set)
        assert resumed.mean == long_run.mean
        assert resumed.variance == long_run.variance
        assert resumed.total_samples == 30_000  # only the continuation was drawn
        store.close()

    def test_same_seed_topup_draws_fresh_samples(self, tmp_path):
        """A serial-path continuation must not replay the prior's stream."""
        store = open_store(str(tmp_path / "store.db"))
        constraint_set = parse_constraint_set(CIRCLE)
        with QCoralAnalyzer(PROFILE_2D, QCoralConfig.strat_partcache(4000, seed=9), store=store) as cold:
            first = cold.analyze(constraint_set)
        with QCoralAnalyzer(PROFILE_2D, QCoralConfig.strat_partcache(8000, seed=9), store=store) as warm:
            second = warm.analyze(constraint_set)
        # Replaying the same 4000 samples would reproduce the mean exactly;
        # a decorrelated continuation virtually never does.
        assert second.mean != first.mean
        assert second.std < first.std
        store.close()

    def test_readonly_store_reuses_but_never_writes(self, tmp_path):
        path = str(tmp_path / "store.db")
        constraint_set = parse_constraint_set(CIRCLE)
        config = QCoralConfig.strat_partcache(2000, seed=5)
        with QCoralAnalyzer(PROFILE_2D, config.with_store(path)) as cold:
            cold.analyze(constraint_set)
        snapshot = open_store(path)
        before = {key: snapshot.get(key).samples for key in snapshot.keys()}
        snapshot.close()
        bigger = QCoralConfig.strat_partcache(6000, seed=5).with_store(path, readonly=True)
        with QCoralAnalyzer(PROFILE_2D, bigger) as warm:
            result = warm.analyze(constraint_set)
        assert result.cache_statistics.store_hits == 1
        assert result.total_samples == 4000  # the shortfall is still drawn...
        snapshot = open_store(path)
        assert {key: snapshot.get(key).samples for key in snapshot.keys()} == before
        snapshot.close()

    def test_store_requires_partcache(self, tmp_path):
        config = QCoralConfig(
            samples_per_query=1000,
            partition_and_cache=False,
            seed=1,
            store_path=str(tmp_path / "store.db"),
        )
        with QCoralAnalyzer(PROFILE_2D, config) as analyzer:
            result = analyzer.analyze(parse_constraint_set(CIRCLE))
        assert result.cache_statistics.store_lookups == 0

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            QCoralConfig(store_backend="bogus")
        with pytest.raises(ConfigurationError):
            QCoralConfig(store_readonly=True)


class TestConcurrentAnalyzers:
    """Whole analyses racing on one store through the PR 2 executors."""

    @pytest.mark.parametrize("executor_kind", ("thread", "process"))
    def test_concurrent_trials_pool_into_one_store(self, executor_kind, tmp_path):
        from repro.analysis.runner import repeat_quantification
        from repro.exec.executor import make_executor

        path = str(tmp_path / "store.db")
        SqliteStore(path).close()  # create the schema before workers race
        with make_executor(executor_kind, 2) as pool:
            aggregated = repeat_quantification(_store_trial_factory(path), runs=4, base_seed=77, executor=pool)
        store = SqliteStore(path)
        (key,) = store.keys()
        entry = store.get(key)
        # Each trial either published its own 1500-sample delta (merge-on-
        # write pooled them atomically) or found the entry already covering
        # its budget and reused it outright — never anything in between, and
        # never a corrupted count.
        assert entry.samples == entry.runs * 1500
        assert 1 <= entry.runs <= 4
        assert 0 <= entry.hits <= entry.samples
        assert entry.runs + aggregated.total_store_hits == 4
        store.close()


class _StoreTrial:
    """Picklable trial callable (the process backend cannot ship lambdas)."""

    def __init__(self, path: str) -> None:
        self.path = path

    def __call__(self, seed: int):
        config = QCoralConfig(samples_per_query=1500, stratified=False, seed=seed, store_path=self.path)
        with QCoralAnalyzer(PROFILE_2D, config) as analyzer:
            return analyzer.analyze(parse_constraint_set(CIRCLE))


def _store_trial_factory(path: str) -> _StoreTrial:
    return _StoreTrial(path)


# --------------------------------------------------------------------------- #
# Cross-run reuse through the pipeline
# --------------------------------------------------------------------------- #
class TestPipelineReuse:
    def test_warm_pipeline_rerun_resamples_zero_factors(self, tmp_path):
        config = QCoralConfig.strat_partcache(3000, seed=2).with_store(str(tmp_path / "p.db"))
        with ProbabilisticAnalysisPipeline(programs.SAFETY_MONITOR, config=config) as pipeline:
            cold = pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        with ProbabilisticAnalysisPipeline(programs.SAFETY_MONITOR, config=config) as pipeline:
            warm = pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        assert cold.qcoral_result.total_samples > 0
        assert warm.qcoral_result.total_samples == 0
        assert warm.mean == cold.mean
        assert warm.cache_statistics.store_hits >= 1
        assert warm.store_label is not None

    def test_mutated_program_reuses_unaffected_factors(self, tmp_path):
        config = QCoralConfig.strat_partcache(3000, seed=2).with_store(str(tmp_path / "p.db"))
        with ProbabilisticAnalysisPipeline(programs.SAFETY_MONITOR, config=config) as pipeline:
            pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        mutated = programs.SAFETY_MONITOR.replace("sin(headFlap * tailFlap) > 0.25", "sin(headFlap * tailFlap) > 0.3")
        with ProbabilisticAnalysisPipeline(mutated, config=config) as pipeline:
            result = pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        stats = result.cache_statistics
        # The altitude factors are untouched by the mutation and must be
        # served from the store; the flap-angle factor changed and must miss
        # (and be re-sampled from scratch).
        assert stats.store_hits >= 1
        assert stats.store_misses >= 1
        assert result.qcoral_result.total_samples == 3000
