"""Tests of the zero-perturbation observability layer.

The contract under test, in order of importance:

1. **Bit-identity.**  With a fixed master seed, estimates and per-factor hit
   counts are identical with observability disabled, enabled, or tracing at
   any sampling rate — on the serial, thread, and process executors.
2. **Merge determinism.**  The deterministic counters (rounds, draws, hits,
   allocations, chunk totals) are identical across worker counts; only
   timing histograms and per-worker labels may differ.
3. **Export formats.**  Prometheus text output lints, the metrics JSON block
   round-trips through ``MetricsSnapshot.from_dict``, and the ``Report``
   schema-v2 ``metrics`` block matches its golden file.

Regenerate the metrics golden file after an intentional change with::

    QCORAL_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_observability.py
"""

import json
import logging
import os
import re

import pytest

from repro.api import Session
from repro.core.qcoral import QCoralConfig
from repro.lang.kernel import kernel_cache_info
from repro.obs import DISABLED, Observability, ensure_observability
from repro.obs.diagnostics import Diagnostic, deterministic_diagnostics
from repro.obs.export import TRACE_SCHEMA, lint_trace, prometheus_text, write_trace_jsonl
from repro.obs.ledger import estimate_drift_sigmas, ledger_entry_for, open_ledger, phase_timings
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, render_key
from repro.obs.trace import Tracer

METRICS_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "report_metrics_golden.json")

CONSTRAINTS = "x <= 0 - y && y <= x"
BOUNDS = {"x": (-1.0, 1.0), "y": (-1.0, 1.0)}
SAMPLES = 2000
SEED = 1

#: Counters that must be identical across observability modes and worker
#: counts.  Excluded: ``kernel_*`` (process-global deltas depend on what
#: earlier tests left in the in-process LRU) and ``exec_worker_*`` (labelled
#: by pid/thread name).
_DETERMINISTIC_RE = re.compile(
    r"^(qcoral_|sampler_|icp_|store_|importance_|exec_chunks_|exec_samples_|exec_hits_)"
)


def _run(executor=None, workers=None, observability=None, trace_path=None, sample_every=1, store_backend=None):
    config = QCoralConfig.strat_partcache(SAMPLES, seed=SEED)
    with Session(
        executor=executor,
        workers=workers,
        observability=observability,
        store_backend=store_backend,
    ) as session:
        query = session.quantify(CONSTRAINTS, BOUNDS, config=config)
        if trace_path is not None:
            query = query.with_tracing(str(trace_path), sample_every=sample_every)
        return query.run()


def _deterministic_counters(snapshot: MetricsSnapshot):
    return {
        render_key(name, labels): value
        for (name, labels), value in snapshot.counters.items()
        if _DETERMINISTIC_RE.match(name)
    }


# --------------------------------------------------------------------------- #
# 1. Bit-identity: observability must never perturb an RNG stream
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("executor,workers", [(None, None), ("thread", 2), ("process", 2)])
def test_bit_identity_across_observability_modes(executor, workers, tmp_path):
    baseline = _run(executor=executor, workers=workers)
    observed = _run(executor=executor, workers=workers, observability=Observability())
    traced = _run(
        executor=executor,
        workers=workers,
        trace_path=tmp_path / "trace.jsonl",
        sample_every=3,
    )
    for report in (observed, traced):
        assert report.mean == baseline.mean
        assert report.std == baseline.std
        assert report.total_samples == baseline.total_samples
        assert [round_report.mean for round_report in report.round_reports] == [
            round_report.mean for round_report in baseline.round_reports
        ]
    assert baseline.metrics is None
    assert observed.metrics is not None and traced.metrics is not None
    # Same draws and hits whether fully observed or trace-sampled.
    assert _deterministic_counters(observed.metrics) == _deterministic_counters(traced.metrics)
    assert observed.metrics.counter_total("sampler_hits_total") > 0


def test_metrics_merge_deterministic_across_worker_counts():
    counters = []
    for workers in (1, 2, 4):
        report = _run(executor="thread", workers=workers, observability=Observability())
        counters.append(_deterministic_counters(report.metrics))
    assert counters[0] == counters[1] == counters[2]
    # The worker-side deltas really flowed back through the scheduler.
    assert counters[0]["exec_samples_total"] == SAMPLES
    assert counters[0]["exec_chunks_total"] > 0


def test_backends_agree_on_engine_counters():
    # Thread and process pools share the sharded deterministic path, so every
    # engine counter — including raw hit counts — must match between them.
    # The serial (executor=None) in-thread path is a different deterministic
    # stream by design; only its budget-level counters are comparable.
    threaded = _run(executor="thread", workers=2, observability=Observability())
    process = _run(executor="process", workers=2, observability=Observability())
    assert _deterministic_counters(threaded.metrics) == _deterministic_counters(process.metrics)
    serial = _run(observability=Observability())
    assert serial.metrics.counter_total("sampler_draws_total") == SAMPLES
    assert threaded.metrics.counter_total("sampler_draws_total") == SAMPLES
    assert serial.metrics.counter("qcoral_rounds_total") == threaded.metrics.counter("qcoral_rounds_total")


# --------------------------------------------------------------------------- #
# 2. Tracing spans
# --------------------------------------------------------------------------- #
def test_tracer_nesting_and_deterministic_sampling():
    tracer = Tracer(sample_every=2)
    for index in range(4):
        with tracer.span("outer", index=index):
            with tracer.span("inner"):
                pass
    spans = tracer.drain()
    # 1-in-2 per span name, counter-based: occurrences 0 and 2 are kept.
    names = sorted(span["name"] for span in spans)
    assert names == ["inner", "inner", "outer", "outer"]
    inner = [span for span in spans if span["name"] == "inner"]
    outer_ids = {span["span_id"] for span in spans if span["name"] == "outer"}
    assert all(span["parent_id"] in outer_ids or span["parent_id"] is not None for span in inner)
    assert all(span["duration"] >= 0.0 for span in spans)
    assert tracer.drain() == []
    with pytest.raises(ValueError):
        Tracer(sample_every=0)


def test_trace_jsonl_lines_parse(tmp_path):
    path = tmp_path / "spans.jsonl"
    report = _run(trace_path=path)
    assert report.metrics is not None
    lines = path.read_text().strip().splitlines()
    assert lines
    # Line 1 is the self-describing header; the rest are spans.
    header = json.loads(lines[0])
    assert header["record"] == "header"
    assert header["schema"] == TRACE_SCHEMA
    assert header["seed"] == SEED
    assert header["method"] == "hit-or-miss"
    assert header["config_fingerprint"]
    for line in lines[1:]:
        span = json.loads(line)
        assert {"span_id", "name", "start", "duration"} <= set(span)
    assert any(json.loads(line)["name"] == "qcoral.round" for line in lines[1:])
    # Appends accumulate across flushes and never repeat the header.
    extra = write_trace_jsonl([{"span_id": 9999, "name": "manual", "start": 0.0, "duration": 0.0}], str(path))
    assert extra == 1
    assert len(path.read_text().strip().splitlines()) == len(lines) + 1
    assert sum(1 for line in path.read_text().splitlines() if '"record"' in line) == 1
    assert lint_trace(str(path)) == []


def test_lint_trace_flags_problems(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("")
    assert lint_trace(str(path)) == [f"{path}: empty trace (missing header record)"]
    # First record must be the header.
    path.write_text(json.dumps({"span_id": 1, "name": "s", "start": 0.0, "duration": 0.1}) + "\n")
    assert any("first record must be the trace header" in problem for problem in lint_trace(str(path)))
    header = {
        "record": "header",
        "schema": TRACE_SCHEMA,
        "repro_version": "0",
        "seed": 1,
        "method": "hit-or-miss",
        "config_fingerprint": "abc",
    }
    bad_lines = [
        json.dumps(header),
        "not json",
        json.dumps({"span_id": 1, "name": "s", "start": -1.0, "duration": 0.1}),
        json.dumps({"name": "missing-id", "start": 0.0, "duration": 0.0}),
        json.dumps({"span_id": 1, "name": "dup-in-segment", "start": 0.0, "duration": 0.0}),
        json.dumps(header),
    ]
    path.write_text("\n".join(bad_lines) + "\n")
    problems = lint_trace(str(path))
    assert any("not valid JSON" in problem for problem in problems)
    assert any("'start' must be a non-negative number" in problem for problem in problems)
    assert any("span missing 'span_id'" in problem for problem in problems)
    assert any("duplicate span_id 1" in problem for problem in problems)
    assert any("duplicate header record" in problem for problem in problems)
    # Span ids restart when a later run appends: non-increasing id = new
    # segment, never a duplicate; an in-segment repeat is still flagged.
    path.write_text(
        "\n".join(
            [
                json.dumps(header),
                json.dumps({"span_id": 1, "name": "a", "start": 0.0, "duration": 0.0}),
                json.dumps({"span_id": 2, "name": "b", "start": 0.0, "duration": 0.0}),
                json.dumps({"span_id": 1, "name": "a", "start": 1.0, "duration": 0.0}),
                json.dumps({"span_id": 2, "name": "b", "start": 1.0, "duration": 0.0}),
            ]
        )
        + "\n"
    )
    assert lint_trace(str(path)) == []


# --------------------------------------------------------------------------- #
# 3. Export formats
# --------------------------------------------------------------------------- #
_SAMPLE_LINE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? \S+$")


def test_prometheus_output_lints():
    registry = MetricsRegistry()
    registry.count("qcoral_rounds_total", 3)
    registry.count("sampler_draws_total", 100, method="stratified")
    registry.gauge("qcoral_estimate_std", 0.25)
    registry.observe("qcoral_round_seconds", 0.002)
    registry.observe("qcoral_round_seconds", 7.5)  # lands in +Inf
    text = prometheus_text(registry.snapshot())
    assert text.endswith("\n")
    seen_types = {}
    for line in text.splitlines():
        if line.startswith("# TYPE"):
            _, _, name, kind = line.split(" ", 3)
            seen_types[name] = kind
        elif line.startswith("# HELP"):
            continue
        else:
            assert _SAMPLE_LINE.match(line), f"unparseable sample line: {line!r}"
    assert seen_types["qcoral_rounds_total"] == "counter"
    assert seen_types["qcoral_estimate_std"] == "gauge"
    assert seen_types["qcoral_round_seconds"] == "histogram"
    # Histogram buckets are cumulative and end at +Inf == _count.
    buckets = re.findall(r'qcoral_round_seconds_bucket\{le="([^"]+)"\} (\d+)', text)
    counts = [int(count) for _, count in buckets]
    assert counts == sorted(counts)
    assert buckets[-1][0] == "+Inf"
    assert counts[-1] == 2
    assert "qcoral_round_seconds_count 2" in text
    assert 'sampler_draws_total{method="stratified"} 100' in text


def test_metrics_snapshot_round_trips_through_dict():
    report = _run(observability=Observability())
    snapshot = report.metrics
    payload = snapshot.to_dict()
    restored = MetricsSnapshot.from_dict(json.loads(json.dumps(payload)))
    assert restored.to_dict() == payload
    assert restored.counter("sampler_draws_total", method="stratified") == snapshot.counter(
        "sampler_draws_total", method="stratified"
    )


def _normalised_metrics_block():
    """The deterministic part of a fixed-seed run's Report.metrics block.

    Timings are nondeterministic, so histograms are reduced to their
    observation counts; ``kernel_*`` counters depend on what earlier tests
    left in the process-global kernel cache and are dropped.
    """
    report = _run(observability=Observability())
    block = report.to_dict()["metrics"]
    return {
        "counters": {key: value for key, value in block["counters"].items() if not key.startswith("kernel_")},
        "gauges": block["gauges"],
        "histogram_counts": {key: value["count"] for key, value in block["histograms"].items()},
    }


def test_report_metrics_block_matches_golden():
    payload = _normalised_metrics_block()
    if os.environ.get("QCORAL_UPDATE_GOLDEN"):
        os.makedirs(os.path.dirname(METRICS_GOLDEN_PATH), exist_ok=True)
        with open(METRICS_GOLDEN_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    with open(METRICS_GOLDEN_PATH, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert payload == golden


# --------------------------------------------------------------------------- #
# 4. Report / store / kernel surfacing
# --------------------------------------------------------------------------- #
def test_store_statistics_and_metrics_in_report():
    report = _run(observability=Observability(), store_backend="memory")
    payload = report.to_dict()
    assert payload["store_stats"] is not None
    assert payload["store_stats"]["gets"] >= 1
    assert report.metrics.counter_total("store_gets_total") >= 1
    # Without a store the block is null, not absent.
    bare = _run(observability=Observability())
    assert bare.to_dict()["store_stats"] is None
    assert set(bare.to_dict()) == set(payload)


def test_kernel_cache_info_shape():
    info = kernel_cache_info()
    assert set(info) == {"memory", "disk", "codegens", "numba_fallbacks", "compile_seconds"}
    assert {"hits", "misses", "evictions", "size", "lowered_size", "capacity"} <= set(info["memory"])
    assert {"enabled", "directory", "hits", "misses", "regenerations"} <= set(info["disk"])
    assert info["memory"]["size"] <= info["memory"]["capacity"]
    assert info["compile_seconds"] >= 0.0


def test_disabled_hub_is_inert_singleton():
    assert ensure_observability(None) is DISABLED
    assert DISABLED.enabled is False
    hub = Observability()
    assert ensure_observability(hub) is hub
    with DISABLED.span("anything", label=1):
        DISABLED.count("x")
        DISABLED.observe("y", 1.0)
        DISABLED.gauge("z", 2.0)
    assert DISABLED.snapshot().counters == {}
    assert DISABLED.drain_spans() == []


def test_repro_logger_has_null_handler():
    logger = logging.getLogger("repro")
    assert any(isinstance(handler, logging.NullHandler) for handler in logger.handlers)


def test_numba_fallback_routes_through_logger(caplog):
    from repro.lang import kernel as kernel_module
    from repro.lang.parser import parse_path_condition

    previously_warned = kernel_module._NUMBA_WARNED
    kernel_module._NUMBA_WARNED = False
    try:
        with caplog.at_level(logging.WARNING, logger="repro.lang.kernel"):
            with pytest.warns(RuntimeWarning, match="falling back to fused"):
                kernel_module.get_kernel(parse_path_condition("x <= 0.125"), tier="numba")
        assert any("falling back to fused" in record.message for record in caplog.records)
    finally:
        kernel_module._NUMBA_WARNED = previously_warned


# --------------------------------------------------------------------------- #
# 5. Run-health diagnostics: deterministic for a fixed seed
# --------------------------------------------------------------------------- #
def _diagnostics_bytes(report):
    """Canonical serialisation of the deterministic diagnostic records."""
    records = deterministic_diagnostics(report.diagnostics)
    return json.dumps([record.to_dict() for record in records], sort_keys=True).encode("utf-8")


@pytest.mark.parametrize("executor,workers", [(None, None), ("thread", 2), ("process", 2)])
def test_diagnostics_bit_identical_across_observability_modes(executor, workers, tmp_path):
    baseline = _run(executor=executor, workers=workers)
    observed = _run(executor=executor, workers=workers, observability=Observability())
    traced = _run(executor=executor, workers=workers, trace_path=tmp_path / "trace.jsonl", sample_every=2)
    expected = _diagnostics_bytes(baseline)
    assert expected != b"[]"
    assert _diagnostics_bytes(observed) == expected
    assert _diagnostics_bytes(traced) == expected
    # Timing diagnostics only exist with observability enabled, and are the
    # only records the enabled runs may add.
    assert not any(record.timing for record in baseline.diagnostics)


def test_diagnostics_bit_identical_between_thread_and_process():
    threaded = _run(executor="thread", workers=2)
    process = _run(executor="process", workers=2)
    assert _diagnostics_bytes(threaded) == _diagnostics_bytes(process)


def test_diagnostics_shape_and_round_trip():
    report = _run(observability=Observability())
    assert report.diagnostics
    for record in report.diagnostics:
        assert record.severity in ("info", "warning", "error")
        assert record.code
        assert Diagnostic.from_dict(json.loads(json.dumps(record.to_dict()))) == record
    codes = {record.code for record in report.diagnostics}
    assert codes & {"CONVERGENCE_OK", "CONVERGENCE_DEGRADED"}
    # The report JSON schema carries the same records.
    payload = report.to_dict()["diagnostics"]
    assert payload == [record.to_dict() for record in report.diagnostics]
    with pytest.raises(ValueError):
        Diagnostic.from_dict({"severity": "fatal", "code": "X", "message": "bad severity"})


def test_metrics_from_dict_rejects_malformed_payloads():
    good = _run(observability=Observability()).metrics.to_dict()
    assert MetricsSnapshot.from_dict(good) is not None
    with pytest.raises(ValueError, match="expected a mapping"):
        MetricsSnapshot.from_dict([])  # type: ignore[arg-type]
    with pytest.raises(ValueError, match="'counters' must be a mapping"):
        MetricsSnapshot.from_dict({**good, "counters": 3})
    bad_counter = {**good, "counters": {**good["counters"], "x_total": "fast"}}
    with pytest.raises(ValueError, match=r"counters\['x_total'\] is not a number"):
        MetricsSnapshot.from_dict(bad_counter)
    histogram_key = next(iter(good["histograms"]))
    broken = json.loads(json.dumps(good))
    del broken["histograms"][histogram_key]["buckets"]["+Inf"]
    with pytest.raises(ValueError, match=r"buckets missing '\+Inf'"):
        MetricsSnapshot.from_dict(broken)
    broken = json.loads(json.dumps(good))
    bound = next(iter(broken["histograms"][histogram_key]["buckets"]))
    broken["histograms"][histogram_key]["buckets"][bound] = 1.5
    with pytest.raises(ValueError, match="is not an integer count"):
        MetricsSnapshot.from_dict(broken)


# --------------------------------------------------------------------------- #
# 6. Run ledger: append-only provenance, families, drift
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("suffix,backend", [("ledger.jsonl", "jsonl"), ("ledger.db", "sqlite")])
def test_ledger_round_trips_runs(tmp_path, suffix, backend):
    path = str(tmp_path / suffix)
    for _ in range(2):
        report = _run()
        with open_ledger(path) as ledger:
            ledger.append(ledger_entry_for(report))
    with open_ledger(path) as ledger:
        assert ledger.backend == backend
        entries = ledger.entries()
        assert len(entries) == 2
        first, second = entries
        assert first.family == second.family
        assert ledger.families() == [first.family]
        assert ledger.entries(family=first.family) == entries
    assert first.seed == SEED
    assert first.mean == second.mean
    assert first.run_id == second.run_id or first.analysis_time != second.analysis_time
    assert estimate_drift_sigmas(first, second) == 0.0
    parsed = second.diagnostics()
    assert parsed and all(isinstance(record, Diagnostic) for record in parsed)
    # No metrics snapshot stored (observability off) => no phase timings.
    assert phase_timings(second) == {}


def test_session_and_query_level_ledgers(tmp_path):
    path = str(tmp_path / "runs.jsonl")
    config = QCoralConfig.strat_partcache(SAMPLES, seed=SEED)
    with Session(ledger=path) as session:
        session.quantify(CONSTRAINTS, BOUNDS, config=config).run()
    override = str(tmp_path / "override.jsonl")
    with Session(ledger=path) as session:
        session.quantify(CONSTRAINTS, BOUNDS, config=config).with_ledger(override).run()
    with open_ledger(path) as ledger:
        assert len(ledger.entries()) == 1
    with open_ledger(override) as ledger:
        entries = ledger.entries()
        assert len(entries) == 1
    # Different constraints land in a different family.
    with Session(ledger=path) as session:
        session.quantify("x <= 0.5", {"x": (-1.0, 1.0)}, config=config).run()
    with open_ledger(path) as ledger:
        assert len(ledger.families()) == 2


def test_ledger_drift_in_sigma_units():
    report = _run()
    base = ledger_entry_for(report, created=1.0)
    shifted_payload = dict(base.report)
    shifted_payload["mean"] = base.mean + 5.0 * base.std
    shifted = base.__class__.from_dict({**base.to_dict(), "report": shifted_payload})
    drift = estimate_drift_sigmas(base, shifted)
    assert drift == pytest.approx(5.0 / (2.0**0.5), rel=1e-9)
    assert estimate_drift_sigmas(base, base) == 0.0
