"""Unit tests for the comparison baselines: plain MC, NIntegrate and VolComp substitutes."""

import math

import pytest

from repro.baselines.numint import NumIntConfig, integrate_indicator, nintegrate
from repro.baselines.plain_mc import per_path_monte_carlo, plain_monte_carlo
from repro.baselines.volcomp import VolCompConfig, bound_probability
from repro.core.profiles import UsageProfile
from repro.intervals import Box
from repro.lang.parser import parse_constraint_set


@pytest.fixture
def square_profile():
    return UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})


@pytest.fixture
def square_domain():
    return Box.from_bounds({"x": (-1, 1), "y": (-1, 1)})


class TestPlainMonteCarlo:
    def test_triangle(self, square_profile):
        cs = parse_constraint_set("x <= 0 - y && y <= x")
        result = plain_monte_carlo(cs, square_profile, 20_000, seed=1)
        assert result.mean == pytest.approx(0.25, abs=0.02)
        assert result.samples == 20_000
        assert result.analysis_time >= 0.0

    def test_disjunction(self, square_profile):
        cs = parse_constraint_set("x > 0.5 || x < 0 - 0.5")
        result = plain_monte_carlo(cs, square_profile, 20_000, seed=2)
        assert result.mean == pytest.approx(0.5, abs=0.02)

    def test_per_path_variant_sums_disjoint_paths(self, square_profile):
        cs = parse_constraint_set("x > 0.5 || x < 0 - 0.5")
        result = per_path_monte_carlo(cs, square_profile, 10_000, seed=3)
        assert result.mean == pytest.approx(0.5, abs=0.03)
        assert result.samples == 20_000

    def test_seeded_reproducibility(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        first = plain_monte_carlo(cs, square_profile, 5000, seed=7)
        second = plain_monte_carlo(cs, square_profile, 5000, seed=7)
        assert first.mean == second.mean


class TestNumericalIntegration:
    def test_half_plane(self, square_domain):
        cs = parse_constraint_set("x <= 0")
        result = nintegrate(cs, square_domain)
        # The indicator is discontinuous along x = 0, so the adaptive scheme
        # keeps refining the boundary slab; the estimate converges to 0.5 but
        # the reported error bound shrinks only geometrically.
        assert result.probability == pytest.approx(0.5, abs=0.02)
        assert abs(result.probability - 0.5) <= result.error_bound + 1e-9

    def test_circle_probability(self, square_domain):
        cs = parse_constraint_set("x * x + y * y <= 1")
        result = integrate_indicator(cs, square_domain, NumIntConfig(accuracy_goal=5e-3))
        assert result.probability == pytest.approx(math.pi / 4, abs=0.02)

    def test_box_constraint_is_exact(self, square_domain):
        cs = parse_constraint_set("x >= 0 && x <= 0.5 && y >= 0 && y <= 0.5")
        result = nintegrate(cs, square_domain)
        assert result.probability == pytest.approx(0.0625, abs=1e-3)

    def test_empty_constraint_set(self, square_domain):
        from repro.lang.ast import ConstraintSet

        result = integrate_indicator(ConstraintSet.of([]), square_domain)
        assert result.probability == 0.0 and result.converged

    def test_region_budget_limits_work(self, square_domain):
        cs = parse_constraint_set("sin(x * 7) * cos(y * 9) >= 0.1")
        config = NumIntConfig(accuracy_goal=1e-6, max_regions=50)
        result = integrate_indicator(cs, square_domain, config)
        assert not result.converged
        assert result.error_bound > 1e-6

    def test_error_bound_brackets_truth(self, square_domain):
        cs = parse_constraint_set("x * x + y * y <= 1")
        result = integrate_indicator(cs, square_domain, NumIntConfig(accuracy_goal=1e-3))
        truth = math.pi / 4
        assert abs(result.probability - truth) <= result.error_bound + 0.01


class TestVolCompBounds:
    def test_half_plane_bounds(self, square_profile):
        cs = parse_constraint_set("x <= 0")
        result = bound_probability(cs, square_profile)
        assert result.lower <= 0.5 <= result.upper
        assert result.width < 0.05

    def test_circle_bounds_contain_truth(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        result = bound_probability(cs, square_profile, VolCompConfig(max_boxes=2000))
        assert result.contains(math.pi / 4)

    def test_impossible_constraint(self, square_profile):
        cs = parse_constraint_set("x > 5")
        result = bound_probability(cs, square_profile)
        assert result.lower == 0.0 and result.upper == pytest.approx(0.0, abs=1e-6)

    def test_certain_constraint(self, square_profile):
        cs = parse_constraint_set("x <= 5")
        result = bound_probability(cs, square_profile)
        assert result.lower == pytest.approx(1.0, abs=1e-6)

    def test_budget_starvation_keeps_soundness(self, square_profile):
        """With almost no budget the bounds stay valid, just wide (the paper's VOL row)."""
        cs = parse_constraint_set("sin(x * y * 5) >= 0.2")
        result = bound_probability(cs, square_profile, VolCompConfig(max_boxes=3))
        assert 0.0 <= result.lower <= result.upper <= 1.0
        assert result.width > 0.5

    def test_disjunction_bounds(self, square_profile):
        cs = parse_constraint_set("x > 0.5 || x < 0 - 0.5")
        result = bound_probability(cs, square_profile)
        assert result.contains(0.5)

    def test_empty_constraint_set(self, square_profile):
        from repro.lang.ast import ConstraintSet

        result = bound_probability(ConstraintSet.of([]), square_profile)
        assert result.lower == result.upper == 0.0
