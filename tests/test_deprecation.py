"""Deprecation shims: old entry points warn but stay numerically identical.

Every pre-facade entry point keeps working behind a :class:`DeprecationWarning`
shim, and — because the facade compiles down to the very same engine — each
old path must produce **bit-identical** fixed-seed results to its Session
replacement.  These tests pin both halves of that contract.
"""

import warnings

import pytest

import repro
import repro.analysis
from repro.api import Session
from repro.core.qcoral import QCoralConfig
from repro.core.profiles import UsageProfile
from repro.lang.parser import parse_constraint_set
from repro.subjects import programs

TRIANGLE = "x <= 0 - y && y <= x"
BOUNDS = {"x": (-1.0, 1.0), "y": (-1.0, 1.0)}


def _deprecated(module, name):
    """Resolve a deprecated attribute, asserting exactly one warning fires."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = getattr(module, name)
    assert len(caught) == 1, f"{name} should warn exactly once, got {len(caught)}"
    assert issubclass(caught[0].category, DeprecationWarning)
    assert name in str(caught[0].message)
    return value


class TestWarningsFire:
    @pytest.mark.parametrize(
        "name",
        ["quantify", "ProbabilisticAnalysisPipeline", "PipelineResult", "analyze_program", "repeat_quantification"],
    )
    def test_top_level_shims_warn(self, name):
        value = _deprecated(repro, name)
        assert value is not None

    @pytest.mark.parametrize(
        "name",
        ["ProbabilisticAnalysisPipeline", "PipelineResult", "analyze_program", "repeat_quantification"],
    )
    def test_analysis_package_shims_warn(self, name):
        value = _deprecated(repro.analysis, name)
        assert value is not None

    def test_defining_submodules_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.analysis.pipeline import ProbabilisticAnalysisPipeline  # noqa: F401
            from repro.analysis.runner import repeat_quantification  # noqa: F401
            from repro.core.qcoral import quantify  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_export
        with pytest.raises(AttributeError):
            repro.analysis.no_such_export


class TestNumericalIdentity:
    """Each old path still returns bit-identical fixed-seed results."""

    def test_quantify_shim(self):
        config = QCoralConfig.strat_partcache(3000, seed=21)
        old_quantify = _deprecated(repro, "quantify")
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        legacy = old_quantify(parse_constraint_set(TRIANGLE), profile, config)
        with Session() as session:
            report = session.quantify(TRIANGLE, BOUNDS, config=config).run()
        assert (legacy.mean, legacy.std, legacy.total_samples) == (report.mean, report.std, report.total_samples)

    def test_pipeline_shim(self):
        config = QCoralConfig.strat_partcache(2000, seed=22)
        pipeline_cls = _deprecated(repro, "ProbabilisticAnalysisPipeline")
        with pipeline_cls(programs.SAFETY_MONITOR, config=config) as pipeline:
            legacy = pipeline.analyze(programs.SAFETY_MONITOR_EVENT)
        with Session() as session:
            report = session.analyze(programs.SAFETY_MONITOR, programs.SAFETY_MONITOR_EVENT, config=config).run()
        assert (legacy.mean, legacy.std) == (report.mean, report.std)
        assert legacy.bounded_probability.mean == report.bounded.mean
        # PipelineResult is the same (still-functional) class either way.
        result_cls = _deprecated(repro, "PipelineResult")
        assert isinstance(legacy, result_cls)

    def test_analyze_program_shim(self):
        config = QCoralConfig.strat_partcache(2000, seed=23)
        old_analyze_program = _deprecated(repro, "analyze_program")
        legacy = old_analyze_program(programs.SAFETY_MONITOR, programs.SAFETY_MONITOR_EVENT, config=config)
        with Session() as session:
            report = session.analyze(programs.SAFETY_MONITOR, programs.SAFETY_MONITOR_EVENT, config=config).run()
        assert (legacy.mean, legacy.std) == (report.mean, report.std)

    def test_repeat_quantification_shim(self):
        config = QCoralConfig.strat_partcache(1000)
        constraint_set = parse_constraint_set(TRIANGLE)
        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        old_repeat = _deprecated(repro, "repeat_quantification")
        from repro.core.qcoral import quantify as engine_quantify

        legacy = old_repeat(
            lambda seed: engine_quantify(constraint_set, profile, config.with_seed(seed)),
            runs=3,
            base_seed=13,
        )
        with Session() as session:
            report = session.quantify(TRIANGLE, BOUNDS, config=config).repeat(runs=3, base_seed=13)
        assert [t.estimate for t in legacy.outcomes] == [t.estimate for t in report.trials]
        assert legacy.mean_estimate == report.mean
