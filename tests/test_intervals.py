"""Unit tests for the interval-arithmetic substrate."""

import math

import pytest

from repro.errors import DomainError, EmptyIntervalError, IntervalError
from repro.intervals import EMPTY, ENTIRE, Box, Interval
from repro.intervals import functions as ifn


class TestIntervalBasics:
    def test_make_orders_are_preserved(self):
        iv = Interval.make(-1, 2)
        assert iv.lo == -1.0
        assert iv.hi == 2.0

    def test_point_interval(self):
        iv = Interval.point(3.5)
        assert iv.is_point()
        assert iv.contains(3.5)
        assert iv.width() == 0.0

    def test_nan_bounds_rejected(self):
        with pytest.raises(IntervalError):
            Interval.make(math.nan, 1.0)

    def test_empty_properties(self):
        assert EMPTY.is_empty()
        assert not EMPTY.contains(0.0)
        assert EMPTY.width() == 0.0

    def test_entire_is_unbounded(self):
        assert not ENTIRE.is_bounded()
        assert ENTIRE.contains(1e300)

    def test_hull_of_values(self):
        iv = Interval.hull_of([3.0, -1.0, 2.0])
        assert iv.lo == -1.0 and iv.hi == 3.0

    def test_hull_of_empty_iterable_is_empty(self):
        assert Interval.hull_of([]).is_empty()

    def test_midpoint_and_radius(self):
        iv = Interval.make(2.0, 6.0)
        assert iv.midpoint() == 4.0
        assert iv.radius() == 2.0

    def test_midpoint_of_empty_raises(self):
        with pytest.raises(EmptyIntervalError):
            EMPTY.midpoint()

    def test_magnitude_and_mignitude(self):
        iv = Interval.make(-3.0, 2.0)
        assert iv.magnitude() == 3.0
        assert iv.mignitude() == 0.0
        assert Interval.make(1.0, 4.0).mignitude() == 1.0

    def test_contains_interval(self):
        outer = Interval.make(0, 10)
        inner = Interval.make(2, 3)
        assert outer.contains_interval(inner)
        assert not inner.contains_interval(outer)
        assert outer.contains_interval(EMPTY)

    def test_overlaps(self):
        assert Interval.make(0, 2).overlaps(Interval.make(1, 3))
        assert not Interval.make(0, 1).overlaps(Interval.make(2, 3))

    def test_clamp(self):
        iv = Interval.make(0, 1)
        assert iv.clamp(-5) == 0.0
        assert iv.clamp(0.5) == 0.5
        assert iv.clamp(7) == 1.0

    def test_split_default_midpoint(self):
        low, high = Interval.make(0, 4).split()
        assert low.hi == high.lo == 2.0

    def test_split_outside_point_raises(self):
        with pytest.raises(IntervalError):
            Interval.make(0, 1).split(5.0)

    def test_sample_points_cover_bounds(self):
        points = list(Interval.make(0, 1).sample_points(5))
        assert points[0] == 0.0 and points[-1] == 1.0 and len(points) == 5


class TestIntervalArithmetic:
    def test_addition_encloses(self):
        result = Interval.make(1, 2) + Interval.make(3, 4)
        assert result.lo <= 4.0 <= result.hi
        assert result.lo <= 6.0 <= result.hi

    def test_addition_with_scalar(self):
        result = Interval.make(1, 2) + 1
        assert result.contains(2.0) and result.contains(3.0)

    def test_subtraction(self):
        result = Interval.make(1, 2) - Interval.make(0.5, 1.0)
        assert result.contains(0.0) and result.contains(1.5)

    def test_negation(self):
        result = -Interval.make(1, 2)
        assert result.contains(-1.5)

    def test_multiplication_signs(self):
        result = Interval.make(-2, 3) * Interval.make(-1, 4)
        assert result.contains(-8.0) and result.contains(12.0) and result.contains(2.0)

    def test_multiplication_zero_times_infinite(self):
        result = Interval.point(0.0) * ENTIRE
        assert result.contains(0.0)

    def test_division_by_positive(self):
        result = Interval.make(1, 2) / Interval.make(2, 4)
        assert result.contains(0.25) and result.contains(1.0)

    def test_division_by_interval_containing_zero_is_entire(self):
        assert (Interval.make(1, 2) / Interval.make(-1, 1)) == ENTIRE

    def test_division_by_zero_point(self):
        assert (Interval.make(1, 2) / Interval.point(0.0)).is_empty()

    def test_abs(self):
        assert abs(Interval.make(-3, 2)) == Interval(0.0, 3.0)
        assert abs(Interval.make(-5, -2)) == Interval(2.0, 5.0)

    def test_sqr_tighter_than_product_around_zero(self):
        iv = Interval.make(-2, 3)
        assert iv.sqr().lo >= 0.0
        assert iv.sqr().contains(0.0) and iv.sqr().contains(9.0)

    def test_empty_propagates(self):
        assert (EMPTY + Interval.make(0, 1)).is_empty()
        assert (Interval.make(0, 1) * EMPTY).is_empty()

    def test_intersect_and_hull(self):
        a, b = Interval.make(0, 2), Interval.make(1, 3)
        assert a.intersect(b) == Interval(1.0, 2.0)
        assert a.hull(b) == Interval(0.0, 3.0)
        assert a.intersect(Interval.make(5, 6)).is_empty()

    def test_inflate(self):
        assert Interval.make(0, 1).inflate(0.5) == Interval(-0.5, 1.5)
        with pytest.raises(IntervalError):
            Interval.make(0, 1).inflate(-1)


class TestIntervalFunctions:
    def test_exp_monotone(self):
        result = ifn.interval_exp(Interval.make(0, 1))
        assert result.contains(1.0) and result.contains(math.e)

    def test_exp_overflow_saturates(self):
        result = ifn.interval_exp(Interval.make(0, 1e9))
        assert result.hi == math.inf

    def test_log_of_nonpositive_is_empty(self):
        assert ifn.interval_log(Interval.make(-2, -1)).is_empty()

    def test_log_spanning_zero(self):
        result = ifn.interval_log(Interval.make(0, math.e))
        assert result.lo == -math.inf and result.contains(1.0)

    def test_sqrt_clips_negative_part(self):
        result = ifn.interval_sqrt(Interval.make(-1, 4))
        assert result.lo >= 0.0 and result.contains(2.0)

    def test_sqrt_of_negative_is_empty(self):
        assert ifn.interval_sqrt(Interval.make(-4, -1)).is_empty()

    def test_sin_small_interval(self):
        result = ifn.interval_sin(Interval.make(0.1, 0.2))
        assert result.contains(math.sin(0.15))
        assert result.hi <= math.sin(0.2) + 1e-9

    def test_sin_captures_maximum(self):
        result = ifn.interval_sin(Interval.make(0, math.pi))
        assert result.hi >= 1.0 - 1e-12

    def test_sin_wide_interval_is_unit(self):
        assert ifn.interval_sin(Interval.make(0, 100)) == Interval(-1.0, 1.0)

    def test_cos_captures_minimum(self):
        result = ifn.interval_cos(Interval.make(3.0, 3.5))
        assert result.lo <= -1.0 + 1e-9 or result.contains(math.cos(math.pi))

    def test_tan_across_pole_is_entire(self):
        assert ifn.interval_tan(Interval.make(1.5, 1.7)) == ENTIRE

    def test_tan_within_branch(self):
        result = ifn.interval_tan(Interval.make(0.1, 0.3))
        assert result.contains(math.tan(0.2))

    def test_atan2_simple_quadrant(self):
        result = ifn.interval_atan2(Interval.make(1, 2), Interval.make(1, 2))
        assert result.contains(math.atan2(1.5, 1.5))

    def test_atan2_containing_origin_is_full_range(self):
        result = ifn.interval_atan2(Interval.make(-1, 1), Interval.make(-1, 1))
        assert result.lo <= -math.pi + 1e-9 and result.hi >= math.pi - 1e-9

    def test_integer_power_even(self):
        result = ifn.integer_power(Interval.make(-2, 3), 2)
        assert result.lo <= 0.0 <= result.lo + 1e-12
        assert result.contains(9.0)

    def test_integer_power_odd_preserves_sign(self):
        result = ifn.integer_power(Interval.make(-2, 3), 3)
        assert result.contains(-8.0) and result.contains(27.0)

    def test_pow_non_integer_exponent_positive_base(self):
        result = ifn.interval_pow(Interval.make(1, 4), Interval.point(0.5))
        assert result.contains(1.0) and result.contains(2.0)

    def test_pow_negative_base_non_integer_is_empty(self):
        assert ifn.interval_pow(Interval.make(-4, -1), Interval.point(0.5)).is_empty()

    def test_min_max(self):
        a, b = Interval.make(0, 5), Interval.make(2, 3)
        assert ifn.interval_min(a, b) == Interval(0.0, 3.0)
        assert ifn.interval_max(a, b) == Interval(2.0, 5.0)

    def test_apply_function_dispatch(self):
        assert ifn.apply_function("sqrt", [Interval.make(4, 9)]).contains(2.5)
        assert ifn.apply_function("max", [Interval.point(1), Interval.point(2)]).contains(2.0)

    def test_apply_function_arity_error(self):
        with pytest.raises(IntervalError):
            ifn.apply_function("sqrt", [Interval.point(1), Interval.point(2)])

    def test_supported_functions_contains_paper_vocabulary(self):
        names = set(ifn.supported_functions())
        assert {"sin", "cos", "tan", "sqrt", "pow", "atan2"} <= names


class TestBox:
    def test_from_bounds_and_volume(self):
        box = Box.from_bounds({"x": (0, 2), "y": (0, 3)})
        assert box.volume() == 6.0
        assert set(box.variables) == {"x", "y"}

    def test_empty_box(self):
        box = Box.empty(["x"])
        assert box.is_empty()
        assert box.volume() == 0.0

    def test_interval_lookup_error(self):
        box = Box.from_bounds({"x": (0, 1)})
        with pytest.raises(DomainError):
            box.interval("y")

    def test_contains_point(self):
        box = Box.from_bounds({"x": (0, 1), "y": (0, 1)})
        assert box.contains_point({"x": 0.5, "y": 0.5})
        assert not box.contains_point({"x": 2.0, "y": 0.5})
        assert not box.contains_point({"x": 0.5})

    def test_contains_box(self):
        outer = Box.from_bounds({"x": (0, 10), "y": (0, 10)})
        inner = Box.from_bounds({"x": (1, 2), "y": (3, 4)})
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_replace_and_split(self):
        box = Box.from_bounds({"x": (0, 4), "y": (0, 1)})
        low, high = box.split()
        assert low.interval("x").hi == 2.0
        assert high.interval("x").lo == 2.0
        assert low.interval("y") == box.interval("y")

    def test_split_names_widest_variable(self):
        box = Box.from_bounds({"x": (0, 1), "y": (0, 10)})
        assert box.max_width_variable() == "y"

    def test_project_and_extend(self):
        box = Box.from_bounds({"x": (0, 1), "y": (2, 3), "z": (4, 5)})
        projected = box.project(["x", "z"])
        assert set(projected.variables) == {"x", "z"}
        extended = projected.extend(Box.from_bounds({"w": (0, 1)}))
        assert "w" in extended
        with pytest.raises(DomainError):
            projected.extend(Box.from_bounds({"x": (0, 1)}))

    def test_intersect_requires_same_variables(self):
        a = Box.from_bounds({"x": (0, 1)})
        b = Box.from_bounds({"y": (0, 1)})
        with pytest.raises(DomainError):
            a.intersect(b)

    def test_relative_volume(self):
        domain = Box.from_bounds({"x": (0, 2), "y": (0, 2)})
        sub = Box.from_bounds({"x": (0, 1), "y": (0, 1)})
        assert sub.relative_volume(domain) == pytest.approx(0.25)

    def test_relative_volume_with_degenerate_dimension(self):
        domain = Box.from_bounds({"x": (0, 2), "y": (1, 1)})
        sub = Box.from_bounds({"x": (0, 1), "y": (1, 1)})
        assert sub.relative_volume(domain) == pytest.approx(0.5)

    def test_corners_and_midpoint(self):
        box = Box.from_bounds({"x": (0, 1), "y": (0, 2)})
        corners = box.corners()
        assert len(corners) == 4
        assert {"x": 0.0, "y": 2.0} in corners
        assert box.midpoint() == {"x": 0.5, "y": 1.0}

    def test_hash_and_equality(self):
        a = Box.from_bounds({"x": (0, 1)})
        b = Box.from_bounds({"x": (0, 1)})
        assert a == b and hash(a) == hash(b)
