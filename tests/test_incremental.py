"""Tests of the incremental re-quantification engine and the ``qcoral ci`` gate.

Covers the three layers of :mod:`repro.incremental` end to end: the
constraint-set differ (alpha-equivalent renames are unchanged, symmetric
factors disambiguate through the fingerprint tie-break, adds/removes
classify), the budget planner (unchanged factors reuse stored evidence
outright, the residual budget concentrates on the edit), and the commit gate
(exit-code contract 0/1/2, drift and floor violations, REUSE_SUMMARY in the
report and the ledger).  The bit-identity contract — an incremental run whose
diff finds everything changed matches a cold run at the same seed — is
asserted exactly, not approximately.
"""

import json
import math

import pytest

from repro.api import Session
from repro.cli import main
from repro.core.profiles import UniformDistribution, UsageProfile
from repro.core.qcoral import QCoralConfig
from repro.errors import ConfigurationError
from repro.incremental import (
    ADDED,
    CHANGED,
    REMOVED,
    UNCHANGED,
    diff_constraint_sets,
    plan_reuse,
)
from repro.lang.parser import parse_constraint_set
from repro.store import open_store
from repro.subjects import evolution

PROFILE = evolution.evolution_profile()
CONFIG = QCoralConfig(samples_per_query=1500, seed=9)


def _diff(baseline, candidate, profile=PROFILE, config=CONFIG, **kwargs):
    return diff_constraint_sets(
        parse_constraint_set(baseline), parse_constraint_set(candidate), profile, config=config, **kwargs
    )


# --------------------------------------------------------------------------- #
# The differ
# --------------------------------------------------------------------------- #
def test_identical_sets_are_all_unchanged():
    diff = _diff(evolution.EVOLUTION_V1, evolution.EVOLUTION_V1)
    assert len(diff.unchanged) == 5
    assert not diff.changed and not diff.added and not diff.removed
    assert diff.unchanged_fraction == 1.0
    assert diff.candidate_factor_keys == diff.baseline_factor_keys


def test_single_edit_classifies_one_changed_factor():
    diff = _diff(evolution.EVOLUTION_V1, evolution.EVOLUTION_V2)
    assert len(diff.unchanged) == 4
    assert len(diff.changed) == 1
    assert not diff.added and not diff.removed
    (delta,) = diff.changed
    assert delta.status == CHANGED
    assert delta.variables == ("c",)
    # The edit rolls the candidate's factor key but not the baseline's.
    assert delta.old.digest != delta.new.digest


def test_alpha_renamed_factor_is_unchanged():
    profile = UsageProfile(
        {name: UniformDistribution(-1.0, 1.0) for name in ("x", "y", "u", "v")}
    )
    diff = _diff("x*x + y*y <= 1", "u*u + v*v <= 1", profile=profile)
    assert len(diff.unchanged) == 1
    assert not diff.changed and not diff.added and not diff.removed


def test_symmetric_factor_disambiguates_by_fingerprint_tiebreak():
    # x and b are U(0,1); y and a are U(0,2).  "x + y <= 1" and "b + a <= 1"
    # are the same factor under the role-respecting rename x->b, y->a, but the
    # alpha text alone cannot order the two symmetric variables — the
    # fingerprint tie-break must pick the same orientation on both sides.
    profile = UsageProfile(
        {
            "x": UniformDistribution(0.0, 1.0),
            "y": UniformDistribution(0.0, 2.0),
            "a": UniformDistribution(0.0, 2.0),
            "b": UniformDistribution(0.0, 1.0),
        }
    )
    diff = _diff("x + y <= 1", "b + a <= 1", profile=profile)
    assert len(diff.unchanged) == 1
    assert not diff.changed and not diff.added and not diff.removed


def test_added_and_removed_factors_classify():
    profile = UsageProfile(
        {"x": UniformDistribution(-1.0, 1.0), "y": UniformDistribution(0.0, 2.0)}
    )
    grown = _diff("x*x <= 0.5", "x*x <= 0.5 && sin(y) <= 0.3", profile=profile)
    assert len(grown.unchanged) == 1 and len(grown.added) == 1
    assert grown.added[0].status == ADDED
    shrunk = _diff("x*x <= 0.5 && sin(y) <= 0.3", "x*x <= 0.5", profile=profile)
    assert len(shrunk.unchanged) == 1 and len(shrunk.removed) == 1
    assert shrunk.removed[0].status == REMOVED
    # Removed factors never contribute a candidate key.
    assert len(shrunk.candidate_factor_keys) == 1
    statuses = [delta.status for delta in shrunk.deltas]
    assert statuses == [UNCHANGED, REMOVED]


def test_diff_requires_exactly_one_of_config_or_method():
    v1 = parse_constraint_set(evolution.EVOLUTION_V1)
    with pytest.raises(ConfigurationError):
        diff_constraint_sets(v1, v1, PROFILE)
    with pytest.raises(ConfigurationError):
        diff_constraint_sets(v1, v1, PROFILE, config=CONFIG, method="mc")


# --------------------------------------------------------------------------- #
# The planner
# --------------------------------------------------------------------------- #
def _run_v1(tmp_path, *, config=CONFIG):
    store = tmp_path / "store.jsonl"
    ledger = tmp_path / "ledger.jsonl"
    with Session(store=str(store), ledger=str(ledger)) as session:
        report = session.quantify(
            parse_constraint_set(evolution.EVOLUTION_V1), PROFILE, config=config
        ).run()
    return store, ledger, report


def test_plan_concentrates_budget_on_the_edit(tmp_path):
    store_path, _, _ = _run_v1(tmp_path)
    diff = _diff(evolution.EVOLUTION_V1, evolution.EVOLUTION_V2)
    with open_store(str(store_path)) as store:
        plan = plan_reuse(diff, store, CONFIG.samples_per_query)
    assert plan.total_factors == 5
    assert plan.reused_factors == 4
    assert plan.reuse_fraction == pytest.approx(0.8)
    assert plan.cold_budget == 5 * CONFIG.samples_per_query
    # The one changed factor owes its full budget; everything else is covered.
    assert plan.residual_budget == CONFIG.samples_per_query
    assert plan.samples_saved == 4 * CONFIG.samples_per_query
    (fresh,) = [factor for factor in plan.factors if not factor.reused]
    assert fresh.delta.status == CHANGED


def test_plan_without_store_is_all_cold():
    diff = _diff(evolution.EVOLUTION_V1, evolution.EVOLUTION_V2)
    plan = plan_reuse(diff, None, 100)
    assert plan.reused_factors == 0
    assert plan.residual_budget == plan.cold_budget == 500


def test_store_coverage_reports_samples_and_omits_absent_keys(tmp_path):
    store_path, _, _ = _run_v1(tmp_path)
    diff = _diff(evolution.EVOLUTION_V1, evolution.EVOLUTION_V1)
    keys = list(diff.candidate_factor_keys)
    with open_store(str(store_path)) as store:
        coverage = store.coverage(keys + ["absent-digest"])
    assert set(coverage) == set(keys)
    for entry in coverage.values():
        assert entry.exact or entry.samples >= CONFIG.samples_per_query
        assert entry.covers(CONFIG.samples_per_query)


# --------------------------------------------------------------------------- #
# Incremental runs through the Query API
# --------------------------------------------------------------------------- #
def test_incremental_run_reuses_unchanged_factors(tmp_path):
    store_path, ledger_path, cold = _run_v1(tmp_path)
    with Session(store=str(store_path), ledger=str(ledger_path)) as session:
        query = session.quantify(
            parse_constraint_set(evolution.EVOLUTION_V2), PROFILE, config=CONFIG
        ).against_baseline(parse_constraint_set(evolution.EVOLUTION_V1))
        plan = query.reuse_plan()
        report = query.run()
    assert plan.reused_factors == 4
    # Acceptance criterion: the incremental run draws at most a quarter of
    # the cold run's samples at the same per-factor budget.
    assert report.total_samples <= 0.25 * cold.total_samples
    assert abs(report.mean - evolution.EXACT_V2) < 0.02
    summaries = [d for d in report.diagnostics if d.code == "REUSE_SUMMARY"]
    assert len(summaries) == 1
    evidence = dict(summaries[0].evidence)
    assert evidence["factors_reused"] == 4
    assert evidence["factors_changed"] == 1
    assert evidence["samples_drawn"] == report.total_samples
    # The ledger entry carries the diagnostic too.
    from repro.obs.ledger import open_ledger

    with open_ledger(str(ledger_path)) as ledger:
        entry = ledger.entries()[-1]
    assert any(d.code == "REUSE_SUMMARY" for d in entry.diagnostics())


def test_removed_factor_never_contaminates_the_merged_result(tmp_path):
    profile = UsageProfile(
        {
            "x": UniformDistribution(-1.0, 1.0),
            "y": UniformDistribution(-1.0, 1.0),
            "z": UniformDistribution(0.0, 2.0),
        }
    )
    v1 = "x*x + y*y <= 1 && sin(z) <= 0.5"
    v2 = "x*x + y*y <= 1"
    store_path = tmp_path / "store.jsonl"
    with Session(store=str(store_path)) as session:
        session.quantify(parse_constraint_set(v1), profile, config=CONFIG).run()
        query = session.quantify(
            parse_constraint_set(v2), profile, config=CONFIG
        ).against_baseline(parse_constraint_set(v1))
        diff = query._baseline_diff(CONFIG)
        report = query.run()
    (removed,) = diff.removed
    # The stale entry is still in the store under the removed factor's digest…
    with open_store(str(store_path)) as store:
        assert removed.key in store.coverage([removed.key])
    # …but the candidate's key set excludes it, and the merged estimate is the
    # circle factor alone (pi/4), not the contaminated two-factor product.
    assert removed.key not in diff.candidate_factor_keys
    assert abs(report.mean - math.pi / 4.0) < 0.02
    assert report.mean > 0.7  # the v1 product would sit near 0.2


def test_all_changed_incremental_run_is_bit_identical_to_cold(tmp_path):
    store_path, _, _ = _run_v1(tmp_path)
    all_changed = evolution.edited_version(5)
    diff = _diff(evolution.EVOLUTION_V1, all_changed)
    assert len(diff.changed) == 5 and not diff.unchanged
    with Session() as session:  # no store: the genuinely cold reference
        cold = session.quantify(
            parse_constraint_set(all_changed), PROFILE, config=CONFIG
        ).run()
    with Session(store=str(store_path)) as session:
        incremental = (
            session.quantify(parse_constraint_set(all_changed), PROFILE, config=CONFIG)
            .against_baseline(parse_constraint_set(evolution.EVOLUTION_V1))
            .run()
        )
    # Store lookups that miss never touch the RNG streams, so the contract is
    # exact equality, not statistical agreement.
    assert incremental.mean == cold.mean
    assert incremental.std == cold.std
    assert incremental.total_samples == cold.total_samples


# --------------------------------------------------------------------------- #
# The `qcoral ci` commit gate
# --------------------------------------------------------------------------- #
def _write_fixture(tmp_path):
    v1 = tmp_path / "v1.txt"
    v2 = tmp_path / "v2.txt"
    v1.write_text(evolution.EVOLUTION_V1 + "\n", encoding="utf-8")
    v2.write_text(evolution.EVOLUTION_V2 + "\n", encoding="utf-8")
    return v1, v2


def _domain_args():
    argv = []
    for spec in evolution.domain_args():
        argv += ["--domain", spec]
    return argv


def _ci_argv(tmp_path, *extra):
    return [
        "ci",
        *_domain_args(),
        "--samples",
        "1500",
        "--seed",
        "9",
        "--store",
        str(tmp_path / "store.jsonl"),
        "--ledger",
        str(tmp_path / "ledger.jsonl"),
        *extra,
    ]


def test_ci_gate_passes_and_saves_samples(tmp_path, capsys):
    v1, v2 = _write_fixture(tmp_path)
    assert (
        main(
            [
                "quantify",
                "--constraints-file",
                str(v1),
                *_domain_args(),
                "--samples",
                "1500",
                "--seed",
                "9",
                "--store",
                str(tmp_path / "store.jsonl"),
                "--ledger",
                str(tmp_path / "ledger.jsonl"),
                "--json",
            ]
        )
        == 0
    )
    cold = json.loads(capsys.readouterr().out)
    # The v1->v2 edit intentionally moves the true probability (~24 sigma at
    # this precision), so the gate is passed the raised threshold a team uses
    # to land an acknowledged behaviour change.
    code = main(
        _ci_argv(
            tmp_path,
            "--constraints-file",
            str(v2),
            "--baseline-file",
            str(v1),
            "--max-drift-sigmas",
            "50",
            "--json",
        )
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["gate"]["passed"] is True
    assert payload["gate"]["previous_run"] is not None
    assert payload["report"]["samples"] <= 0.25 * cold["samples"]


def test_ci_first_run_has_no_drift_comparison(tmp_path, capsys):
    _, v2 = _write_fixture(tmp_path)
    code = main(_ci_argv(tmp_path, "--constraints-file", str(v2)))
    out = capsys.readouterr().out
    assert code == 0
    assert "n/a (no prior run" in out
    assert "OK:" in out


def test_ci_drift_gate_trips(tmp_path, capsys):
    v1, _ = _write_fixture(tmp_path)
    assert main(_ci_argv(tmp_path, "--constraints-file", str(v1))) == 0
    capsys.readouterr()
    # A candidate whose sin threshold collapses to -0.9 kills most of the
    # factor's mass: far outside any plausible sigma band of the v1 estimate.
    shifted = evolution.EVOLUTION_V1.replace("sin(c) <= 0.5", "sin(c) <= -0.9")
    code = main(
        _ci_argv(tmp_path, shifted, "--baseline", evolution.EVOLUTION_V1, "--seed", "10")
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "GATE: estimate drifted" in out


def test_ci_floor_gate_trips(tmp_path, capsys):
    _, v2 = _write_fixture(tmp_path)
    code = main(_ci_argv(tmp_path, "--constraints-file", str(v2), "--min-probability", "0.9"))
    out = capsys.readouterr().out
    assert code == 1
    assert "GATE: probability" in out
    assert "below the floor" in out


def test_ci_usage_errors_exit_two(tmp_path, capsys):
    v1, v2 = _write_fixture(tmp_path)
    domain = _domain_args()
    # No ledger: the gate has nothing to compare against or record into.
    assert main(["ci", evolution.EVOLUTION_V1, *domain]) == 2
    # Missing candidate file.
    assert main(_ci_argv(tmp_path, "--constraints-file", str(tmp_path / "nope.txt"))) == 2
    # Malformed gate thresholds.
    assert main(_ci_argv(tmp_path, "--constraints-file", str(v2), "--max-drift-sigmas", "0")) == 2
    assert main(_ci_argv(tmp_path, "--constraints-file", str(v2), "--min-probability", "1.5")) == 2
    # Incremental quantification needs PARTCACHE.
    assert (
        main(
            _ci_argv(
                tmp_path,
                "--constraints-file",
                str(v2),
                "--baseline-file",
                str(v1),
                "--no-partcache",
            )
        )
        == 2
    )
    # No candidate constraints at all.
    assert main(_ci_argv(tmp_path)) == 2
    err = capsys.readouterr().err
    assert "error:" in err
