"""Unit and integration tests for the qCORAL analyzer (Algorithms 1 and 2)."""


import pytest

from repro.core.profiles import UsageProfile
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig, quantify
from repro.errors import ConfigurationError, DomainError
from repro.lang.parser import parse_constraint_set, parse_path_condition


@pytest.fixture
def square_profile():
    return UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})


class TestConfig:
    def test_presets(self):
        assert QCoralConfig.plain().feature_label() == "qCORAL{}"
        assert QCoralConfig.strat().feature_label() == "qCORAL{STRAT}"
        assert QCoralConfig.strat_partcache().feature_label() == "qCORAL{STRAT,PARTCACHE}"

    def test_invalid_samples(self):
        with pytest.raises(ConfigurationError):
            QCoralConfig(samples_per_query=0)

    def test_with_samples_and_seed(self):
        config = QCoralConfig.plain(1000).with_samples(5000).with_seed(3)
        assert config.samples_per_query == 5000
        assert config.seed == 3
        assert not config.stratified


class TestAnalyzer:
    def test_triangle_all_configurations(self, square_profile):
        cs = parse_constraint_set("x <= 0 - y && y <= x")
        for config in (
            QCoralConfig.plain(10_000, seed=1),
            QCoralConfig.strat(10_000, seed=1),
            QCoralConfig.strat_partcache(10_000, seed=1),
        ):
            result = quantify(cs, square_profile, config)
            assert result.mean == pytest.approx(0.25, abs=0.03)

    def test_disjoint_paths_sum(self, square_profile):
        cs = parse_constraint_set("x > 0.5 || x <= 0 - 0.5")
        result = quantify(cs, square_profile, QCoralConfig.strat_partcache(5000, seed=2))
        assert result.mean == pytest.approx(0.5, abs=0.03)
        assert len(result.path_reports) == 2

    def test_independent_factors_multiply(self, square_profile):
        cs = parse_constraint_set("x >= 0 && y >= 0")
        result = quantify(cs, square_profile, QCoralConfig.strat_partcache(5000, seed=3))
        assert result.mean == pytest.approx(0.25, abs=1e-6)
        report = result.path_reports[0]
        assert report.factor_count == 2

    def test_partcache_reuses_shared_factors(self, square_profile):
        cs = parse_constraint_set("x >= 0 && y >= 0 || x >= 0 && y < 0")
        analyzer = QCoralAnalyzer(square_profile, QCoralConfig.strat_partcache(2000, seed=4))
        result = analyzer.analyze(cs)
        assert result.cache_statistics.hits >= 1
        cached_factors = [factor for report in result.path_reports for factor in report.factors if factor.from_cache]
        assert cached_factors

    def test_no_partcache_treats_pc_as_single_factor(self, square_profile):
        cs = parse_constraint_set("x >= 0 && y >= 0")
        result = quantify(cs, square_profile, QCoralConfig.strat(2000, seed=5))
        assert result.path_reports[0].factor_count == 1
        assert result.cache_statistics.lookups == 0

    def test_exact_probability_one(self, square_profile):
        cs = parse_constraint_set("x <= 2")
        result = quantify(cs, square_profile, QCoralConfig.strat_partcache(1000, seed=6))
        assert result.mean == pytest.approx(1.0, abs=1e-9)
        assert result.variance == pytest.approx(0.0, abs=1e-12)

    def test_exact_probability_zero(self, square_profile):
        cs = parse_constraint_set("x > 2")
        result = quantify(cs, square_profile, QCoralConfig.strat_partcache(1000, seed=7))
        assert result.mean == 0.0

    def test_empty_path_condition_counts_whole_domain(self, square_profile):
        from repro.lang.ast import ConstraintSet, PathCondition

        cs = ConstraintSet.of([PathCondition.of([])])
        result = quantify(cs, square_profile, QCoralConfig.strat_partcache(100, seed=8))
        assert result.mean == 1.0

    def test_missing_profile_variable_rejected(self, square_profile):
        cs = parse_constraint_set("z >= 0")
        with pytest.raises(DomainError):
            quantify(cs, square_profile, QCoralConfig.plain(100))

    def test_seeded_runs_are_reproducible(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        config = QCoralConfig.strat_partcache(3000, seed=99)
        first = quantify(cs, square_profile, config)
        second = quantify(cs, square_profile, config)
        assert first.mean == second.mean
        assert first.variance == second.variance

    def test_reset_clears_cache(self, square_profile):
        analyzer = QCoralAnalyzer(square_profile, QCoralConfig.strat_partcache(1000, seed=1))
        analyzer.analyze(parse_constraint_set("x >= 0"))
        analyzer.reset()
        assert analyzer.analyze(parse_constraint_set("x >= 0")).cache_statistics.misses >= 1

    def test_analyze_path_condition_directly(self, square_profile):
        analyzer = QCoralAnalyzer(square_profile, QCoralConfig.strat_partcache(2000, seed=10))
        report = analyzer.analyze_path_condition(parse_path_condition("x >= 0 && y >= 0"))
        assert report.estimate.mean == pytest.approx(0.25, abs=0.02)

    def test_total_samples_reported(self, square_profile):
        cs = parse_constraint_set("x * x + y * y <= 1")
        result = quantify(cs, square_profile, QCoralConfig.strat(2000, seed=11))
        assert result.total_samples > 0
        assert result.analysis_time >= 0.0


class TestPaperExamples:
    def test_section_44_safety_monitor(self):
        """The paper's running example: P(callSupervisor) ≈ 0.737848."""
        profile = UsageProfile.uniform({"altitude": (0, 20000), "headFlap": (-10, 10), "tailFlap": (-10, 10)})
        cs = parse_constraint_set("altitude > 9000 || altitude <= 9000 && sin(headFlap * tailFlap) > 0.25")
        result = quantify(cs, profile, QCoralConfig.strat_partcache(30_000, seed=12))
        assert result.mean == pytest.approx(0.737848, abs=0.01)
        # altitude-only PCs are resolved exactly by ICP, so the variance comes
        # only from the sin factor and stays small.
        assert result.std < 0.01

    def test_altitude_factor_exact(self):
        """ICP resolves the box constraint `altitude > 9000` with zero variance."""
        profile = UsageProfile.uniform({"altitude": (0, 20000)})
        cs = parse_constraint_set("altitude > 9000")
        result = quantify(cs, profile, QCoralConfig.strat_partcache(1000, seed=13))
        assert result.mean == pytest.approx(0.55, abs=1e-6)
        assert result.variance == pytest.approx(0.0, abs=1e-12)

    def test_variance_upper_bound_of_disjunction(self):
        """Theorem 1: reported variance bounds the empirical variance of repeats."""
        import numpy as np

        profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
        cs = parse_constraint_set("x > 0.3 || x <= 0.3 && y > 0.2")
        estimates = []
        reported_variances = []
        for seed in range(15):
            result = quantify(cs, profile, QCoralConfig.strat_partcache(2000, seed=seed))
            estimates.append(result.mean)
            reported_variances.append(result.variance)
        empirical_variance = float(np.var(estimates, ddof=1))
        # The reported value is an upper bound in expectation; allow generous
        # statistical slack since both sides are noisy.
        assert empirical_variance <= 10 * max(reported_variances) + 1e-6
