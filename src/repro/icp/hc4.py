"""HC4-revise: forward interval evaluation and backward constraint projection.

The HC4 algorithm (Benhamou et al.) contracts a box with respect to a single
constraint in two sweeps over the expression tree:

* the **forward** sweep computes an interval enclosure for every node given
  the current variable domains;
* the **backward** sweep pushes the constraint's feasible output range back
  down the tree, narrowing the node enclosures and ultimately the variable
  domains.

Every projection implemented here is *conservative*: when the exact inverse
image is expensive to compute (periodic functions, ``atan2``, ``min``/``max``)
the projection simply leaves the operand enclosure unchanged, which never
removes a solution.  This matches the paper's soundness requirement — the
union of reported boxes must contain all solutions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ICPError
from repro.intervals.box import Box
from repro.intervals.functions import (
    apply_function,
    integer_power,
    interval_exp,
    interval_log,
    interval_tan,
)
from repro.intervals.interval import EMPTY, ENTIRE, Interval
from repro.lang import ast

#: Feasible range of ``left - right`` for each comparison operator.  Strict and
#: non-strict inequalities share the same closed range: the boundary has zero
#: measure, and including it keeps the enclosure sound.
_RELATION_RANGES: Dict[str, Interval] = {
    "<=": Interval(-math.inf, 0.0),
    "<": Interval(-math.inf, 0.0),
    ">=": Interval(0.0, math.inf),
    ">": Interval(0.0, math.inf),
    "==": Interval(0.0, 0.0),
    "!=": ENTIRE,
}


@dataclass
class _Node:
    """Mutable evaluation-tree node used by the two HC4 sweeps."""

    expression: ast.Expression
    children: List["_Node"] = field(default_factory=list)
    value: Interval = ENTIRE


def relation_range(operator: str) -> Interval:
    """Feasible interval of ``left - right`` for a comparison operator."""
    try:
        return _RELATION_RANGES[operator]
    except KeyError as exc:
        raise ICPError(f"unsupported comparison operator {operator!r}") from exc


# --------------------------------------------------------------------------- #
# Forward sweep
# --------------------------------------------------------------------------- #
def _build_tree(expression: ast.Expression) -> _Node:
    return _Node(expression, [_build_tree(child) for child in expression.children()])


def _forward(node: _Node, box: Box) -> Interval:
    expression = node.expression
    for child in node.children:
        _forward(child, box)

    if isinstance(expression, ast.Constant):
        node.value = Interval.point(expression.value)
    elif isinstance(expression, ast.Variable):
        node.value = box.interval(expression.name) if expression.name in box else ENTIRE
    elif isinstance(expression, ast.UnaryOp):
        node.value = -node.children[0].value
    elif isinstance(expression, ast.BinaryOp):
        left = node.children[0].value
        right = node.children[1].value
        if expression.operator == "*" and _is_square(expression):
            # ``e * e`` is a square: the tight enclosure avoids the spurious
            # negative range of the generic product rule.
            node.value = left.sqr()
        else:
            node.value = _forward_binary(expression.operator, left, right)
    elif isinstance(expression, ast.FunctionCall):
        arguments = [child.value for child in node.children]
        node.value = apply_function(expression.name, arguments)
    else:  # pragma: no cover - defensive
        raise ICPError(f"cannot evaluate node of type {type(expression).__name__}")
    return node.value


def _forward_binary(operator: str, left: Interval, right: Interval) -> Interval:
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        return left / right
    raise ICPError(f"unknown binary operator {operator!r}")


def evaluate_interval(expression: ast.Expression, box: Box) -> Interval:
    """Interval enclosure of ``expression`` over ``box`` (forward sweep only)."""
    tree = _build_tree(expression)
    return _forward(tree, box)


def constraint_range(constraint: ast.Constraint, box: Box) -> Interval:
    """Interval enclosure of ``left - right`` for a constraint over ``box``."""
    difference = ast.BinaryOp("-", constraint.left, constraint.right)
    return evaluate_interval(difference, box)


#: Tolerance used when classifying a box as certainly satisfying a constraint.
#: The outward rounding of interval arithmetic can push an exact boundary a few
#: ULPs past zero; since the boundary itself has measure zero, absorbing that
#: slack keeps "inner" classification useful without affecting soundness of the
#: probability estimate beyond floating-point noise.
_CERTAINTY_TOLERANCE = 1e-12


def constraint_certainly_holds(constraint: ast.Constraint, box: Box, strict_boundaries: bool = False) -> bool:
    """True when every point of ``box`` satisfies ``constraint``.

    Used to classify paving boxes as *inner* (tight) boxes: sampling inside an
    inner box is unnecessary because the hit ratio is exactly one.

    The default mode grants the strict operators ``<`` and ``>`` the same
    floating-point boundary slack as their non-strict counterparts: under a
    continuous profile the boundary set has probability zero, so a box that
    touches it is still "inner up to measure zero".  That argument breaks for
    integer-supported profiles — an atom sitting exactly on the boundary of a
    strict inequality carries positive mass but does *not* satisfy it — so
    callers classifying boxes over discrete variables must pass
    ``strict_boundaries=True``, which requires the whole enclosure to clear
    the boundary with no slack (boundary-touching boxes stay undecided and
    get sampled, which is unbiased).
    """
    value = constraint_range(constraint, box)
    if value.is_empty():
        return False
    slack = _CERTAINTY_TOLERANCE * max(1.0, value.magnitude())
    if constraint.operator == "<":
        return value.hi < 0.0 if strict_boundaries else value.hi <= slack
    if constraint.operator == ">":
        return value.lo > 0.0 if strict_boundaries else value.lo >= -slack
    if constraint.operator == "<=":
        return value.hi <= slack
    if constraint.operator == ">=":
        return value.lo >= -slack
    if constraint.operator == "==":
        return value.magnitude() <= slack
    if constraint.operator == "!=":
        return not value.contains(0.0)
    raise ICPError(f"unsupported comparison operator {constraint.operator!r}")


def constraint_certainly_fails(constraint: ast.Constraint, box: Box) -> bool:
    """True when no point of ``box`` satisfies ``constraint``."""
    value = constraint_range(constraint, box)
    if value.is_empty():
        return True
    feasible = relation_range(constraint.operator)
    return value.intersect(feasible).is_empty()


# --------------------------------------------------------------------------- #
# Backward sweep
# --------------------------------------------------------------------------- #
def hc4_revise(constraint: ast.Constraint, box: Box) -> Optional[Box]:
    """Contract ``box`` with respect to one constraint.

    Returns the contracted box, or ``None`` when the constraint is certainly
    unsatisfiable over ``box``.
    """
    difference = ast.BinaryOp("-", constraint.left, constraint.right)
    tree = _build_tree(difference)
    value = _forward(tree, box)
    feasible = value.intersect(relation_range(constraint.operator))
    if feasible.is_empty():
        return None

    domains: Dict[str, Interval] = {name: iv for name, iv in box.items()}
    if not _backward(tree, feasible, domains):
        return None
    return Box(domains)


def _backward(node: _Node, projected: Interval, domains: Dict[str, Interval]) -> bool:
    """Push ``projected`` (the feasible range of ``node``) down the tree.

    Returns False as soon as some variable domain becomes empty.
    """
    value = node.value.intersect(projected)
    if value.is_empty():
        return False
    node.value = value
    expression = node.expression

    if isinstance(expression, ast.Constant):
        return True

    if isinstance(expression, ast.Variable):
        name = expression.name
        if name in domains:
            narrowed = domains[name].intersect(value)
            if narrowed.is_empty():
                return False
            domains[name] = narrowed
        return True

    if isinstance(expression, ast.UnaryOp):
        return _backward(node.children[0], -value, domains)

    if isinstance(expression, ast.BinaryOp):
        return _backward_binary(expression.operator, node, value, domains)

    if isinstance(expression, ast.FunctionCall):
        return _backward_function(expression.name, node, value, domains)

    raise ICPError(f"cannot project node of type {type(expression).__name__}")  # pragma: no cover


def _is_square(expression: ast.BinaryOp) -> bool:
    """True for products of the form ``e * e`` (syntactically identical factors)."""
    return expression.left.canonical() == expression.right.canonical()


def _backward_binary(operator: str, node: _Node, value: Interval, domains: Dict[str, Interval]) -> bool:
    left_node, right_node = node.children
    left, right = left_node.value, right_node.value

    if operator == "*" and _is_square(node.expression):
        # Invert the square: |e| <= sqrt(max feasible value).
        feasible = value.intersect(Interval(0.0, math.inf))
        if feasible.is_empty():
            return False
        if math.isfinite(feasible.hi):
            root = math.sqrt(feasible.hi) * (1.0 + 1e-12)
            bound = Interval(-root, root)
        else:
            bound = ENTIRE
        return _backward(left_node, left.intersect(bound), domains) and _backward(
            right_node, right.intersect(bound), domains
        )

    if operator == "+":
        new_left = value - right
        new_right = value - left
    elif operator == "-":
        new_left = value + right
        new_right = left - value
    elif operator == "*":
        new_left = _project_factor(value, right, left)
        new_right = _project_factor(value, left, right)
    elif operator == "/":
        new_left = value * right
        new_right = _project_factor(left, value, right)
    else:  # pragma: no cover - defensive
        raise ICPError(f"unknown binary operator {operator!r}")

    return _backward(left_node, new_left, domains) and _backward(right_node, new_right, domains)


def _project_factor(product: Interval, other: Interval, current: Interval) -> Interval:
    """Feasible values of one factor given the product and the other factor.

    When the other factor straddles zero, exact projection would require a
    union of two intervals; returning the current enclosure keeps the
    contraction conservative.
    """
    if other.contains(0.0):
        return current
    return product / other


def _backward_function(name: str, node: _Node, value: Interval, domains: Dict[str, Interval]) -> bool:
    children = node.children

    if name == "sqrt":
        argument = value.intersect(Interval(0.0, math.inf)).sqr()
        return _backward(children[0], argument.hull(Interval.point(0.0)) if argument.is_empty() else argument, domains)
    if name == "exp":
        return _backward(children[0], interval_log(value), domains)
    if name == "log":
        return _backward(children[0], interval_exp(value), domains)
    if name == "abs":
        bound = value.intersect(Interval(0.0, math.inf))
        if bound.is_empty():
            return False
        return _backward(children[0], Interval(-bound.hi, bound.hi), domains)
    if name == "atan":
        clipped = value.intersect(Interval(-math.pi / 2, math.pi / 2))
        if clipped.is_empty():
            return False
        return _backward(children[0], interval_tan(clipped), domains)
    if name == "tanh":
        clipped = value.intersect(Interval(-1.0, 1.0))
        if clipped.is_empty():
            return False
        return _backward(children[0], children[0].value, domains)
    if name in ("sin", "cos"):
        feasible_output = value.intersect(Interval(-1.0, 1.0))
        if feasible_output.is_empty():
            return False
        return _backward(children[0], children[0].value, domains)
    if name == "pow":
        return _backward_pow(node, value, domains)
    if name in ("asin", "acos", "tan", "sinh", "cosh", "log10", "atan2", "min", "max"):
        # Conservative: keep the operand enclosures unchanged.
        return all(_backward(child, child.value, domains) for child in children)

    # Unknown functions never prune.
    return all(_backward(child, child.value, domains) for child in children)


def _backward_pow(node: _Node, value: Interval, domains: Dict[str, Interval]) -> bool:
    base_node, exponent_node = node.children
    exponent = exponent_node.expression
    if isinstance(exponent, ast.Constant) and float(exponent.value).is_integer():
        power = int(exponent.value)
        projected = _invert_integer_power(value, base_node.value, power)
        return _backward(base_node, projected, domains) and _backward(exponent_node, exponent_node.value, domains)
    # Non-integer exponents: no pruning of the base, only of the sign domain.
    return _backward(base_node, base_node.value, domains) and _backward(exponent_node, exponent_node.value, domains)


def _invert_integer_power(value: Interval, base: Interval, power: int) -> Interval:
    """Enclosure of the bases whose ``power``-th power lies in ``value``."""
    if power == 0:
        return base
    if value.is_empty():
        return EMPTY
    if power > 0 and power % 2 == 0:
        upper = value.intersect(Interval(0.0, math.inf))
        if upper.is_empty():
            return EMPTY
        root = upper.hi ** (1.0 / power) if math.isfinite(upper.hi) else math.inf
        return base.intersect(Interval(-root, root))
    if power > 0:
        lo = _signed_root(value.lo, power)
        hi = _signed_root(value.hi, power)
        return base.intersect(Interval(lo, hi))
    # Negative powers: give up on pruning, stay conservative.
    return base


def _signed_root(value: float, power: int) -> float:
    """Real ``power``-th root of ``value`` for odd ``power`` (sign preserving)."""
    if value == math.inf or value == -math.inf:
        return value
    magnitude = abs(value) ** (1.0 / power)
    return math.copysign(magnitude, value)
