"""Configuration of the interval-constraint-propagation solver.

The defaults mirror the RealPaver configuration reported in the paper
(Section 5): at most 10 boxes per query, a precision of 3 decimal digits for
the smallest reported box, and a 2-second budget per query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ICPConfig:
    """Knobs of the branch-and-prune paving solver.

    Attributes:
        max_boxes: Upper bound on the number of boxes reported per query
            (paper: 10).
        precision: Absolute width below which a box dimension is no longer
            split; the paper's "3 decimal digits" corresponds to ``1e-3``.
        time_budget: Wall-clock budget per query, in seconds (paper: 2 s).
        max_contractor_iterations: Fixpoint iterations of the HC4 contractor
            per box before giving up on further pruning.
        contraction_tolerance: Minimum relative width reduction for the
            contractor fixpoint loop to keep iterating.
    """

    max_boxes: int = 10
    precision: float = 1e-3
    time_budget: float = 2.0
    max_contractor_iterations: int = 50
    contraction_tolerance: float = 1e-4

    def __post_init__(self) -> None:
        if self.max_boxes < 1:
            raise ConfigurationError("max_boxes must be at least 1")
        if self.precision <= 0:
            raise ConfigurationError("precision must be positive")
        if self.time_budget <= 0:
            raise ConfigurationError("time_budget must be positive")
        if self.max_contractor_iterations < 1:
            raise ConfigurationError("max_contractor_iterations must be at least 1")
        if self.contraction_tolerance < 0:
            raise ConfigurationError("contraction_tolerance must be non-negative")


#: Configuration used throughout the paper's experiments.
PAPER_CONFIG = ICPConfig()
