"""Interval constraint propagation: HC4 contractors and branch-and-prune paving."""

from repro.icp.config import ICPConfig, PAPER_CONFIG
from repro.icp.contractor import contract
from repro.icp.hc4 import (
    constraint_certainly_fails,
    constraint_certainly_holds,
    constraint_range,
    evaluate_interval,
    hc4_revise,
)
from repro.icp.solver import ICPSolver, PavedBox, Paving, pave

__all__ = [
    "ICPConfig",
    "PAPER_CONFIG",
    "contract",
    "hc4_revise",
    "evaluate_interval",
    "constraint_range",
    "constraint_certainly_holds",
    "constraint_certainly_fails",
    "ICPSolver",
    "Paving",
    "PavedBox",
    "pave",
]
