"""Constraint-set contraction: fixpoint iteration of HC4-revise.

The contractor narrows a box against *all* conjuncts of a path condition,
repeating the sweep until either the box stops shrinking appreciably or the
configured iteration budget is exhausted.  The result is always a box that
contains every solution of the conjunction lying in the input box (or ``None``
when the conjunction is certainly unsatisfiable there).
"""

from __future__ import annotations

from typing import Optional

from repro.icp.config import ICPConfig, PAPER_CONFIG
from repro.icp.hc4 import hc4_revise
from repro.intervals.box import Box
from repro.lang import ast


def contract(pc: ast.PathCondition, box: Box, config: ICPConfig = PAPER_CONFIG) -> Optional[Box]:
    """Contract ``box`` with respect to every conjunct of ``pc``.

    Returns the narrowed box, or ``None`` when some conjunct is certainly
    unsatisfiable over the box (the conjunction has no solution there).
    """
    if box.is_empty():
        return None
    current = box
    for _ in range(config.max_contractor_iterations):
        previous = current
        for constraint in pc.constraints:
            narrowed = hc4_revise(constraint, current)
            if narrowed is None:
                return None
            current = narrowed
        if not _made_progress(previous, current, config.contraction_tolerance):
            break
    return current


def _made_progress(before: Box, after: Box, tolerance: float) -> bool:
    """True when at least one dimension shrank by more than ``tolerance`` (relative)."""
    for name, old_interval in before.items():
        new_interval = after.interval(name)
        old_width = old_interval.width()
        if old_width == 0.0:
            continue
        reduction = (old_width - new_interval.width()) / old_width
        if reduction > tolerance:
            return True
    return False
