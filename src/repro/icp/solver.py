"""Branch-and-prune paving: the RealPaver substitute.

Given a conjunction of constraints and a bounded domain box, the solver
produces a :class:`Paving` — a set of non-overlapping boxes whose union
contains every solution of the conjunction inside the domain.  Boxes are
classified as *inner* (every point is a solution; RealPaver's "tight" boxes)
or *boundary* (may contain both solutions and non-solutions; "loose" boxes).

The search alternates HC4 contraction with bisection of the widest box
dimension, and stops when any of the paper's RealPaver stop criteria is met:
box-count budget, precision (minimum box width), or time budget.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import DomainError
from repro.icp.config import ICPConfig, PAPER_CONFIG
from repro.icp.contractor import contract
from repro.icp.hc4 import constraint_certainly_holds
from repro.intervals.box import Box
from repro.lang import ast


@dataclass(frozen=True)
class PavedBox:
    """One box of a paving, with its inner/boundary classification."""

    box: Box
    inner: bool

    def volume(self) -> float:
        """Volume of the underlying box."""
        return self.box.volume()


@dataclass(frozen=True)
class Paving:
    """Result of a paving query: boxes covering all solutions within ``domain``.

    ``boxes_explored`` and ``contraction_passes`` are solver-effort counters
    (heap pops and HC4 contraction calls); trivial pavings report zero.
    """

    domain: Box
    boxes: Tuple[PavedBox, ...]
    boxes_explored: int = 0
    contraction_passes: int = 0

    def is_unsatisfiable(self) -> bool:
        """True when the paving proves the constraints have no solution."""
        return not self.boxes

    def covered_volume(self) -> float:
        """Total volume of the reported boxes."""
        return sum(paved.volume() for paved in self.boxes)

    def inner_volume(self) -> float:
        """Total volume of the boxes proven to contain only solutions."""
        return sum(paved.volume() for paved in self.boxes if paved.inner)

    def covered_fraction(self) -> float:
        """Covered volume relative to the domain volume (in [0, 1])."""
        domain_volume = self.domain.volume()
        if domain_volume == 0.0:
            return 0.0
        return min(1.0, self.covered_volume() / domain_volume)

    def __len__(self) -> int:
        return len(self.boxes)

    def __iter__(self):
        return iter(self.boxes)


class ICPSolver:
    """Interval-constraint-propagation paving solver (RealPaver substitute)."""

    def __init__(self, config: ICPConfig = PAPER_CONFIG) -> None:
        self._config = config

    @property
    def config(self) -> ICPConfig:
        """The solver configuration in use."""
        return self._config

    def pave(
        self,
        pc: ast.PathCondition,
        domain: Box,
        integer_variables: Sequence[str] = (),
    ) -> Paving:
        """Compute a paving of the solutions of ``pc`` within ``domain``.

        The domain must cover every free variable of ``pc`` with a bounded
        interval.  When the conjunction is empty (trivially true) the whole
        domain is returned as a single inner box.

        ``integer_variables`` names dimensions whose variables only take
        integer values (discrete usage-profile distributions): those are bisected
        on half-integer boundaries only — a split at an integer coordinate would
        leave the atom inside *both* closed sibling boxes, double-counting its
        probability mass in the stratified combination — and are considered
        unsplittable once they hold fewer than two atoms.
        """
        self._check_domain(pc, domain)
        if not pc.constraints:
            return Paving(domain, (PavedBox(domain, inner=True),))

        integers = frozenset(integer_variables)
        deadline = time.monotonic() + self._config.time_budget
        contraction_passes = 1
        boxes_explored = 0

        initial = contract(pc, domain, self._config)
        if initial is None:
            return Paving(domain, (), boxes_explored=0, contraction_passes=contraction_passes)

        # Best-first branch and prune: always refine the largest undecided box,
        # which yields the balanced pavings RealPaver reports and keeps stratum
        # weights comparable when the box budget is small.
        finished: List[PavedBox] = []
        counter = itertools.count()
        pending: List[Tuple[float, int, Box]] = []
        heapq.heappush(pending, (-initial.volume(), next(counter), initial))

        # Strict-inequality boundaries carry probability mass when any
        # variable is integer-supported, so inner certification must not use
        # the continuous measure-zero boundary slack there.
        strict = bool(integers)

        while pending:
            budget_left = self._config.max_boxes - len(finished) - len(pending)
            out_of_time = time.monotonic() >= deadline

            _, _, box = heapq.heappop(pending)
            boxes_explored += 1
            inner = self._is_inner(pc, box, strict)
            too_small = box.max_width() <= self._config.precision

            if inner or too_small or budget_left <= 0 or out_of_time:
                finished.append(PavedBox(box, inner=inner))
                continue

            halves = self._split_box(box, integers)
            if halves is None:
                finished.append(PavedBox(box, inner=inner))
                continue
            for half in halves:
                contraction_passes += 1
                contracted = contract(pc, half, self._config)
                if contracted is not None:
                    heapq.heappush(pending, (-contracted.volume(), next(counter), contracted))

        return Paving(domain, tuple(finished), boxes_explored=boxes_explored, contraction_passes=contraction_passes)

    def _split_box(self, box: Box, integers: frozenset) -> Optional[Tuple[Box, Box]]:
        """Bisect the widest splittable dimension (half-integer cuts on integer dims).

        Returns None when no dimension can be split — every integer dimension
        holds at most one atom and every continuous dimension is a point — in
        which case the box is final.  Without integer dimensions this is
        exactly :meth:`Box.split` on the widest variable.
        """
        if not integers:
            return box.split()
        names = sorted(box.variables, key=lambda name: box.interval(name).width(), reverse=True)
        for name in names:
            interval = box.interval(name)
            if name in integers:
                first_atom = math.ceil(interval.lo)
                last_atom = math.floor(interval.hi)
                if last_atom - first_atom < 1:
                    continue
                at = (first_atom + last_atom) // 2 + 0.5
            else:
                if interval.width() <= 0.0:
                    continue
                at = interval.midpoint()
            if not interval.lo < at < interval.hi:
                continue
            return box.split(name, at)
        return None

    def _is_inner(self, pc: ast.PathCondition, box: Box, strict_boundaries: bool = False) -> bool:
        """True when every constraint certainly holds over the whole box."""
        return all(constraint_certainly_holds(constraint, box, strict_boundaries) for constraint in pc.constraints)

    def _check_domain(self, pc: ast.PathCondition, domain: Box) -> None:
        missing = sorted(pc.free_variables() - set(domain.variables))
        if missing:
            raise DomainError(f"domain does not cover variables {missing}")
        for name in pc.free_variables():
            if not domain.interval(name).is_bounded():
                raise DomainError(f"domain of variable {name!r} must be bounded for paving")


def pave(pc: ast.PathCondition, domain: Box, config: ICPConfig = PAPER_CONFIG) -> Paving:
    """Convenience wrapper: pave ``pc`` over ``domain`` with a fresh solver."""
    return ICPSolver(config).pave(pc, domain)
