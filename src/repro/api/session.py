"""The :class:`Session`: single entry point of the public quantification API.

A session owns the expensive, shareable resources — an executor pool and a
persistent estimate store — exactly once.  Every query built from the session
borrows them, so ten analyses share one warm worker pool and one store handle
instead of paying ten start-up costs; closing the session (it is a context
manager, and ``close`` is idempotent) releases owned resources exactly once
and never touches instances the caller passed in.

Typical use::

    from repro import Session

    with Session(executor="process", workers=4, store="estimates.db") as session:
        report = (
            session.quantify("x*x + y*y <= 1", {"x": (-1, 1), "y": (-1, 1)})
            .with_budget(100_000)
            .until(std=1e-3)
            .run()
        )
        program_report = session.analyze(source, "callSupervisor").run()

Both query shapes — direct constraint sets and symbolically executed
programs — go through the same fluent :class:`~repro.api.query.Query`, stream
the same per-round results, and return the same unified
:class:`~repro.api.report.Report`.
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional, Union

from repro.api.query import Query, _ConstraintTarget, _ProgramTarget
from repro.core.profiles import Distribution, UniformDistribution, UsageProfile, parse_distribution_spec
from repro.core.qcoral import QCoralConfig
from repro.errors import ConfigurationError, ReproError
from repro.exec.executor import EXECUTOR_KINDS, Executor, make_executor
from repro.lang.ast import ConstraintSet
from repro.obs import Observability
from repro.obs.ledger import LEDGER_BACKENDS, RunLedger, open_ledger
from repro.lang.parser import parse_constraint_set
from repro.store.backends import STORE_BACKENDS, EstimateStore, open_store
from repro.symexec.ast import Program
from repro.symexec.parser import parse_program

#: What callers may pass wherever a usage profile is expected: a finished
#: profile, or a mapping of variable name → distribution / ``(lo, hi)``
#: uniform bounds / CLI-style distribution spec string.
ProfileLike = Union[UsageProfile, Mapping[str, object]]


def _coerce_profile(profile: Optional[ProfileLike]) -> Optional[UsageProfile]:
    if profile is None or isinstance(profile, UsageProfile):
        return profile
    if isinstance(profile, Mapping):
        distributions: dict = {}
        for name, spec in profile.items():
            if isinstance(spec, Distribution):
                distributions[name] = spec
            elif isinstance(spec, str):
                try:
                    distributions[name] = parse_distribution_spec(spec)
                except ReproError as error:
                    # Malformed spec strings (e.g. ``binomial:n:p`` with
                    # non-numeric parts) must surface as a configuration
                    # problem naming the variable — a clean 400 for the
                    # server, never a bare traceback.
                    raise ConfigurationError(f"cannot interpret profile entry {name}={spec!r}: {error}") from None
            elif isinstance(spec, (tuple, list)) and len(spec) == 2:
                try:
                    low, high = float(spec[0]), float(spec[1])
                except (TypeError, ValueError):
                    raise ConfigurationError(
                        f"cannot interpret profile entry {name}={spec!r}; a (lo, hi) pair must be numeric"
                    ) from None
                distributions[name] = UniformDistribution(low, high)
            else:
                raise ConfigurationError(
                    f"cannot interpret profile entry {name}={spec!r}; expected a Distribution, "
                    f"a (lo, hi) pair, or a distribution spec string"
                )
        return UsageProfile(distributions)
    raise ConfigurationError(f"cannot interpret {profile!r} as a usage profile")


class Session:
    """Owns executor + store lifecycles and builds :class:`Query` objects.

    Args:
        executor: Execution backend shared by every query of this session —
            a kind name from the executor registry (``"serial"``/``"thread"``/
            ``"process"``/anything registered) built lazily on first use and
            owned by the session, or an :class:`Executor` instance, which is
            *borrowed* and never closed here.  None keeps the in-thread
            single-stream sampling path.
        workers: Worker count for a kind-name ``executor`` (None = CPU count).
        store: Persistent estimate store shared by every query — a path
            (backend inferred, or named by ``store_backend``) opened lazily
            and owned by the session, or an :class:`EstimateStore` instance,
            which is borrowed.  None runs without cross-run reuse.
        store_backend: Store backend name from the store registry; with a
            None ``store`` path this opens the backend without a path (only
            meaningful for path-less backends such as ``memory``).
        store_readonly: Open the store read-only (reuse without write-back).
        defaults: Base :class:`QCoralConfig` every query starts from.
        observability: An :class:`~repro.obs.Observability` hub shared by
            every query of this session — *borrowed*, never flushed or reset
            here, so one hub can aggregate metrics across sessions.  None
            runs with observability disabled (the zero-overhead path); a
            query-level :meth:`~repro.api.query.Query.with_tracing` overrides
            this per query.
        ledger: Run ledger every finished query appends its provenance
            record to — a path (backend inferred, or named by
            ``ledger_backend``) opened lazily and owned by the session, or a
            :class:`~repro.obs.ledger.RunLedger` instance, which is borrowed.
            None records nothing; a query-level
            :meth:`~repro.api.query.Query.with_ledger` overrides this per
            query.
        ledger_backend: Ledger backend name (``memory``/``jsonl``/``sqlite``);
            with a None ``ledger`` path this opens the backend without a path
            (only meaningful for ``memory``).
    """

    def __init__(
        self,
        *,
        executor: Union[None, str, Executor] = None,
        workers: Optional[int] = None,
        store: Union[None, str, EstimateStore] = None,
        store_backend: Optional[str] = None,
        store_readonly: bool = False,
        defaults: Optional[QCoralConfig] = None,
        observability: Optional[Observability] = None,
        ledger: Union[None, str, RunLedger] = None,
        ledger_backend: Optional[str] = None,
    ) -> None:
        if observability is not None and not isinstance(observability, Observability):
            raise ConfigurationError(
                f"observability must be an Observability instance or None, not {type(observability).__name__}"
            )
        if workers is not None and not isinstance(executor, str):
            raise ConfigurationError("workers requires an executor kind name to apply to")
        if isinstance(executor, str) and executor not in EXECUTOR_KINDS:
            # Typos surface here, at the construction site, not at first use.
            raise ConfigurationError(f"unknown executor kind {executor!r}; expected one of {EXECUTOR_KINDS}")
        if isinstance(store, EstimateStore) and store_backend is not None:
            raise ConfigurationError("store_backend only applies when the store is given as a path")
        if store_backend is not None and store_backend not in STORE_BACKENDS:
            raise ConfigurationError(f"unknown store backend {store_backend!r}; expected one of {STORE_BACKENDS}")
        if store_readonly and store is None and store_backend is None:
            raise ConfigurationError("store_readonly requires a store path or backend")
        if isinstance(ledger, RunLedger) and ledger_backend is not None:
            raise ConfigurationError("ledger_backend only applies when the ledger is given as a path")
        if ledger_backend is not None and ledger_backend not in LEDGER_BACKENDS:
            raise ConfigurationError(f"unknown ledger backend {ledger_backend!r}; expected one of {LEDGER_BACKENDS}")
        self._defaults = defaults if defaults is not None else QCoralConfig()
        self._executor_spec = executor
        self._workers = workers
        self._store_spec = store
        self._store_backend = store_backend
        self._store_readonly = store_readonly
        self._executor: Optional[Executor] = executor if isinstance(executor, Executor) else None
        self._owns_executor = False
        self._store: Optional[EstimateStore] = store if isinstance(store, EstimateStore) else None
        self._owns_store = False
        self._observability = observability
        self._ledger_spec = ledger
        self._ledger_backend = ledger_backend
        self._ledger: Optional[RunLedger] = ledger if isinstance(ledger, RunLedger) else None
        self._owns_ledger = False
        self._closed = False
        # Guards the lazy executor/store creation: concurrent queries (e.g.
        # trials dispatched on a thread executor) must share one instance,
        # never race two into existence and leak the loser.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Owned resources (lazy, borrowed by every query)
    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> Optional[Executor]:
        """The session's executor backend (built lazily from a kind name)."""
        with self._lock:
            # _closed is checked under the same lock that guards creation and
            # close(), so a concurrent close() can never interleave with a
            # lazy creation and strand a live pool on a closed session.
            self._check_open()
            if self._executor is None and isinstance(self._executor_spec, str):
                self._executor = make_executor(self._executor_spec, self._workers)
                self._owns_executor = True
            return self._executor

    @property
    def store(self) -> Optional[EstimateStore]:
        """The session's estimate store (opened lazily from a path/backend)."""
        with self._lock:
            self._check_open()
            if self._store is None and (isinstance(self._store_spec, str) or self._store_backend is not None):
                self._store = open_store(
                    self._store_spec if isinstance(self._store_spec, str) else None,
                    self._store_backend,
                    readonly=self._store_readonly,
                )
                self._owns_store = True
            return self._store

    @property
    def ledger(self) -> Optional[RunLedger]:
        """The session's run ledger (opened lazily from a path/backend)."""
        with self._lock:
            self._check_open()
            if self._ledger is None and (isinstance(self._ledger_spec, str) or self._ledger_backend is not None):
                self._ledger = open_ledger(
                    self._ledger_spec if isinstance(self._ledger_spec, str) else None,
                    self._ledger_backend,
                )
                self._owns_ledger = True
            return self._ledger

    @property
    def defaults(self) -> QCoralConfig:
        """The base configuration every query of this session starts from."""
        return self._defaults

    @property
    def observability(self) -> Optional[Observability]:
        """The borrowed observability hub shared by every query (or None)."""
        return self._observability

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Release owned resources exactly once (idempotent, thread-safe).

        Executor/store instances passed to the constructor are borrowed and
        stay open for their owner, no matter how often this runs.  Taking the
        creation lock first means a lazy creation racing this close either
        completes (and its resource is closed here) or starts after the
        closed flag is set (and raises instead of creating).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor if self._owns_executor else None
            store = self._store if self._owns_store else None
            ledger = self._ledger if self._owns_ledger else None
        if executor is not None:
            executor.close()
        if store is not None:
            store.close()
        if ledger is not None:
            ledger.close()

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        executor = self._executor.describe() if self._executor is not None else self._executor_spec
        store = self._store.describe() if self._store is not None else self._store_spec
        return f"Session(executor={executor!r}, store={store!r}, closed={self._closed})"

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("this Session is closed; create a new one")

    # ------------------------------------------------------------------ #
    # Query builders
    # ------------------------------------------------------------------ #
    def quantify(
        self,
        constraints: Union[str, ConstraintSet],
        profile: Optional[ProfileLike] = None,
        *,
        config: Optional[QCoralConfig] = None,
    ) -> Query:
        """A query quantifying ``constraints`` directly under ``profile``.

        ``constraints`` is a :class:`ConstraintSet` or constraint-language
        text (parsed here, so syntax errors surface at build time).
        """
        self._check_open()
        constraint_set = parse_constraint_set(constraints) if isinstance(constraints, str) else constraints
        return Query(
            _session=self,
            _target=_ConstraintTarget(constraint_set),
            _profile=_coerce_profile(profile),
            _base=config if config is not None else self._defaults,
        )

    def analyze(
        self,
        program: Union[str, Program],
        event: str,
        profile: Optional[ProfileLike] = None,
        *,
        max_depth: int = 50,
        max_paths: int = 100_000,
        config: Optional[QCoralConfig] = None,
    ) -> Query:
        """A query analysing ``program`` end to end for ``event`` (Figure 1).

        With ``profile`` None the program's declared input bounds define a
        uniform profile, exactly like the legacy pipeline.
        """
        self._check_open()
        parsed = parse_program(program) if isinstance(program, str) else program
        return Query(
            _session=self,
            _target=_ProgramTarget(parsed, event, max_depth, max_paths),
            _profile=_coerce_profile(profile),
            _base=config if config is not None else self._defaults,
        )
