"""Public registration surface for the pluggable backend registries.

Three registries drive resolution end to end — estimation methods
(:data:`repro.core.methods.METHOD_REGISTRY`), executor backends
(:data:`repro.exec.executor.EXECUTOR_REGISTRY`), and estimate-store backends
(:data:`repro.store.backends.STORE_REGISTRY`).  Anything registered here is
immediately usable everywhere a name is accepted: ``QCoralConfig`` validation,
``Query.method()`` / ``Query.on()`` / ``Session(store_backend=...)``, and the
``qcoral`` CLI ``choices`` lists (register before ``build_parser()``).

Example — an executor backend lands without touching core code::

    from repro import register_executor

    class NoisySerial(SerialExecutor):
        kind = "noisy-serial"

    register_executor("noisy-serial", lambda workers=None: NoisySerial())
    Session(executor="noisy-serial")
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.methods import METHOD_REGISTRY, EstimationMethod, SamplerFactory
from repro.exec.executor import EXECUTOR_REGISTRY, Executor
from repro.store.backends import STORE_REGISTRY, EstimateStore
from repro.store.keys import stratified_method


def register_method(
    name: str,
    make_sampler: SamplerFactory,
    *,
    store_method: Optional[Callable[[object], str]] = None,
    requires_stratified: bool = True,
    adaptive: bool = False,
    feature: Optional[str] = None,
    replace: bool = False,
) -> EstimationMethod:
    """Register an estimation method under ``name``.

    ``make_sampler(factor, profile, rng, *, variables, solver, seed_stream,
    chunk_size, config)`` must build a resumable
    :class:`~repro.core.stratified.StratifiedSampler` (subclasses welcome).
    ``store_method`` maps a config to the persistent-store method tag; the
    default prefixes the stratified tag with the method name so a custom
    method's counts never pool with another method's (identical sampling
    semantics must opt in explicitly by sharing a tag).
    """
    def _default_store_method(config, _name: str = name) -> str:
        return f"{_name}+{stratified_method(config.icp)}"

    spec = EstimationMethod(
        name=name,
        make_sampler=make_sampler,
        store_method=store_method if store_method is not None else _default_store_method,
        requires_stratified=requires_stratified,
        adaptive=adaptive,
        feature=feature,
    )
    return METHOD_REGISTRY.register(name, spec, replace=replace)


def register_executor(
    name: str,
    factory: Callable[[Optional[int]], Executor],
    *,
    replace: bool = False,
) -> Callable[[Optional[int]], Executor]:
    """Register an executor backend: ``factory(workers) -> Executor``."""
    return EXECUTOR_REGISTRY.register(name, factory, replace=replace)


def register_store_backend(
    name: str,
    factory: Callable[..., EstimateStore],
    *,
    replace: bool = False,
) -> Callable[..., EstimateStore]:
    """Register a store backend: ``factory(path, readonly=...) -> EstimateStore``.

    Custom backends are reachable by explicit name (``Session(store=path,
    store_backend=name)``, ``--store-backend name``); path-suffix inference
    in :func:`repro.store.backends.open_store` stays limited to the builtins.
    """
    return STORE_REGISTRY.register(name, factory, replace=replace)


def unregister_method(name: str) -> EstimationMethod:
    """Remove a registered estimation method (plugin/test cleanup)."""
    return METHOD_REGISTRY.unregister(name)


def unregister_executor(name: str):
    """Remove a registered executor backend (plugin/test cleanup)."""
    return EXECUTOR_REGISTRY.unregister(name)


def unregister_store_backend(name: str):
    """Remove a registered store backend (plugin/test cleanup)."""
    return STORE_REGISTRY.unregister(name)
