"""The fluent, immutable :class:`Query` builder and its streaming results.

A :class:`Query` describes one analysis — what to quantify (a constraint set
or a program event), under which usage profile, with which estimation
settings — without running anything.  Every fluent method returns a **new**
query; the receiver is never mutated, so queries can be shared, specialised,
and re-run freely::

    base = session.quantify(cs, profile).with_budget(100_000)
    fast = base.method("importance").until(std=1e-4)
    report = fast.run()
    for round_report in fast.stream():      # same numbers, incrementally
        print(round_report.std)

Queries *compile* down to the engine's :class:`~repro.core.qcoral.QCoralConfig`
(:meth:`Query.compile`), so the facade adds no second configuration system —
and a fixed seed produces bit-identical results through the facade and through
the legacy entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Dict, Iterator, Optional, Tuple, Union

from repro.api.report import Report
from repro.core.estimate import Estimate
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig, RoundReport
from repro.errors import AnalysisError, ConfigurationError
from repro.lang.ast import ConstraintSet
from repro.obs import Observability
from repro.obs.ledger import LEDGER_BACKENDS, RunLedger, ledger_entry_for, open_ledger
from repro.symexec.ast import Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session builds queries)
    from repro.api.session import Session

#: QCoralConfig field names a query may override (anything else is a typo).
_CONFIG_FIELDS = frozenset(field.name for field in fields(QCoralConfig))


@dataclass(frozen=True)
class _ConstraintTarget:
    """A constraint set to quantify directly (the paper's microbenchmark mode)."""

    constraint_set: ConstraintSet


@dataclass(frozen=True)
class _ProgramTarget:
    """A program + target event to analyse end to end (paper Figure 1)."""

    program: Program
    event: str
    max_depth: int
    max_paths: int


class RoundStream(Iterator[RoundReport]):
    """Iterator over per-round reports with early-stop and a final report.

    Wraps the engine's round generator: iterating yields one
    :class:`~repro.core.qcoral.RoundReport` per adaptive round as it
    completes.  Call :meth:`stop` (or just stop iterating and read
    :attr:`report`) to end sampling early; the :attr:`report` property then
    finalises the analysis with the rounds drawn so far and returns the
    unified :class:`~repro.api.report.Report`.
    """

    def __init__(self, generator) -> None:
        self._generator = generator
        self._report: Optional[Report] = None
        self._started = False
        self._stop = False
        self._done = False
        self._failed = False

    def __iter__(self) -> "RoundStream":
        return self

    def __next__(self) -> RoundReport:
        if self._done:
            raise StopIteration
        try:
            if not self._started:
                self._started = True
                return next(self._generator)
            return self._generator.send(self._stop)
        except StopIteration as finished:
            self._done = True
            self._report = finished.value
            raise StopIteration from None
        except BaseException:
            # The engine failed mid-stream; remember it so a later .report
            # points at the real cause, not at close() semantics.
            self._done = True
            self._failed = True
            raise

    def stop(self) -> None:
        """Request an early stop: no further rounds are sampled."""
        self._stop = True

    def close(self) -> None:
        """Abandon the stream without building a report.

        Caches and the persistent store are still flushed with whatever was
        drawn (the engine finalises on ``GeneratorExit``); use :attr:`report`
        instead when the partial result is wanted.  Abandoning by simply
        dropping the stream flushes too, but only when the garbage collector
        gets to it — ``close()`` is the deterministic form.
        """
        self._done = True
        self._generator.close()

    @property
    def report(self) -> Report:
        """The final report; finalises (stopping early) if still streaming."""
        if not self._done:
            self._stop = True
            while not self._done:
                try:
                    next(self)
                except StopIteration:
                    break
        if self._report is None:
            if self._failed:
                raise AnalysisError(
                    "this stream already failed with an error before producing a result; "
                    "fix the underlying failure and re-run the query"
                )
            raise AnalysisError(
                "this stream was closed without building a result; read .report "
                "(or use run()) instead of close() when the partial report is wanted"
            )
        return self._report


@dataclass(frozen=True)
class Query:
    """An immutable, fluent description of one analysis.

    Build through :meth:`Session.quantify` or :meth:`Session.analyze`; refine
    with the fluent methods; execute with :meth:`run` (blocking),
    :meth:`stream` (incremental per-round results), or :meth:`repeat`
    (independent seeded trials).
    """

    _session: "Session"
    _target: Union[_ConstraintTarget, _ProgramTarget]
    _profile: Optional[object]
    _base: QCoralConfig
    _settings: Tuple[Tuple[str, Any], ...] = ()
    _tracing: bool = False
    _trace_path: Optional[str] = None
    _trace_sample_every: int = 1
    _ledger_path: Optional[str] = None
    _ledger_backend: Optional[str] = None
    _baseline: Optional[ConstraintSet] = None

    # ------------------------------------------------------------------ #
    # Fluent refinement (every method returns a NEW query)
    # ------------------------------------------------------------------ #
    def _with(self, **updates: Any) -> "Query":
        merged: Dict[str, Any] = dict(self._settings)
        merged.update(updates)
        return replace(self, _settings=tuple(sorted(merged.items())))

    def configure(self, **settings: Any) -> "Query":
        """Override any :class:`QCoralConfig` field by name (escape hatch)."""
        unknown = sorted(set(settings) - _CONFIG_FIELDS)
        if unknown:
            raise ConfigurationError(f"unknown configuration fields {unknown}; expected QCoralConfig fields")
        return self._with(**settings)

    def with_budget(self, samples: int) -> "Query":
        """Total sampling budget per estimated factor."""
        return self._with(samples_per_query=samples)

    def method(self, name: str) -> "Query":
        """Estimation method, resolved against the method registry at run time."""
        return self._with(method=name)

    def until(self, *, std: Optional[float] = None, rounds: Optional[int] = None) -> "Query":
        """Convergence criteria: a target standard deviation and/or a round cap.

        Note the engine contract inherited from :class:`QCoralConfig`: a
        ``std`` target with ``rounds`` left at (or set to) 1 is raised to
        :data:`~repro.core.qcoral.DEFAULT_ADAPTIVE_ROUNDS`, because a
        one-round run cannot adapt toward a target.  Pass ``rounds >= 2`` to
        cap the adaptive loop explicitly.
        """
        if std is None and rounds is None:
            raise ConfigurationError("until() needs a std= target, a rounds= cap, or both")
        updates: Dict[str, Any] = {}
        if std is not None:
            updates["target_std"] = std
        if rounds is not None:
            updates["max_rounds"] = rounds
        return self._with(**updates)

    def allocation(self, policy: str) -> "Query":
        """Per-stratum/per-factor budget split policy (``even``/``neyman``/``mass``)."""
        return self._with(allocation=policy)

    def seed(self, seed: Optional[int]) -> "Query":
        """Master random seed (None draws fresh entropy)."""
        return self._with(seed=seed)

    def features(
        self,
        *,
        stratified: Optional[bool] = None,
        partition_and_cache: Optional[bool] = None,
    ) -> "Query":
        """Toggle the paper's STRAT / PARTCACHE features."""
        updates: Dict[str, Any] = {}
        if stratified is not None:
            updates["stratified"] = stratified
        if partition_and_cache is not None:
            updates["partition_and_cache"] = partition_and_cache
        if not updates:
            raise ConfigurationError("features() needs stratified= and/or partition_and_cache=")
        return self._with(**updates)

    def on(self, executor: Optional[str], workers: Optional[int] = None) -> "Query":
        """Execution backend override for this query (registry-resolved).

        Overrides the session's executor; the backend this names is created
        for the run and shut down afterwards.
        """
        return self._with(executor=executor, workers=workers)

    def with_store(self, path: Optional[str], backend: Optional[str] = None, readonly: bool = False) -> "Query":
        """Persistent estimate store override for this query (registry-resolved)."""
        return self._with(store_path=path, store_backend=backend, store_readonly=readonly)

    def with_tracing(self, path: Optional[str] = None, *, sample_every: int = 1) -> "Query":
        """Enable observability for this query with a private hub.

        The run records the full metrics surface (exposed as
        :attr:`Report.metrics <repro.api.report.Report.metrics>`) and, with a
        ``path``, appends the tracing spans to it as JSONL when the run
        finishes — even on error.  ``sample_every`` keeps every N-th span per
        span name (deterministic counter-based sampling, so it never touches
        an RNG stream; fixed-seed estimates stay bit-identical at any rate).

        Overrides any session-level :class:`~repro.obs.Observability` hub for
        this query only.
        """
        if sample_every < 1:
            raise ConfigurationError(f"sample_every must be >= 1, not {sample_every}")
        return replace(self, _tracing=True, _trace_path=path, _trace_sample_every=sample_every)

    def with_ledger(self, path: Optional[str] = None, *, backend: Optional[str] = None) -> "Query":
        """Append this query's run record to a run ledger when it finishes.

        The ledger (see :mod:`repro.obs.ledger`) receives one provenance
        entry per completed run — the full report payload (metrics snapshot
        and diagnostics included) keyed by the constraint family's canonical
        factor digests — which ``qcoral obs diff`` / ``history`` analyse
        across runs.  The backend is inferred from the path like
        :meth:`with_store` (``*.jsonl`` → JSONL, else SQLite) unless named
        explicitly.  Overrides any session-level ledger for this query;
        abandoned streams (``close()`` without reading a report) record
        nothing.
        """
        if path is None and backend is None:
            raise ConfigurationError("with_ledger() needs a path, a backend name, or both")
        if backend is not None and backend not in LEDGER_BACKENDS:
            raise ConfigurationError(f"unknown ledger backend {backend!r}; expected one of {LEDGER_BACKENDS}")
        return replace(self, _ledger_path=path, _ledger_backend=backend)

    def against_baseline(self, baseline: Union[str, ConstraintSet]) -> "Query":
        """Run this query *incrementally* against a previous version.

        ``baseline`` is the constraint set of the program version last
        quantified (text or parsed).  Before sampling, the run diffs the two
        versions through the store's canonical factor keys
        (:mod:`repro.incremental`): factors the diff proves unchanged reuse
        stored estimates outright — zero samples, exactly like a warm store
        freeze — and the budget concentrates on the changed residual.  The
        finished report carries a ``REUSE_SUMMARY`` diagnostic (factors
        reused, samples saved, residual budget), which the run ledger records
        too.

        Only constraint-set queries support a baseline; incremental reuse
        also needs the PARTCACHE feature (it is what gives factors canonical
        keys), which is validated at run time.  Without an attached store
        the diff still runs and the summary reports an all-cold plan.
        """
        if not isinstance(self._target, _ConstraintTarget):
            raise ConfigurationError(
                "against_baseline() applies to constraint-set queries (Session.quantify); "
                "symbolically execute both program versions and diff their constraint sets instead"
            )
        from repro.lang.parser import parse_constraint_set

        parsed = parse_constraint_set(baseline) if isinstance(baseline, str) else baseline
        return replace(self, _baseline=parsed)

    def reuse_plan(self):
        """Project the incremental budget without running the query.

        Diffs the baseline (set with :meth:`against_baseline`) against this
        query's constraint set and folds in the store's per-factor coverage;
        returns the :class:`~repro.incremental.plan.ReusePlan` the run would
        execute.  A store named by this query (``with_store``) is opened
        read-only for the lookup and closed again.
        """
        config = self.compile()
        diff = self._baseline_diff(config)
        session = self._session
        session._check_open()
        settings = dict(self._settings)
        owned = None
        if "store_path" in settings or "store_backend" in settings or config.wants_store:
            from repro.store.backends import open_store

            owned = open_store(config.store_path, config.store_backend, readonly=True)
            store = owned
        else:
            store = session.store
        try:
            from repro.incremental.plan import plan_reuse

            return plan_reuse(diff, store, config.samples_per_query)
        finally:
            if owned is not None:
                owned.close()

    def _baseline_diff(self, config: QCoralConfig):
        """The constraint-set diff of this query's baseline vs its target."""
        if self._baseline is None:
            raise ConfigurationError("no baseline set; call against_baseline() first")
        if not isinstance(self._target, _ConstraintTarget):
            raise ConfigurationError("incremental runs need a constraint-set target")
        if self._profile is None:
            raise ConfigurationError(
                "incremental quantification needs a usage profile "
                "(pass one to Session.quantify, e.g. {'x': (-1, 1)})"
            )
        if not config.partition_and_cache:
            raise ConfigurationError(
                "incremental quantification needs the PARTCACHE feature: "
                "factor reuse keys on the canonical factors it produces"
            )
        from repro.incremental.diff import diff_constraint_sets

        return diff_constraint_sets(
            self._baseline,
            self._target.constraint_set,
            self._profile,
            config=config,
            simplify=config.simplify,
        )

    # ------------------------------------------------------------------ #
    # Compilation and execution
    # ------------------------------------------------------------------ #
    def compile(self) -> QCoralConfig:
        """The :class:`QCoralConfig` this query resolves to."""
        overrides = dict(self._settings)
        if not overrides:
            return self._base
        return replace(self._base, **overrides)

    def run(self) -> Report:
        """Execute the query to completion and return the unified report."""
        stream = self.stream()
        for _ in stream:
            pass
        return stream.report

    def stream(self) -> RoundStream:
        """Execute incrementally: a :class:`RoundStream` of per-round reports.

        Yields the same per-round numbers a blocking :meth:`run` produces for
        the same seed (both drain one engine generator); stop iterating early
        to cut the sampling short and read ``.report`` for the partial result.
        """
        return RoundStream(self._execute())

    def repeat(self, runs: int = 30, base_seed: int = 0, executor: Optional[object] = None) -> Report:
        """Run the query at ``runs`` independent spawned seeds and aggregate.

        Seeds come from :func:`repro.analysis.runner.trial_seeds`, so the
        trial estimates match the paper's repeated-execution protocol; the
        returned report has ``kind="repeated"`` with per-trial records in
        ``trials``.  ``executor`` optionally dispatches whole trials on an
        :class:`~repro.exec.executor.Executor` (trial order is preserved).
        """
        from repro.analysis.runner import repeat_query

        repeated = repeat_query(self, runs=runs, base_seed=base_seed, executor=executor)
        return Report.from_repeated(repeated, config=self.compile())

    # ------------------------------------------------------------------ #
    # The execution generator behind run()/stream()
    # ------------------------------------------------------------------ #
    def _execute(self):
        config = self.compile()
        session = self._session
        session._check_open()
        # Session-owned handles are borrowed only when neither the fluent
        # settings nor the base config ask for a specific backend; an explicit
        # request always wins, and the analyzer then creates/owns/closes the
        # requested backend itself.
        settings = dict(self._settings)
        executor = None
        if "executor" not in settings and "workers" not in settings and config.executor is None:
            executor = session.executor
        store = None
        if "store_path" not in settings and "store_backend" not in settings and not config.wants_store:
            store = session.store
        # A query-level with_tracing() hub wins over the session's borrowed
        # hub; it is owned by this execution, so its trace buffer is flushed
        # here (session hubs are flushed by whoever constructed them).
        observability = session.observability
        owned_obs: Optional[Observability] = None
        if self._tracing:
            owned_obs = Observability(trace_path=self._trace_path, trace_sample_every=self._trace_sample_every)
            observability = owned_obs

        if isinstance(self._target, _ConstraintTarget):
            if self._profile is None:
                raise ConfigurationError(
                    "quantifying a constraint set needs a usage profile "
                    "(pass one to Session.quantify, e.g. {'x': (-1, 1)})"
                )
            analyzer = QCoralAnalyzer(self._profile, config, executor=executor, store=store, observability=observability)
            try:
                # An incremental run plans its reuse before sampling: the
                # diff and the store-coverage projection are RNG-free, so
                # they cannot perturb the estimates (the bit-identity
                # contract of an all-changed diff vs a cold run rests on
                # exactly this).
                reuse = None
                if self._baseline is not None:
                    from repro.incremental.plan import plan_reuse

                    diff = self._baseline_diff(config)
                    reuse = (diff, plan_reuse(diff, analyzer.store, config.samples_per_query))
                result = yield from analyzer.analyze_stream(self._target.constraint_set)
            finally:
                analyzer.close()
                if owned_obs is not None:
                    owned_obs.flush_trace()
            report = Report.from_qcoral(result)
            if reuse is not None:
                from repro.incremental.plan import attach_reuse_summary

                report = attach_reuse_summary(report, reuse[0], reuse[1])
            self._record_run(report, self._profile)
            return report

        # Program target: bounded symbolic execution, then quantification of
        # the event's constraint set — streamed — and of the bound-hitting
        # paths (the paper's confidence measure) as a final blocking step.
        from repro.analysis.pipeline import (
            ProbabilisticAnalysisPipeline,
            bounded_probability_estimate,
            require_event,
        )

        target = self._target
        pipeline = ProbabilisticAnalysisPipeline(
            target.program,
            self._profile,  # None = uniform over the program's declared bounds
            config,
            max_depth=target.max_depth,
            max_paths=target.max_paths,
            executor=executor,
            store=store,
            observability=observability,
        )
        try:
            symbolic = pipeline.symbolic_execution()
            require_event(symbolic, target.event)
            analyzer = pipeline.analyzer()
            # Pump the event stream by hand (rather than `yield from`) so the
            # consumer's stop signal is visible here: a cancelled stream must
            # not fall through into a full-budget bounded-paths analysis.
            rounds = analyzer.analyze_stream(symbolic.constraint_set_for(target.event))
            stopped = False
            sent: Optional[bool] = None
            try:
                while True:
                    try:
                        report = rounds.send(sent)
                    except StopIteration as finished:
                        result = finished.value
                        break
                    sent = yield report
                    stopped = stopped or bool(sent)
            finally:
                # Closing an already-finished generator is a no-op; on
                # abandonment this triggers the engine's GeneratorExit flush.
                rounds.close()
            if stopped and symbolic.bounded_constraint_set().path_conditions:
                # The caller cancelled the run: the bound-hitting mass was
                # never quantified, and None says so (0.0 would claim an
                # exact confidence measure that was not computed).
                bounded: Optional[Estimate] = None
            else:
                bounded = bounded_probability_estimate(analyzer, symbolic)
        finally:
            pipeline.close()
            if owned_obs is not None:
                owned_obs.flush_trace()
        report = Report.from_qcoral(result, kind="program", event=target.event, bounded=bounded)
        self._record_run(report, pipeline.profile)
        return report

    def _record_run(self, report: Report, profile: Optional[object]) -> None:
        """Append one finished run's provenance record to the active ledger.

        A query-level :meth:`with_ledger` target is opened for the append and
        closed again (runs must not hold file handles between executions);
        otherwise the session's borrowed ledger — if any — receives the entry.
        """
        if self._ledger_path is not None or self._ledger_backend is not None:
            with open_ledger(self._ledger_path, self._ledger_backend) as ledger:
                ledger.append(ledger_entry_for(report, profile))
            return
        session_ledger: Optional[RunLedger] = self._session.ledger
        if session_ledger is not None:
            session_ledger.append(ledger_entry_for(report, profile))
