"""Session-centric public API of the qCORAL reproduction.

The one documented way in:

* :class:`Session` — owns executor + store lifecycles once, shared by every
  analysis; context-managed, close-idempotent.
* :class:`Query` — fluent, immutable builder over both direct constraint-set
  quantification and end-to-end program analysis; compiles to the engine's
  :class:`~repro.core.qcoral.QCoralConfig`.
* :class:`RoundStream` — incremental per-round results with early stop.
* :class:`Report` — the unified result type with a versioned JSON schema.
* ``register_method`` / ``register_executor`` / ``register_store_backend`` —
  the pluggable backend registries.

The historical entry points (``quantify``, ``ProbabilisticAnalysisPipeline``,
``repeat_quantification``) keep working as deprecated shims over the same
engine, with bit-identical fixed-seed results.
"""

from repro.api.query import Query, RoundStream
from repro.api.registry import (
    register_executor,
    register_method,
    register_store_backend,
    unregister_executor,
    unregister_method,
    unregister_store_backend,
)
from repro.api.report import SCHEMA_VERSION, Report
from repro.api.session import Session

__all__ = [
    "Session",
    "Query",
    "RoundStream",
    "Report",
    "SCHEMA_VERSION",
    "register_method",
    "register_executor",
    "register_store_backend",
    "unregister_method",
    "unregister_executor",
    "unregister_store_backend",
]
