"""The unified :class:`Report` result type with a versioned JSON schema.

One dataclass replaces the three divergent result surfaces that accreted over
the first PRs — :class:`~repro.core.qcoral.QCoralResult` (direct
quantification), :class:`~repro.analysis.pipeline.PipelineResult` (program
analysis), and :class:`~repro.analysis.runner.RepeatedResult` (repeated
trials).  The old types keep working as deprecated aliases behind the facade;
every new surface (``Session``/``Query``, ``qcoral ... --json``) speaks
:class:`Report`.

Serialisation contract
----------------------

``Report.to_dict()`` / ``to_json()`` emit a flat, stable schema stamped with
:data:`SCHEMA_VERSION`.  The rule for evolving it:

* **Adding** a key is backward compatible and does NOT bump the version.
* **Renaming, removing, or changing the meaning/type** of an existing key
  bumps :data:`SCHEMA_VERSION` and must update the golden file in
  ``tests/data/`` in the same change.

Consumers should ignore keys they do not know and check ``schema_version``
before relying on key semantics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.cache import CacheStatistics
from repro.core.estimate import Estimate
from repro.core.qcoral import QCoralConfig, QCoralResult, RoundReport
from repro.obs.diagnostics import Diagnostic
from repro.obs.metrics import MetricsSnapshot
from repro.store.backends import StoreStatistics

#: Version stamp of the ``to_dict()``/``to_json()`` schema (bump rule above).
#: Version 2 added the observability surface: a ``metrics`` block (the
#: run's :class:`~repro.obs.metrics.MetricsSnapshot`, None when observability
#: was disabled) and a ``store_stats`` block (persistent-store traffic
#: counters, None without a store).  Version 3 adds the run-health surface:
#: a ``diagnostics`` list of structured :class:`~repro.obs.diagnostics.Diagnostic`
#: records (severity, code, message, evidence) emitted at finalize.
SCHEMA_VERSION = 3


@dataclass(frozen=True)
class Report:
    """Unified outcome of any analysis run through the Session facade.

    ``kind`` says which shape of run produced it: ``"quantification"`` (a
    direct constraint-set query), ``"program"`` (symbolic execution followed
    by quantification of a target event; ``event`` and ``bounded`` are then
    set), or ``"repeated"`` (an aggregate over independent trials; ``trials``
    is then set and the estimate is the across-trial mean/empirical variance).
    """

    kind: str
    estimate: Estimate
    total_samples: int
    analysis_time: float
    paths: int = 0
    round_reports: Tuple[RoundReport, ...] = ()
    #: Per-path-condition detail (factor estimates, cache provenance).  An
    #: in-memory drill-down only — deliberately not part of the JSON schema.
    path_reports: Tuple[Any, ...] = ()
    feature_label: str = ""
    method: str = "hit-or-miss"
    seed: Optional[int] = None
    target_std: Optional[float] = None
    executor: Optional[str] = None
    store: Optional[str] = None
    cache_statistics: Optional[CacheStatistics] = None
    event: Optional[str] = None
    bounded: Optional[Estimate] = None
    trials: Optional[Tuple[Any, ...]] = None
    config: Optional[QCoralConfig] = None
    #: Metrics snapshot of the run (None when observability was disabled).
    metrics: Optional[MetricsSnapshot] = None
    #: Persistent-store traffic counters (None when no store was attached).
    store_statistics: Optional[StoreStatistics] = None
    #: Run-health diagnostics (:class:`~repro.obs.diagnostics.Diagnostic`)
    #: emitted at finalize; ``timing=False`` records are deterministic for a
    #: fixed seed, ``timing=True`` records exist only with observability on.
    diagnostics: Tuple[Diagnostic, ...] = ()

    # ------------------------------------------------------------------ #
    # Derived accessors (one vocabulary across all run kinds)
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        """Expected value of the probability estimator."""
        return self.estimate.mean

    @property
    def variance(self) -> float:
        """Variance (bound) of the probability estimator."""
        return self.estimate.variance

    @property
    def std(self) -> float:
        """Standard deviation of the probability estimator."""
        return self.estimate.std

    @property
    def rounds(self) -> int:
        """Number of adaptive sampling rounds executed."""
        return len(self.round_reports)

    @property
    def met_target(self) -> bool:
        """True when a convergence target was set and reached."""
        return self.target_std is not None and self.std <= self.target_std

    @property
    def confidence_note(self) -> str:
        """Human-readable statement of the bounded-path probability mass."""
        if self.bounded is None:
            return ""
        return f"probability mass of paths hitting the execution bound: {self.bounded.mean:.6f}"

    def __repr__(self) -> str:
        extra = f", event={self.event!r}" if self.event is not None else ""
        return (
            f"Report(kind={self.kind!r}, mean={self.mean:.6f}, std={self.std:.3e}, "
            f"samples={self.total_samples}, rounds={self.rounds}{extra})"
        )

    # ------------------------------------------------------------------ #
    # Construction from the legacy result types
    # ------------------------------------------------------------------ #
    @classmethod
    def from_qcoral(
        cls,
        result: QCoralResult,
        *,
        kind: str = "quantification",
        event: Optional[str] = None,
        bounded: Optional[Estimate] = None,
    ) -> "Report":
        """Build a report from a :class:`~repro.core.qcoral.QCoralResult`."""
        return cls(
            kind=kind,
            estimate=result.estimate,
            total_samples=result.total_samples,
            analysis_time=result.analysis_time,
            paths=len(result.path_reports),
            round_reports=result.round_reports,
            path_reports=result.path_reports,
            feature_label=result.config.feature_label(),
            method=result.config.method,
            seed=result.config.seed,
            target_std=result.config.target_std,
            executor=result.executor,
            store=result.store,
            cache_statistics=result.cache_statistics,
            event=event,
            bounded=bounded,
            config=result.config,
            metrics=result.metrics,
            store_statistics=result.store_statistics,
            diagnostics=result.diagnostics,
        )

    @classmethod
    def from_pipeline(cls, result) -> "Report":
        """Build a report from a :class:`~repro.analysis.pipeline.PipelineResult`."""
        return cls.from_qcoral(
            result.qcoral_result,
            kind="program",
            event=result.event,
            bounded=result.bounded_probability,
        )

    @classmethod
    def from_repeated(cls, repeated, *, config: Optional[QCoralConfig] = None) -> "Report":
        """Build a report from a :class:`~repro.analysis.runner.RepeatedResult`.

        The estimate carries the across-trial mean and the *empirical*
        variance (the paper's Table 2 "σ" squared); per-trial records are
        kept in :attr:`trials`.  ``config`` (the trials' shared base
        configuration) fills the method/features/target metadata; ``seed``
        stays None because every trial runs its own spawned seed.
        """
        outcomes = tuple(repeated.outcomes)
        return cls(
            kind="repeated",
            estimate=Estimate(repeated.mean_estimate, repeated.empirical_std**2),
            total_samples=sum(outcome.samples for outcome in outcomes),
            analysis_time=sum(outcome.elapsed for outcome in outcomes),
            feature_label=config.feature_label() if config is not None else "",
            method=config.method if config is not None else "hit-or-miss",
            target_std=config.target_std if config is not None else None,
            trials=outcomes,
            config=config,
        )

    # ------------------------------------------------------------------ #
    # Versioned serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """The versioned, JSON-ready rendering of this report."""
        cache = None
        if self.cache_statistics is not None:
            statistics = self.cache_statistics
            cache = {
                "lookups": statistics.lookups,
                "hits": statistics.hits,
                "misses": statistics.misses,
                "store_hits": statistics.store_hits,
                "store_misses": statistics.store_misses,
                "warm_starts": statistics.warm_starts,
                "store_publishes": statistics.store_publishes,
                "store_merges": statistics.store_merges,
            }
        store_stats = None
        if self.store_statistics is not None:
            stats = self.store_statistics
            store_stats = {
                "gets": stats.gets,
                "hits": stats.hits,
                "misses": stats.misses,
                "merges": stats.merges,
                "creates": stats.creates,
                "writes": stats.writes,
                "readonly_skips": stats.readonly_skips,
            }
        trials = None
        if self.trials is not None:
            trials = [
                {
                    "estimate": outcome.estimate,
                    "reported_std": outcome.reported_std,
                    "time": outcome.elapsed,
                    "samples": outcome.samples,
                    "rounds": outcome.rounds,
                }
                for outcome in self.trials
            ]
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "mean": self.mean,
            "std": self.std,
            "variance": self.variance,
            "samples": self.total_samples,
            "paths": self.paths,
            "time": self.analysis_time,
            "features": self.feature_label,
            "method": self.method,
            "seed": self.seed,
            "target_std": self.target_std,
            "met_target": self.met_target,
            "executor": self.executor,
            "store": self.store,
            "rounds": [
                {
                    "round": report.round_index,
                    "allocated": report.allocated,
                    "cumulative": report.total_samples,
                    "mean": report.mean,
                    "std": report.std,
                }
                for report in self.round_reports
            ],
            "cache": cache,
            "store_stats": store_stats,
            "metrics": (None if self.metrics is None else self.metrics.to_dict()),
            "diagnostics": [diagnostic.to_dict() for diagnostic in self.diagnostics],
            "event": self.event,
            "bounded": (None if self.bounded is None else {"mean": self.bounded.mean, "std": self.bounded.std}),
            "trials": trials,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON rendering of :meth:`to_dict` (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)
