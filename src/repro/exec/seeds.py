"""Deterministic sharded RNG streams for parallel sampling.

Reproducibility across executor backends and worker counts requires that the
random stream consumed by each unit of work depends only on the *plan* (which
chunk of which stratum of which factor) and never on *where or when* the chunk
happens to run.  :class:`SeedStream` provides exactly that: a thin wrapper
around :class:`numpy.random.SeedSequence` whose ``spawn`` mechanism derives an
unbounded tree of statistically independent child streams, with every child
identified by its position in the spawn order.

The contract the sampling stack relies on:

* the same master seed always yields the same sequence of children, so a plan
  that spawns seeds in a deterministic order reproduces bit-identically;
* children are independent no matter which worker consumes them, so merging
  per-chunk results in plan order gives the same estimate on a serial loop, a
  thread pool, or a process pool of any size.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, "SeedStream"]


class SeedStream:
    """A spawnable source of independent, reproducible NumPy generators."""

    __slots__ = ("_sequence",)

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, SeedStream):
            self._sequence = seed._sequence
        elif isinstance(seed, np.random.SeedSequence):
            self._sequence = seed
        else:
            self._sequence = np.random.SeedSequence(seed)

    @property
    def sequence(self) -> np.random.SeedSequence:
        """The underlying :class:`numpy.random.SeedSequence`."""
        return self._sequence

    @property
    def entropy(self):
        """The master entropy (the reproducibility key of the whole tree)."""
        return self._sequence.entropy

    @property
    def children_spawned(self) -> int:
        """How many children have been spawned from this stream so far."""
        return self._sequence.n_children_spawned

    # ------------------------------------------------------------------ #
    # Spawning
    # ------------------------------------------------------------------ #
    def spawn(self, count: int) -> List["SeedStream"]:
        """Spawn ``count`` independent child streams (advances the spawn key)."""
        if count < 0:
            raise ValueError("spawn count may not be negative")
        return [SeedStream(child) for child in self._sequence.spawn(count)]

    def spawn_sequence(self) -> np.random.SeedSequence:
        """Spawn one child and return it as a raw ``SeedSequence``.

        This is the unit handed to a :class:`~repro.exec.scheduler.SamplingTask`:
        ``SeedSequence`` pickles cheaply, so tasks can cross process
        boundaries and instantiate their generator worker-side.
        """
        return self._sequence.spawn(1)[0]

    def spawn_seeds(self, count: int) -> List[int]:
        """Spawn ``count`` children and reduce each to a plain integer seed.

        For APIs that accept only an ``int`` seed (e.g. the repeated-trial
        runner's ``run(seed)`` callables).  The integers inherit the
        independence and reproducibility of the spawned children.
        """
        return [int(child.generate_state(2, np.uint32)[0]) for child in self._sequence.spawn(count)]

    # ------------------------------------------------------------------ #
    # Generators
    # ------------------------------------------------------------------ #
    def generator(self) -> np.random.Generator:
        """A fresh generator seeded from this stream's (unspawned) state.

        Calling this twice returns generators that replay the same stream;
        use :meth:`spawn` when independent streams are needed.
        """
        return np.random.default_rng(self._sequence)

    def spawn_generator(self) -> np.random.Generator:
        """Spawn one child and return a generator over it."""
        return np.random.default_rng(self.spawn_sequence())

    def __repr__(self) -> str:
        return f"SeedStream(entropy={self.entropy}, spawned={self.children_spawned})"
