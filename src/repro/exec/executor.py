"""Pluggable executor backends for the sampling stack.

An :class:`Executor` is the minimal surface the estimation layers need: an
ordered ``map`` over picklable work items plus a lifecycle.  Three backends
cover the practical deployment spectrum:

* :class:`SerialExecutor` — runs in the calling thread; the reference
  backend every parallel result must match bit-for-bit.
* :class:`ThreadPoolExecutor` — shares memory with the caller; best when the
  work releases the GIL (NumPy kernels on large batches) or is I/O bound.
* :class:`ProcessPoolExecutor` — sidesteps the GIL entirely; best for
  CPU-bound sampling at large budgets, at the cost of pickling tasks and a
  pool start-up price.

Pools are created lazily on first use and reused across rounds, so the
start-up cost is paid once per analysis rather than once per round.
"""

from __future__ import annotations

import concurrent.futures as _futures
import os
from typing import Callable, List, Optional, Sequence, TypeVar, Union

from repro.errors import ConfigurationError
from repro.registry import Registry

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Registry of executor factories: kind name → ``factory(workers) -> Executor``.
#: Extend through :func:`repro.api.register_executor` rather than core edits.
EXECUTOR_REGISTRY: "Registry[Callable[[Optional[int]], Executor]]" = Registry("executor kind")

#: Executor kind names accepted throughout the stack (config, CLI).  A live
#: view of :data:`EXECUTOR_REGISTRY` — registered backends appear here too.
EXECUTOR_KINDS = EXECUTOR_REGISTRY.view()


def default_worker_count() -> int:
    """Worker count used when none is configured (the machine's CPU count)."""
    return os.cpu_count() or 1


class Executor:
    """Base class of the pluggable execution backends."""

    #: Kind name, matching :data:`EXECUTOR_KINDS`.
    kind: str = "abstract"

    @property
    def workers(self) -> int:
        """Number of concurrent workers this backend uses."""
        raise NotImplementedError

    def map(self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]) -> List[_ResultT]:
        """Apply ``fn`` to every item, returning results in item order.

        Ordered results are part of the determinism contract: callers merge
        partial results positionally, so the merge order never depends on
        completion order.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def describe(self) -> str:
        """Human-readable label, e.g. ``process×4``."""
        return self.kind if self.workers == 1 else f"{self.kind}×{self.workers}"

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """In-thread execution — the deterministic reference backend."""

    kind = "serial"

    @property
    def workers(self) -> int:
        return 1

    def map(self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]) -> List[_ResultT]:
        return [fn(item) for item in items]


class _PooledExecutor(Executor):
    """Shared lazy-pool plumbing of the thread and process backends."""

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError("executor worker count must be positive")
        self._workers = workers if workers is not None else default_worker_count()
        self._pool: Optional[_futures.Executor] = None

    @property
    def workers(self) -> int:
        return self._workers

    def _make_pool(self) -> _futures.Executor:
        raise NotImplementedError

    def map(self, fn: Callable[[_ItemT], _ResultT], items: Sequence[_ItemT]) -> List[_ResultT]:
        if not items:
            return []
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadPoolExecutor(_PooledExecutor):
    """Thread-pool backend (shared memory; fast for GIL-releasing kernels)."""

    kind = "thread"

    def _make_pool(self) -> _futures.Executor:
        return _futures.ThreadPoolExecutor(max_workers=self._workers, thread_name_prefix="qcoral-sample")


class ProcessPoolExecutor(_PooledExecutor):
    """Process-pool backend (no GIL; tasks and results must pickle)."""

    kind = "process"

    def _make_pool(self) -> _futures.Executor:
        return _futures.ProcessPoolExecutor(max_workers=self._workers)


EXECUTOR_REGISTRY.register("serial", lambda workers=None: SerialExecutor())
EXECUTOR_REGISTRY.register("thread", ThreadPoolExecutor)
EXECUTOR_REGISTRY.register("process", ProcessPoolExecutor)


def make_executor(kind: str, workers: Optional[int] = None) -> Executor:
    """Build an executor backend by kind name (resolved via the registry).

    ``workers`` defaults to the CPU count for pooled backends and is ignored
    by the serial backend.
    """
    factory = EXECUTOR_REGISTRY.get(kind)
    return factory(workers)


def resolve_executor(spec: Union[None, str, Executor], workers: Optional[int] = None) -> Optional[Executor]:
    """Normalise an executor specification (``None`` | kind name | instance)."""
    if spec is None:
        return None
    if isinstance(spec, Executor):
        return spec
    return make_executor(spec, workers)
