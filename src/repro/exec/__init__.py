"""Parallel execution subsystem: executors, sampling tasks, seed streams.

The estimation stack is embarrassingly parallel — hit-or-miss chunks over
disjoint boxes are independent and their counts merge exactly — so this
package supplies the three pieces needed to exploit that:

* :class:`~repro.exec.executor.Executor` backends (serial, thread, process)
  with an ordered ``map`` contract;
* :class:`~repro.exec.scheduler.SamplingTask` + :func:`~repro.exec.scheduler.shard_budget`,
  which cut sampling budgets into worker-count-independent task plans;
* :class:`~repro.exec.seeds.SeedStream`, deterministic spawned RNG streams so
  the same master seed reproduces bit-identical estimates on every backend
  and worker count.
"""

from repro.exec.executor import (
    EXECUTOR_KINDS,
    EXECUTOR_REGISTRY,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    default_worker_count,
    make_executor,
    resolve_executor,
)
from repro.exec.scheduler import (
    DEFAULT_CHUNK_SIZE,
    SamplingTask,
    execute_sampling_task,
    run_sampling_tasks,
    shard_budget,
)
from repro.exec.seeds import SeedStream

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "EXECUTOR_KINDS",
    "EXECUTOR_REGISTRY",
    "default_worker_count",
    "make_executor",
    "resolve_executor",
    "SamplingTask",
    "SeedStream",
    "DEFAULT_CHUNK_SIZE",
    "execute_sampling_task",
    "run_sampling_tasks",
    "shard_budget",
]
