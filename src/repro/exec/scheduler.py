"""Sampling tasks and the budget-sharding scheduler.

A :class:`SamplingTask` is the self-contained unit of work the executors ship
around: one hit-or-miss run of a path condition over a (sub-box of a) usage
profile with its own spawned seed.  Tasks carry everything a worker needs —
including the seed — so they can execute in another thread or another process
and return nothing but raw counts, which the caller merges positionally.

Two properties make the scheme deterministic:

* :func:`shard_budget` cuts a budget into chunks as a pure function of the
  budget and the chunk size — never of the worker count — so the task list of
  a plan is identical on every backend;
* each task draws from its own :class:`numpy.random.SeedSequence`, so the
  samples it sees are a function of the plan position only.

Workers compile each distinct predicate once through the shared fused-kernel
cache (:func:`repro.lang.kernel.get_kernel`) — compiled kernels do not pickle,
so they cannot travel with the task, but the persistent on-disk source cache
means a freshly forked worker skips codegen for any kernel the parent (or a
previous run) already emitted.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.exec.executor import Executor, SerialExecutor
from repro.intervals.box import Box
from repro.lang import ast
from repro.lang.kernel import get_kernel
from repro.obs.metrics import DeltaBuilder, MetricsDelta

if TYPE_CHECKING:  # pragma: no cover - deferred to avoid a core<->exec cycle
    from repro.core.profiles import UsageProfile
    from repro.obs import Observability

#: Default samples per task: large enough that NumPy batch evaluation (and,
#: for the process backend, pickling) is amortised, small enough that a
#: typical per-round budget still splits across several workers.
DEFAULT_CHUNK_SIZE = 25_000


@dataclass(frozen=True)
class SamplingTask:
    """One shard of a sampling plan: a seeded hit-or-miss run."""

    pc: ast.PathCondition
    profile: UsageProfile
    samples: int
    seed: np.random.SeedSequence
    box: Optional[Box] = None
    variables: Optional[Tuple[str, ...]] = None
    batch_size: int = 100_000

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ConfigurationError("a sampling task needs a positive sample count")


def shard_budget(budget: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> List[int]:
    """Split ``budget`` samples into chunks of at most ``chunk_size``.

    The split depends only on the two arguments (all chunks full-sized except
    a smaller trailing remainder), so the same plan is produced regardless of
    the backend or worker count executing it — the cornerstone of
    reproducibility across executors.
    """
    if budget < 0:
        raise ConfigurationError("budget may not be negative")
    if chunk_size <= 0:
        raise ConfigurationError("chunk size must be positive")
    full, remainder = divmod(budget, chunk_size)
    chunks = [chunk_size] * full
    if remainder:
        chunks.append(remainder)
    return chunks


def execute_sampling_task(task: SamplingTask) -> Tuple[int, int]:
    """Run one task and return its raw ``(hits, samples)`` counts.

    Module-level (hence picklable by reference) so the process backend can
    dispatch it.  The generator is instantiated here, worker-side, from the
    task's spawned seed.
    """
    from repro.core.montecarlo import hit_or_miss

    result = hit_or_miss(
        task.pc,
        task.profile,
        task.samples,
        np.random.default_rng(task.seed),
        box=task.box,
        variables=task.variables,
        predicate=get_kernel(task.pc),
        batch_size=task.batch_size,
    )
    return result.hits, result.samples


def _worker_label() -> str:
    """Stable-ish identity of the executing worker: ``pid:threadname``."""
    return f"{os.getpid()}:{threading.current_thread().name}"


def execute_sampling_task_observed(task: SamplingTask, dispatched: float) -> Tuple[int, int, MetricsDelta]:
    """Observed variant of :func:`execute_sampling_task`.

    Returns the same raw counts plus a :class:`MetricsDelta` of worker-side
    counters and latencies — the delta rides back on the result exactly like
    the sample counts, so the process backend needs no side channel and the
    scheduler can merge deltas in deterministic task order.  ``dispatched`` is
    the driver's ``time.monotonic()`` at submission; queue wait is clamped at
    zero because process workers may have a different monotonic epoch.
    """
    started = time.monotonic()
    hits, samples = execute_sampling_task(task)
    elapsed = time.monotonic() - started
    worker = _worker_label()
    delta = DeltaBuilder()
    delta.count("exec_chunks_total")
    delta.count("exec_samples_total", samples)
    delta.count("exec_hits_total", hits)
    delta.count("exec_worker_chunks_total", worker=worker)
    delta.count("exec_worker_busy_seconds_total", elapsed, worker=worker)
    delta.observe("exec_chunk_seconds", elapsed)
    delta.observe("exec_queue_wait_seconds", max(0.0, started - dispatched))
    return hits, samples, delta.build()


def run_sampling_tasks(
    executor: Optional[Executor],
    tasks: Sequence[SamplingTask],
    observability: Optional["Observability"] = None,
) -> List[Tuple[int, int]]:
    """Execute ``tasks`` on ``executor`` (serial when None), in task order.

    When an enabled ``observability`` hub is given, tasks run through the
    observed wrapper; the worker-side metric deltas it returns are merged into
    the hub here, in task order, and the plain ``(hits, samples)`` list is
    returned either way — callers never see the deltas.
    """
    if not tasks:
        return []
    backend = executor if executor is not None else SerialExecutor()
    if observability is None or not observability.enabled:
        return backend.map(execute_sampling_task, tasks)
    observed = functools.partial(execute_sampling_task_observed, dispatched=time.monotonic())
    results = backend.map(observed, tasks)
    counts: List[Tuple[int, int]] = []
    for hits, samples, delta in results:
        observability.merge_delta(delta)
        counts.append((hits, samples))
    return counts
