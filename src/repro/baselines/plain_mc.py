"""Whole-domain hit-or-miss Monte Carlo baseline.

This is the "Monte Carlo" column of the paper's Table 4 (there implemented
with Mathematica): a single hit-or-miss estimator over the full input domain
for the disjunction of all path conditions, with no interval reasoning, no
stratification, and no compositional reuse.  It provides the reference point
against which the qCORAL feature ablation is measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.estimate import Estimate
from repro.core.montecarlo import hit_or_miss_constraint_set
from repro.core.profiles import UsageProfile
from repro.lang import ast


@dataclass(frozen=True)
class BaselineResult:
    """Estimate, standard deviation and wall-clock time of a baseline run."""

    estimate: Estimate
    analysis_time: float
    samples: int

    @property
    def mean(self) -> float:
        """Estimated probability."""
        return self.estimate.mean

    @property
    def std(self) -> float:
        """Standard deviation of the estimator."""
        return self.estimate.std


def plain_monte_carlo(
    constraint_set: ast.ConstraintSet,
    profile: UsageProfile,
    samples: int,
    seed: Optional[int] = None,
) -> BaselineResult:
    """Estimate the probability of the disjunction with one global estimator.

    A sample is a hit when it satisfies *any* path condition of the set; the
    estimate is the hit ratio and the variance is the binomial-proportion
    variance of Equation (2).
    """
    rng = np.random.default_rng(seed)
    started = time.perf_counter()
    result = hit_or_miss_constraint_set(constraint_set, profile, samples, rng)
    elapsed = time.perf_counter() - started
    return BaselineResult(result.estimate, elapsed, result.samples)


def per_path_monte_carlo(
    constraint_set: ast.ConstraintSet,
    profile: UsageProfile,
    samples_per_path: int,
    seed: Optional[int] = None,
) -> BaselineResult:
    """Per-path hit-or-miss with disjoint summation but no ICP or caching.

    This matches the qCORAL{} configuration of Table 4 when invoked through the
    baseline interface; it exists so the ablation benchmarks can compare the
    global and the per-path flavours of plain Monte Carlo directly.
    """
    from repro.core.montecarlo import hit_or_miss

    rng = np.random.default_rng(seed)
    started = time.perf_counter()
    total = Estimate.zero()
    used = 0
    for pc in constraint_set.path_conditions:
        result = hit_or_miss(pc, profile, samples_per_path, rng)
        total = total.add_disjoint(result.estimate)
        used += result.samples
    elapsed = time.perf_counter() - started
    return BaselineResult(total, elapsed, used)
