"""Baseline techniques the paper compares against."""

from repro.baselines.numint import (
    NumericalIntegrationResult,
    NumIntConfig,
    integrate_indicator,
    nintegrate,
)
from repro.baselines.plain_mc import BaselineResult, per_path_monte_carlo, plain_monte_carlo
from repro.baselines.volcomp import VolCompConfig, VolCompResult, bound_probability

__all__ = [
    "BaselineResult",
    "plain_monte_carlo",
    "per_path_monte_carlo",
    "NumIntConfig",
    "NumericalIntegrationResult",
    "integrate_indicator",
    "nintegrate",
    "VolCompConfig",
    "VolCompResult",
    "bound_probability",
]
