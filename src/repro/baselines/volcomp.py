"""Interval branch-and-bound probability bounding (the VolComp substitute).

VolComp (Sankaranarayanan et al., PLDI 2013) returns a closed interval
``[lower, upper]`` guaranteed to contain the exact probability of satisfying a
set of path conditions.  This substitute reproduces the same output contract
with an interval branch-and-bound:

* a box that certainly satisfies some path condition contributes its full
  measure to both bounds;
* a box that certainly violates every path condition contributes nothing;
* an undecided box contributes its measure to the upper bound only, and is a
  candidate for bisection.

The qualitative failure mode reported in the paper is preserved: on subjects
where interval reasoning cannot prune (highly skewed polynomials, CART; deep
non-linearity, VOL) the returned interval stays wide, up to ``[0, 1]``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.profiles import UsageProfile
from repro.errors import AnalysisError
from repro.icp.hc4 import constraint_certainly_fails, constraint_certainly_holds
from repro.intervals.box import Box
from repro.lang import ast


@dataclass(frozen=True)
class VolCompConfig:
    """Budget knobs of the bounding procedure."""

    max_boxes: int = 4_000
    time_budget: float = 60.0
    target_width: float = 1e-3


@dataclass(frozen=True)
class VolCompResult:
    """Lower/upper probability bounds with bookkeeping information."""

    lower: float
    upper: float
    boxes_explored: int
    analysis_time: float

    @property
    def width(self) -> float:
        """Width of the bounding interval."""
        return self.upper - self.lower

    def contains(self, probability: float, slack: float = 1e-9) -> bool:
        """True when ``probability`` lies inside the bounds (with ``slack``)."""
        return self.lower - slack <= probability <= self.upper + slack


def _certainly_satisfies(constraint_set: ast.ConstraintSet, box: Box) -> bool:
    """True when every point of ``box`` satisfies some path condition.

    Checking each path condition separately is sufficient (though not
    necessary); it is the same corner-wise reasoning VolComp's polyhedral
    bounding performs on linear constraints.
    """
    return any(
        all(constraint_certainly_holds(constraint, box) for constraint in pc.constraints)
        for pc in constraint_set.path_conditions
        if pc.constraints
    )


def _certainly_violates(constraint_set: ast.ConstraintSet, box: Box) -> bool:
    """True when no point of ``box`` satisfies any path condition."""
    return all(
        any(constraint_certainly_fails(constraint, box) for constraint in pc.constraints)
        for pc in constraint_set.path_conditions
    )


def bound_probability(
    constraint_set: ast.ConstraintSet,
    profile: UsageProfile,
    config: VolCompConfig = VolCompConfig(),
) -> VolCompResult:
    """Compute guaranteed probability bounds for a constraint set.

    The profile's measure is used to weigh boxes, so the bounds are valid for
    non-uniform profiles as well (VolComp itself supports distribution
    envelopes; the uniform case reproduces the paper's tables).
    """
    started = time.perf_counter()
    deadline = started + config.time_budget

    if not constraint_set.path_conditions:
        return VolCompResult(0.0, 0.0, 0, time.perf_counter() - started)

    variables = tuple(sorted(constraint_set.free_variables()))
    if not variables:
        from repro.lang.evaluator import holds_any

        value = 1.0 if holds_any(constraint_set, {}) else 0.0
        return VolCompResult(value, value, 0, time.perf_counter() - started)

    profile.check_covers(variables)
    domain = profile.restrict(variables).domain()
    if not domain.is_bounded():
        raise AnalysisError("probability bounding needs a bounded domain")

    lower = 0.0
    undecided_mass = 0.0
    counter = itertools.count()
    heap: List[Tuple[float, int, Box]] = []
    explored = 0

    def classify_and_push(box: Box) -> None:
        nonlocal lower, undecided_mass
        weight = profile.weight(box)
        if weight == 0.0:
            return
        if _certainly_satisfies(constraint_set, box):
            lower += weight
            return
        if _certainly_violates(constraint_set, box):
            return
        undecided_mass += weight
        heapq.heappush(heap, (-weight, next(counter), box))

    classify_and_push(domain)
    explored += 1

    while heap:
        if undecided_mass <= config.target_width:
            break
        if explored >= config.max_boxes or time.perf_counter() >= deadline:
            break
        negative_weight, _, box = heapq.heappop(heap)
        undecided_mass += negative_weight  # negative_weight is -weight
        if box.max_width() <= 0.0:
            undecided_mass -= negative_weight
            heapq.heappush(heap, (negative_weight, next(counter), box))
            break
        low, high = box.split()
        classify_and_push(low)
        classify_and_push(high)
        explored += 2

    upper = min(1.0, lower + undecided_mass)
    elapsed = time.perf_counter() - started
    return VolCompResult(lower, upper, explored, elapsed)
