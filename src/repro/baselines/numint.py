"""Global adaptive numerical integration (the Mathematica NIntegrate substitute).

The paper uses Mathematica's ``NIntegrate`` with default settings as the
accuracy reference for linear-constraint subjects (Table 3).  ``NIntegrate``
runs a *global adaptive* strategy: it maintains a pool of integration regions,
repeatedly bisects the region with the largest estimated error, and terminates
when the accumulated error meets the accuracy goal or the recursion budget is
exhausted.

This substitute integrates the indicator function of a constraint set over the
(uniform) input domain with the same strategy.  Because the integrand is an
indicator, the per-region rule evaluates the constraint on a small grid of
probe points: a region whose probes all agree and whose interval evaluation is
conclusive contributes no error; mixed regions contribute their full volume as
error and are candidates for bisection.  The qualitative behaviour matches the
paper's observations — exact-looking results on low-dimensional problems, poor
scaling and possible non-convergence warnings as dimensionality grows.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.icp.hc4 import constraint_certainly_fails, constraint_certainly_holds
from repro.intervals.box import Box
from repro.lang import ast
from repro.lang.kernel import get_kernel


@dataclass(frozen=True)
class NumericalIntegrationResult:
    """Probability estimate with an error bound and convergence status."""

    probability: float
    error_bound: float
    regions: int
    converged: bool
    analysis_time: float


@dataclass(frozen=True)
class NumIntConfig:
    """Configuration of the adaptive integrator.

    Attributes:
        accuracy_goal: Target absolute error on the probability.
        max_regions: Budget of region bisections (the "recursion depth limit").
        probes_per_dimension: Probe points per dimension for the region rule
            (the total grid is capped at ``max_probes``).
        max_probes: Hard cap on probe points per region.
        time_budget: Wall-clock budget in seconds.
    """

    accuracy_goal: float = 1e-4
    max_regions: int = 20_000
    probes_per_dimension: int = 3
    max_probes: int = 243
    time_budget: float = 300.0


def _probe_points(box: Box, config: NumIntConfig) -> dict:
    """Tensor grid of probe points over ``box`` (capped at ``max_probes``)."""
    names = list(box.variables)
    per_dimension = config.probes_per_dimension
    while per_dimension > 1 and per_dimension ** len(names) > config.max_probes:
        per_dimension -= 1
    axes = []
    for name in names:
        interval = box.interval(name)
        axes.append(np.linspace(interval.lo, interval.hi, max(per_dimension, 1)))
    if len(names) == 1:
        grid = axes[0][:, None]
    else:
        grid = np.array(list(itertools.product(*axes)))
    return {name: grid[:, index] for index, name in enumerate(names)}


def _classify(constraint_set: ast.ConstraintSet, box: Box) -> Tuple[float, float]:
    """Return ``(satisfied_fraction, error_fraction)`` for one region.

    Interval evaluation settles regions that certainly satisfy one path
    condition or certainly violate all of them; otherwise the probe grid gives
    the fraction and the region is treated as fully uncertain.
    """
    for pc in constraint_set.path_conditions:
        if all(constraint_certainly_holds(constraint, box) for constraint in pc.constraints):
            return 1.0, 0.0
    if all(
        any(constraint_certainly_fails(constraint, box) for constraint in pc.constraints)
        for pc in constraint_set.path_conditions
    ):
        return 0.0, 0.0
    return -1.0, 1.0  # fraction computed from probes by the caller


def integrate_indicator(
    constraint_set: ast.ConstraintSet,
    domain: Box,
    config: NumIntConfig = NumIntConfig(),
) -> NumericalIntegrationResult:
    """Probability of the constraint set under a uniform profile over ``domain``.

    The result is the fraction of the domain volume satisfying any path
    condition, computed by global adaptive subdivision.
    """
    if not constraint_set.path_conditions:
        return NumericalIntegrationResult(0.0, 0.0, 0, True, 0.0)
    if not domain.is_bounded() or domain.volume() == 0.0:
        raise AnalysisError("numerical integration needs a bounded domain with positive volume")

    started = time.perf_counter()
    deadline = started + config.time_budget
    predicate = get_kernel(constraint_set)
    domain_volume = domain.volume()

    settled_probability = 0.0
    # Heap of pending regions ordered by descending error contribution.
    counter = itertools.count()
    heap: List[Tuple[float, int, Box, float]] = []

    def push_region(box: Box) -> None:
        relative = box.volume() / domain_volume
        certain, error = _classify(constraint_set, box)
        nonlocal settled_probability
        if error == 0.0:
            settled_probability += certain * relative
            return
        probes = _probe_points(box, config)
        fraction = float(np.mean(predicate(probes))) if probes else 0.0
        heapq.heappush(heap, (-relative, next(counter), box, fraction))

    push_region(domain)
    regions = 1

    while heap:
        total_error = sum(-entry[0] for entry in heap)
        if total_error <= config.accuracy_goal:
            break
        if regions >= config.max_regions or time.perf_counter() >= deadline:
            break
        _, _, box, _ = heapq.heappop(heap)
        if box.max_width() <= 0.0:
            continue
        low, high = box.split()
        push_region(low)
        push_region(high)
        regions += 2

    pending_probability = sum(-entry[0] * entry[3] for entry in heap)
    pending_error = sum(-entry[0] for entry in heap)
    probability = settled_probability + pending_probability
    elapsed = time.perf_counter() - started
    return NumericalIntegrationResult(
        probability=probability,
        error_bound=pending_error,
        regions=regions,
        converged=pending_error <= config.accuracy_goal,
        analysis_time=elapsed,
    )


def nintegrate(
    constraint_set: ast.ConstraintSet,
    domain: Box,
    accuracy_goal: float = 1e-4,
    max_regions: int = 20_000,
    time_budget: float = 300.0,
) -> NumericalIntegrationResult:
    """Convenience wrapper with keyword configuration."""
    config = NumIntConfig(accuracy_goal=accuracy_goal, max_regions=max_regions, time_budget=time_budget)
    return integrate_indicator(constraint_set, domain, config)
