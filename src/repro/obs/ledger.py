"""Append-only run ledger: per-run provenance records for cross-run analysis.

Every finished run through the facade can append one :class:`LedgerEntry` —
the Report summary (including the metrics snapshot and run-health
diagnostics), keyed by the *constraint family* it quantified — to a ledger
file living beside the estimate store.  The family digest reuses the store's
canonical factor keys (method tag + estimator version + per-factor digests),
so two runs land in the same family exactly when the store would let them
share estimates; ``qcoral obs diff`` and ``qcoral obs history`` then compare
and render runs within a family across tool or program revisions.

Backends mirror :func:`repro.store.backends.open_store`: ``None`` /
``":memory:"`` → in-memory, ``*.jsonl`` → newline-delimited JSON, anything
else → SQLite.  All backends are append-only by design — a ledger is an audit
log, not a cache.

Import-order note: ``repro.core.stratified`` imports :mod:`repro.obs`, so
this module must not import ``repro.core.*`` / ``repro.store.*`` at module
level; the entry builder imports them lazily.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.diagnostics import Diagnostic, diagnostics_from_payload

#: Schema tag stamped on every ledger entry.
LEDGER_SCHEMA = "qcoral-ledger-1"

#: Registered ledger backends (mirrors ``STORE_BACKENDS`` naming).
LEDGER_BACKENDS = ("memory", "jsonl", "sqlite")


def config_fingerprint(config: Any) -> str:
    """Short stable digest of a run configuration (dataclass or repr-able).

    Used both in trace headers and ledger entries so two runs can be checked
    for "same settings" without embedding the whole config.  Dataclass field
    order is definition order, so the rendering — and the digest — is stable
    across processes.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = repr(dataclasses.asdict(config))
    else:
        payload = repr(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class LedgerEntry:
    """One run's provenance record.

    ``family`` groups runs quantifying the same constraint set under the same
    method/estimator version; ``run_id`` is a content digest identifying this
    particular run's payload.  ``report`` is the full
    :meth:`~repro.api.report.Report.to_dict` rendering (schema-versioned, and
    carrying the metrics snapshot and diagnostics when present).  ``created``
    is an informational wall-clock stamp — never part of any determinism
    contract.
    """

    family: str
    run_id: str
    seed: Optional[int]
    method: str
    features: str
    estimator_version: str
    repro_version: str
    created: float
    factor_keys: Tuple[str, ...] = ()
    report: Mapping[str, Any] = field(default_factory=dict)

    # Convenience accessors for the CLI / analysis layers.
    @property
    def mean(self) -> float:
        return float(self.report.get("mean", 0.0))

    @property
    def std(self) -> float:
        return float(self.report.get("std", 0.0))

    @property
    def samples(self) -> int:
        return int(self.report.get("samples", 0))

    @property
    def rounds(self) -> int:
        return len(self.report.get("rounds") or ())

    @property
    def analysis_time(self) -> float:
        return float(self.report.get("time", 0.0))

    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        """Parsed diagnostics stored with the run (may be empty)."""
        payload = self.report.get("diagnostics") or ()
        return diagnostics_from_payload(payload)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": LEDGER_SCHEMA,
            "family": self.family,
            "run_id": self.run_id,
            "seed": self.seed,
            "method": self.method,
            "features": self.features,
            "estimator_version": self.estimator_version,
            "repro_version": self.repro_version,
            "created": self.created,
            "factor_keys": list(self.factor_keys),
            "report": dict(self.report),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LedgerEntry":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad payloads."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"malformed ledger entry: expected a mapping, got {type(payload).__name__}")
        schema = payload.get("schema")
        if not isinstance(schema, str) or not schema.startswith("qcoral-ledger"):
            raise ValueError(f"malformed ledger entry: unrecognised schema {schema!r}")
        for key in ("family", "run_id", "method"):
            if not isinstance(payload.get(key), str):
                raise ValueError(f"malformed ledger entry: missing or non-string {key!r}")
        report = payload.get("report")
        if not isinstance(report, Mapping):
            raise ValueError("malformed ledger entry: 'report' must be a mapping")
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ValueError("malformed ledger entry: 'seed' must be an integer or null")
        return cls(
            family=payload["family"],
            run_id=payload["run_id"],
            seed=seed,
            method=payload["method"],
            features=str(payload.get("features", "")),
            estimator_version=str(payload.get("estimator_version", "")),
            repro_version=str(payload.get("repro_version", "")),
            created=float(payload.get("created", 0.0)),
            factor_keys=tuple(str(key) for key in payload.get("factor_keys", ())),
            report=dict(report),
        )


class RunLedger:
    """Base class: an append-only store of :class:`LedgerEntry` records."""

    backend = "memory"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ledger is closed")

    def append(self, entry: LedgerEntry) -> None:
        raise NotImplementedError

    def entries(self, family: Optional[str] = None) -> List[LedgerEntry]:
        """All entries in append order, optionally filtered to one family."""
        raise NotImplementedError

    def families(self) -> List[str]:
        """Distinct families in order of first appearance."""
        seen: Dict[str, None] = {}
        for entry in self.entries():
            seen.setdefault(entry.family, None)
        return list(seen)

    def latest(self, family: str) -> Optional[LedgerEntry]:
        """The most recent entry of ``family``, or None when it has none.

        The incremental CI gate uses this to fetch the comparison baseline:
        the family digest of the *baseline* constraint set resolves here to
        the last recorded run of that program version.
        """
        entries = self.entries(family)
        return entries[-1] if entries else None

    def __len__(self) -> int:
        return len(self.entries())

    def close(self) -> None:
        self._closed = True

    def describe(self) -> str:
        return self.backend

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class MemoryLedger(RunLedger):
    """Process-local ledger (tests and throwaway sessions)."""

    backend = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._entries: List[LedgerEntry] = []

    def append(self, entry: LedgerEntry) -> None:
        with self._lock:
            self._check_open()
            self._entries.append(entry)

    def entries(self, family: Optional[str] = None) -> List[LedgerEntry]:
        with self._lock:
            self._check_open()
            if family is None:
                return list(self._entries)
            return [entry for entry in self._entries if entry.family == family]


class JsonlLedger(RunLedger):
    """Newline-delimited JSON ledger: one entry per line, pure appends."""

    backend = "jsonl"

    def __init__(self, path: str) -> None:
        super().__init__()
        self._path = path

    def append(self, entry: LedgerEntry) -> None:
        with self._lock:
            self._check_open()
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")

    def entries(self, family: Optional[str] = None) -> List[LedgerEntry]:
        with self._lock:
            self._check_open()
            if not os.path.exists(self._path):
                return []
            results: List[LedgerEntry] = []
            with open(self._path, "r", encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError as error:
                        raise ValueError(f"{self._path}:{line_number}: not valid JSON: {error}") from None
                    entry = LedgerEntry.from_dict(payload)
                    if family is None or entry.family == family:
                        results.append(entry)
            return results

    def describe(self) -> str:
        return f"jsonl:{self._path}"


class SqliteLedger(RunLedger):
    """SQLite ledger: one append-only table, safe for concurrent readers."""

    backend = "sqlite"

    def __init__(self, path: str) -> None:
        super().__init__()
        self._path = path
        self._connection = sqlite3.connect(path, check_same_thread=False)
        with self._lock:
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS runs ("
                " id INTEGER PRIMARY KEY AUTOINCREMENT,"
                " family TEXT NOT NULL,"
                " created REAL NOT NULL,"
                " payload TEXT NOT NULL)"
            )
            self._connection.execute("CREATE INDEX IF NOT EXISTS runs_family ON runs (family)")
            self._connection.commit()

    def append(self, entry: LedgerEntry) -> None:
        with self._lock:
            self._check_open()
            self._connection.execute(
                "INSERT INTO runs (family, created, payload) VALUES (?, ?, ?)",
                (entry.family, entry.created, json.dumps(entry.to_dict(), sort_keys=True)),
            )
            self._connection.commit()

    def entries(self, family: Optional[str] = None) -> List[LedgerEntry]:
        with self._lock:
            self._check_open()
            if family is None:
                rows = self._connection.execute("SELECT payload FROM runs ORDER BY id").fetchall()
            else:
                rows = self._connection.execute(
                    "SELECT payload FROM runs WHERE family = ? ORDER BY id", (family,)
                ).fetchall()
        return [LedgerEntry.from_dict(json.loads(row[0])) for row in rows]

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._connection.close()
            super().close()

    def describe(self) -> str:
        return f"sqlite:{self._path}"


def open_ledger(path: Optional[str] = None, backend: Optional[str] = None) -> RunLedger:
    """Open a run ledger, inferring the backend from the path when omitted.

    Mirrors :func:`repro.store.backends.open_store`: ``None`` or
    ``":memory:"`` → memory, ``*.jsonl`` → JSONL, anything else → SQLite.
    """
    if backend is None:
        if path is None or path == ":memory:":
            backend = "memory"
        elif path.endswith(".jsonl"):
            backend = "jsonl"
        else:
            backend = "sqlite"
    if backend == "memory":
        return MemoryLedger()
    if path is None:
        raise ValueError(f"ledger backend {backend!r} requires a path")
    if backend == "jsonl":
        return JsonlLedger(path)
    if backend == "sqlite":
        return SqliteLedger(path)
    raise ValueError(f"unknown ledger backend {backend!r} (expected one of {', '.join(LEDGER_BACKENDS)})")


def _canonical_factor_keys(report: Any, profile: Any) -> Tuple[str, Tuple[str, ...]]:
    """The (method tag, sorted factor digests) identifying a run's family.

    Reuses the estimate store's canonical keys when a usage profile is
    available (so ledger families line up with store sharing); otherwise
    hashes the factors' canonical text.  Core/store imports live inside the
    function — ``repro.core.stratified`` imports ``repro.obs``, so importing
    the other direction at module level would cycle.
    """
    from repro.core.methods import store_method_tag
    from repro.store.keys import StoreContext

    config = report.config
    method_tag = report.method
    context = None
    if config is not None:
        method_tag = store_method_tag(config)
        if profile is not None:
            context = StoreContext(profile, method_tag)
    digests: List[str] = []
    for path_report in report.path_reports:
        for factor_report in path_report.factors:
            if context is not None:
                try:
                    digests.append(context.key_for(factor_report.factor).digest)
                    continue
                except Exception:  # profile missing a variable: fall back to text
                    context = None
            canonical = factor_report.factor.canonical()
            digests.append(hashlib.sha256(canonical.encode("utf-8")).hexdigest())
    return method_tag, tuple(sorted(set(digests)))


def family_digest(method_tag: str, factor_keys: Tuple[str, ...]) -> str:
    """The constraint-family digest of a run over ``factor_keys``.

    A pure function of the method tag, the estimator version, and the sorted
    distinct factor digests — so the family of a constraint set is computable
    *without* running it (the incremental gate derives the baseline version's
    family from a diff, then looks its last run up in the ledger).
    """
    from repro.store.keys import ESTIMATOR_VERSION

    material = "\x1f".join((method_tag, ESTIMATOR_VERSION) + tuple(sorted(set(factor_keys))))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


def ledger_entry_for(report: Any, profile: Any = None, *, created: Optional[float] = None) -> LedgerEntry:
    """Build the :class:`LedgerEntry` recording one finished run.

    ``report`` is a :class:`~repro.api.report.Report`; ``profile`` the usage
    profile the run quantified under (when available, factor keys reuse the
    store's canonical digests).  ``created`` defaults to the current time.
    """
    from repro import __version__
    from repro.store.keys import ESTIMATOR_VERSION

    method_tag, factor_keys = _canonical_factor_keys(report, profile)
    family = family_digest(method_tag, factor_keys)
    payload = report.to_dict()
    fingerprint = config_fingerprint(report.config) if report.config is not None else ""
    run_material = json.dumps(
        {"family": family, "config": fingerprint, "report": payload},
        sort_keys=True,
        default=str,
    )
    run_id = hashlib.sha256(run_material.encode("utf-8")).hexdigest()[:16]
    return LedgerEntry(
        family=family,
        run_id=run_id,
        seed=report.seed,
        method=report.method,
        features=report.feature_label,
        estimator_version=ESTIMATOR_VERSION,
        repro_version=__version__,
        created=time.time() if created is None else created,
        factor_keys=factor_keys,
        report=payload,
    )


def estimate_drift_sigmas(a: LedgerEntry, b: LedgerEntry) -> float:
    """Mean drift between two runs in combined-σ units.

    Uses ``|m_a − m_b| / sqrt(σ_a² + σ_b²)`` — the z-score of the difference
    under independent estimates.  Returns ``inf`` when both σ are zero but
    the means differ (an exact result moved), 0.0 when the estimates agree.
    """
    drift = abs(a.mean - b.mean)
    combined = (a.std * a.std + b.std * b.std) ** 0.5
    if combined == 0.0:
        return 0.0 if drift == 0.0 else float("inf")
    return drift / combined


#: Phase → (metric name, kind) consulted by :func:`phase_timings`.
_PHASE_METRICS: Tuple[Tuple[str, str, str], ...] = (
    ("paving", "icp_pave_seconds", "histogram"),
    ("sampling_rounds", "qcoral_round_seconds", "histogram"),
    ("executor_chunks", "exec_chunk_seconds", "histogram"),
    ("kernel_compile", "kernel_compile_seconds_total", "counter"),
    ("store_get", "store_get_seconds", "histogram"),
    ("store_merge", "store_merge_seconds", "histogram"),
)


def phase_timings(entry: LedgerEntry) -> Dict[str, float]:
    """Per-phase wall-clock totals (seconds) from a run's stored metrics.

    Empty when the run had observability disabled (no snapshot persisted).
    """
    from repro.obs.metrics import MetricsSnapshot

    payload = entry.report.get("metrics")
    if not payload:
        return {}
    snapshot = MetricsSnapshot.from_dict(payload)
    timings: Dict[str, float] = {}
    for phase, metric, kind in _PHASE_METRICS:
        if kind == "counter":
            total = snapshot.counter_total(metric)
        else:
            total = sum(hist.total for (name, _), hist in snapshot.histograms.items() if name == metric)
        timings[phase] = total
    return timings
