"""Zero-perturbation observability: spans, metrics, exporters.

One hub object, :class:`Observability`, bundles a :class:`MetricsRegistry`
and a :class:`Tracer` and is threaded through the engine (analyzer →
samplers → scheduler → cache).  The contract every instrumentation site must
honour:

* **never touch an RNG stream** — only counters and ``time.monotonic`` /
  ``time.perf_counter`` reads, so fixed-seed results are bit-identical with
  observability on, off, or at any trace sampling rate;
* **~zero cost when off** — callers hold the :data:`DISABLED` singleton,
  whose methods are no-ops and whose ``span`` reuses one null context
  manager, so the disabled path is a couple of attribute lookups.

Construction::

    obs = Observability(trace_path="run.jsonl", trace_sample_every=10)
    with Session(observability=obs) as session:
        report = session.quantify("x*x + y*y <= 1").run()
    print(obs.prometheus())

Or per query, without touching the session::

    report = session.quantify(...).with_tracing("run.jsonl").run()
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, ContextManager, Dict, List, Optional

from repro.obs.diagnostics import (
    Diagnostic,
    FactorHealth,
    StratumHealth,
    deterministic_diagnostics,
    diagnose_run,
)
from repro.obs.export import TRACE_SCHEMA, console_summary, lint_trace, prometheus_text, write_trace_jsonl
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerEntry,
    RunLedger,
    config_fingerprint,
    ledger_entry_for,
    open_ledger,
)
from repro.obs.metrics import (
    DeltaBuilder,
    HistogramSnapshot,
    MetricsDelta,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.trace import Tracer

__all__ = [
    "Observability",
    "ensure_observability",
    "DISABLED",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricsDelta",
    "DeltaBuilder",
    "HistogramSnapshot",
    "Tracer",
    "prometheus_text",
    "console_summary",
    "write_trace_jsonl",
    "lint_trace",
    "TRACE_SCHEMA",
    "Diagnostic",
    "FactorHealth",
    "StratumHealth",
    "diagnose_run",
    "deterministic_diagnostics",
    "LedgerEntry",
    "RunLedger",
    "open_ledger",
    "ledger_entry_for",
    "config_fingerprint",
    "LEDGER_SCHEMA",
]


class Observability:
    """Live observability hub: one metrics registry plus one tracer.

    Instances are cheap and reusable across analyses — metrics accumulate
    until :meth:`reset`, spans buffer until :meth:`flush_trace` (or
    :meth:`drain_spans`).  Thread-safe throughout.
    """

    #: False only on the disabled singleton; instrumentation sites gate any
    #: non-trivial work (building label dicts, reading clocks) on this flag.
    enabled: bool = True

    def __init__(self, *, trace_path: Optional[str] = None, trace_sample_every: int = 1) -> None:
        self.trace_path = trace_path
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(sample_every=trace_sample_every)
        self._run_context: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attributes: Any) -> ContextManager[None]:
        """A timed, nested tracing span (see :class:`Tracer`)."""
        return self.tracer.span(name, **attributes)

    def count(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Increment a counter."""
        self.metrics.count(name, amount, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge."""
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation (typically a latency in seconds)."""
        self.metrics.observe(name, value, **labels)

    def merge_delta(self, delta: Optional[MetricsDelta]) -> None:
        """Fold one worker-produced metrics delta into the registry."""
        if delta is not None:
            self.metrics.merge_delta(delta)

    def set_run_context(self, **context: Any) -> None:
        """Record run identity fields (seed, method, config fingerprint).

        The engine calls this at run start; the fields end up in the trace
        header so JSONL traces are self-describing.  Last write wins — a hub
        reused across runs stamps the most recent run's identity.
        """
        self._run_context.update(context)

    def trace_header(self) -> Dict[str, Any]:
        """The self-describing header record for JSONL traces."""
        from repro import __version__

        return {
            "record": "header",
            "schema": TRACE_SCHEMA,
            "repro_version": __version__,
            "seed": self._run_context.get("seed"),
            "method": self._run_context.get("method"),
            "config_fingerprint": self._run_context.get("config_fingerprint"),
        }

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> MetricsSnapshot:
        """Immutable copy of the current metrics."""
        return self.metrics.snapshot()

    def drain_spans(self) -> List[Dict[str, Any]]:
        """Buffered span records, clearing the buffer."""
        return self.tracer.drain()

    def flush_trace(self, path: Optional[str] = None) -> int:
        """Append buffered spans to ``path`` (default: the configured
        ``trace_path``); returns the number written (0 when no path)."""
        target = path if path is not None else self.trace_path
        spans = self.drain_spans()
        if target is None or not spans:
            return 0
        return write_trace_jsonl(spans, target, append=True, header=self.trace_header())

    def prometheus(self) -> str:
        """Current metrics in the Prometheus text exposition format."""
        return prometheus_text(self.snapshot())

    def console_summary(self) -> str:
        """Current metrics as a human-readable console block."""
        return console_summary(self.snapshot())

    def reset(self) -> None:
        """Drop accumulated metrics (the tracer's buffer is left alone)."""
        self.metrics.reset()


class _DisabledObservability(Observability):
    """Null object: every operation is a no-op, ``span`` costs ~nothing."""

    enabled = False
    _NULL_SPAN: ContextManager[None] = nullcontext()

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attributes: Any) -> ContextManager[None]:
        return self._NULL_SPAN

    def count(self, name: str, amount: float = 1, **labels: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def merge_delta(self, delta: Optional[MetricsDelta]) -> None:
        pass

    def set_run_context(self, **context: Any) -> None:
        pass


#: Shared disabled hub; ``ensure_observability(None)`` returns this.
DISABLED: Observability = _DisabledObservability()


def ensure_observability(obs: Optional[Observability]) -> Observability:
    """Normalise an optional hub to a usable one (None → :data:`DISABLED`)."""
    return obs if obs is not None else DISABLED
