"""Run-health diagnostics: a deterministic pass from telemetry to verdicts.

PR 7 built the raw observability plumbing (spans, metrics, exporters); this
module turns one finished run's data into structured :class:`Diagnostic`
records a human — or CI — can act on.  The checks mirror the statistical
assumptions the qCORAL estimator relies on:

* **Convergence trajectory** — the reported σ should shrink like 1/√n as
  rounds accumulate samples.  A realized σ far above that ideal means the
  adaptive allocator is fighting heavy-tailed strata (``CONVERGENCE_DEGRADED``)
  rather than converging (``CONVERGENCE_OK``); when ``target_std`` is set but
  unmet, ``TARGET_SHORTFALL`` projects how many more samples/rounds the 1/√n
  law predicts.
* **Estimate consistency** — intermediate round means should stay within a
  few reported σ of the final mean; a violation (``SIGMA_INCONSISTENT``)
  suggests the variance estimate undershot the realized scatter.
* **Importance-weight degeneracy** — the self-normalised importance
  estimator's effective sample size (``ESS = M² / Σ m_i²/n_i`` over sampled
  strata of mass ``m_i`` with ``n_i`` draws) collapses when allocation
  diverges from the mass profile; ``ESS_DEGENERATE`` fires below a ratio
  floor.
* **Starvation** — the Laplace σ floor is supposed to keep every factor and
  stratum in the allocation race; zero-allocation streaks
  (``FACTOR_STARVED`` / ``STRATUM_STARVED``) mean the budget-per-round is too
  small for the paving.
* **Discard burn** — adaptive paving splits throw away the samples drawn in
  the parent box; ``DISCARD_BURN`` flags runs that spent a large fraction of
  their budget on discarded draws.
* **Wall-clock attribution** — from the run's span histograms: paving vs
  sampling vs kernel compile vs store I/O (``WALL_CLOCK_ATTRIBUTION``), and
  ``OVERHEAD_DOMINANT`` when non-sampling overhead exceeds sampling time.

Determinism contract: every check except the wall-clock ones is a pure
function of values that are themselves bit-identical across executors and
with observability on or off (round reports, sample counts, streak counters).
Those records carry ``timing=False`` and are byte-identical for a fixed seed.
Wall-clock records (``timing=True``) depend on a :class:`MetricsSnapshot`
and on real clocks; consumers comparing runs must filter them out first
(:func:`deterministic_diagnostics` does exactly that).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsSnapshot

#: ESS/n floor below which self-normalised importance weights count as
#: degenerate (1.0 = allocation perfectly proportional to stratum mass).
ESS_RATIO_FLOOR = 0.5

#: Consecutive zero-allocation rounds before a factor/stratum counts as
#: starved.  Streaks shorter than this are normal largest-remainder jitter.
STARVATION_STREAK = 3

#: Ceiling on realized-σ over 1/√n-ideal-σ before convergence counts as
#: degraded.
CONVERGENCE_RATIO_CEILING = 2.0

#: Fraction of the drawn budget thrown away by adaptive splits before the
#: burn rate is flagged.
DISCARD_BURN_CEILING = 0.25

#: Fraction of attributable wall-clock spent outside sampling rounds before
#: a run counts as overhead-dominated.
OVERHEAD_FRACTION_CEILING = 0.5

#: How many reported σ an intermediate round mean may sit from the final
#: mean before the variance estimate counts as inconsistent.
SIGMA_DRIFT_SIGMAS = 4.0

#: Severity levels, mildest first.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One structured run-health verdict.

    ``evidence`` is a tuple of ``(key, value)`` pairs sorted by key, holding
    only JSON-representable values, so two equal diagnostics serialise to
    byte-identical JSON.  ``timing`` marks records derived from wall clocks,
    which are excluded from the fixed-seed bit-identity contract.
    """

    severity: str
    code: str
    message: str
    evidence: Tuple[Tuple[str, Any], ...] = ()
    timing: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (evidence becomes a key-sorted mapping)."""
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "evidence": dict(self.evidence),
            "timing": self.timing,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Diagnostic":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad payloads."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"malformed diagnostic: expected a mapping, got {type(payload).__name__}")
        for key in ("severity", "code", "message"):
            if not isinstance(payload.get(key), str):
                raise ValueError(f"malformed diagnostic: missing or non-string {key!r}")
        severity = payload["severity"]
        if severity not in SEVERITIES:
            raise ValueError(f"malformed diagnostic: unknown severity {severity!r}")
        evidence = payload.get("evidence", {})
        if not isinstance(evidence, Mapping):
            raise ValueError("malformed diagnostic: 'evidence' must be a mapping")
        return cls(
            severity=severity,
            code=payload["code"],
            message=payload["message"],
            evidence=tuple(sorted(evidence.items())),
            timing=bool(payload.get("timing", False)),
        )


@dataclass(frozen=True)
class StratumHealth:
    """Per-stratum inputs to the starvation check (one paving box)."""

    weight: float
    samples: int
    hits: int
    sampleable: bool
    zero_allocation_streak: int


@dataclass(frozen=True)
class FactorHealth:
    """Per-factor inputs to the diagnostics pass.

    ``index`` matches the ``factor=<i>`` label on the run's
    ``qcoral_factor_*`` metrics (position among the sampleable factors).
    ``effective_sample_size`` is ``None`` for factors without a stratified
    sampler; the degeneracy check only applies to ``method == "importance"``.
    """

    index: int
    method: str
    samples: int
    mean: float
    std: float
    zero_share_streak: int = 0
    discarded_samples: int = 0
    effective_sample_size: Optional[float] = None
    strata: Tuple[StratumHealth, ...] = ()


def _diag(
    severity: str,
    code: str,
    message: str,
    *,
    timing: bool = False,
    **evidence: Any,
) -> Diagnostic:
    return Diagnostic(
        severity=severity,
        code=code,
        message=message,
        evidence=tuple(sorted(evidence.items())),
        timing=timing,
    )


def _convergence_checks(
    round_reports: Sequence[Any],
    target_std: Optional[float],
) -> List[Diagnostic]:
    """σ-vs-round trajectory against the 1/√n ideal, plus target projection."""
    if not round_reports:
        return []
    first, last = round_reports[0], round_reports[-1]
    final_std = last.estimate.std
    final_samples = last.total_samples
    ratio: Optional[float] = None
    if len(round_reports) >= 2 and first.estimate.std > 0.0 and first.total_samples > 0 and final_samples > 0:
        ideal = first.estimate.std * math.sqrt(first.total_samples / final_samples)
        if ideal > 0.0:
            ratio = final_std / ideal
    diagnostics: List[Diagnostic] = []
    if ratio is not None and ratio > CONVERGENCE_RATIO_CEILING:
        diagnostics.append(
            _diag(
                "warning",
                "CONVERGENCE_DEGRADED",
                f"realized sigma is {ratio:.2f}x the 1/sqrt(n) ideal after {len(round_reports)} rounds",
                rounds=len(round_reports),
                final_std=final_std,
                total_samples=final_samples,
                sigma_over_ideal=ratio,
            )
        )
    else:
        diagnostics.append(
            _diag(
                "info",
                "CONVERGENCE_OK",
                f"sigma {final_std:.3g} after {len(round_reports)} rounds tracks the 1/sqrt(n) ideal",
                rounds=len(round_reports),
                final_std=final_std,
                total_samples=final_samples,
                sigma_over_ideal=ratio,
            )
        )
    if target_std is not None and final_std > target_std and final_samples > 0:
        # 1/sqrt(n) law: reaching target_std needs n * (sigma/target)^2 total
        # samples; pace extrapolates at the run's mean allocation per round.
        needed_total = math.ceil(final_samples * (final_std / target_std) ** 2)
        additional = max(0, needed_total - final_samples)
        pace = final_samples / len(round_reports)
        predicted_rounds = math.ceil(additional / pace) if pace > 0 else None
        diagnostics.append(
            _diag(
                "warning",
                "TARGET_SHORTFALL",
                (
                    f"target_std {target_std:.3g} unmet (sigma {final_std:.3g}); "
                    f"~{additional} more samples predicted"
                ),
                target_std=target_std,
                final_std=final_std,
                additional_samples=additional,
                predicted_rounds=predicted_rounds,
            )
        )
    return diagnostics


def _sigma_consistency_check(round_reports: Sequence[Any]) -> List[Diagnostic]:
    """Flag intermediate means sitting many reported σ from the final mean."""
    if len(round_reports) < 2:
        return []
    final_mean = round_reports[-1].estimate.mean
    worst: Optional[Tuple[float, Any]] = None
    for report in round_reports[:-1]:
        std = report.estimate.std
        if std <= 0.0:
            continue
        sigmas = abs(report.estimate.mean - final_mean) / std
        if sigmas > SIGMA_DRIFT_SIGMAS and (worst is None or sigmas > worst[0]):
            worst = (sigmas, report)
    if worst is None:
        return []
    sigmas, report = worst
    return [
        _diag(
            "warning",
            "SIGMA_INCONSISTENT",
            (
                f"round {report.round_index} mean sat {sigmas:.1f} of its reported sigma "
                f"from the final mean — variance may be underestimated"
            ),
            round_index=report.round_index,
            round_mean=report.estimate.mean,
            final_mean=final_mean,
            sigmas=sigmas,
        )
    ]


def _factor_checks(factors: Sequence[FactorHealth]) -> List[Diagnostic]:
    """Per-factor checks in index order: ESS, starvation, discard burn."""
    diagnostics: List[Diagnostic] = []
    for factor in factors:
        if (
            factor.method == "importance"
            and factor.effective_sample_size is not None
            and factor.samples > 0
        ):
            ess_ratio = factor.effective_sample_size / factor.samples
            if ess_ratio < ESS_RATIO_FLOOR:
                diagnostics.append(
                    _diag(
                        "warning",
                        "ESS_DEGENERATE",
                        (
                            f"factor {factor.index}: importance weights degenerate "
                            f"(ESS/n = {ess_ratio:.3f} < {ESS_RATIO_FLOOR})"
                        ),
                        factor=factor.index,
                        effective_sample_size=factor.effective_sample_size,
                        samples=factor.samples,
                        ess_ratio=ess_ratio,
                    )
                )
        if factor.zero_share_streak >= STARVATION_STREAK:
            diagnostics.append(
                _diag(
                    "warning",
                    "FACTOR_STARVED",
                    (
                        f"factor {factor.index}: {factor.zero_share_streak} consecutive rounds "
                        f"with zero allocated samples despite the Laplace sigma floor"
                    ),
                    factor=factor.index,
                    zero_share_streak=factor.zero_share_streak,
                )
            )
        starved = [s for s in factor.strata if s.sampleable and s.zero_allocation_streak >= STARVATION_STREAK]
        if starved:
            worst = max(starved, key=lambda s: s.zero_allocation_streak)
            diagnostics.append(
                _diag(
                    "warning",
                    "STRATUM_STARVED",
                    (
                        f"factor {factor.index}: {len(starved)} of {len(factor.strata)} strata starved "
                        f"(worst streak {worst.zero_allocation_streak} rounds, mass {worst.weight:.3g})"
                    ),
                    factor=factor.index,
                    starved_strata=len(starved),
                    total_strata=len(factor.strata),
                    worst_streak=worst.zero_allocation_streak,
                    worst_weight=worst.weight,
                )
            )
        drawn = factor.samples + factor.discarded_samples
        if factor.discarded_samples > 0 and drawn > 0:
            burn = factor.discarded_samples / drawn
            if burn > DISCARD_BURN_CEILING:
                diagnostics.append(
                    _diag(
                        "warning",
                        "DISCARD_BURN",
                        (
                            f"factor {factor.index}: adaptive splits discarded "
                            f"{burn:.0%} of {drawn} drawn samples"
                        ),
                        factor=factor.index,
                        discarded_samples=factor.discarded_samples,
                        drawn_samples=drawn,
                        burn_rate=burn,
                    )
                )
    return diagnostics


def _histogram_seconds(metrics: MetricsSnapshot, name: str) -> float:
    """Total observed seconds across every label set of one histogram."""
    return sum(hist.total for (metric, _), hist in metrics.histograms.items() if metric == name)


def _timing_checks(metrics: MetricsSnapshot) -> List[Diagnostic]:
    """Wall-clock attribution from span histograms (``timing=True`` records)."""
    rounds_seconds = _histogram_seconds(metrics, "qcoral_round_seconds")
    paving_seconds = _histogram_seconds(metrics, "icp_pave_seconds")
    store_seconds = _histogram_seconds(metrics, "store_get_seconds") + _histogram_seconds(
        metrics, "store_merge_seconds"
    )
    compile_seconds = metrics.counter_total("kernel_compile_seconds_total")
    overhead = paving_seconds + store_seconds + compile_seconds
    attributed = rounds_seconds + overhead
    diagnostics = [
        _diag(
            "info",
            "WALL_CLOCK_ATTRIBUTION",
            (
                f"sampling rounds {rounds_seconds:.3f}s, paving {paving_seconds:.3f}s, "
                f"kernel compile {compile_seconds:.3f}s, store I/O {store_seconds:.3f}s"
            ),
            timing=True,
            rounds_seconds=rounds_seconds,
            paving_seconds=paving_seconds,
            kernel_compile_seconds=compile_seconds,
            store_seconds=store_seconds,
        )
    ]
    if attributed > 0.0:
        fraction = overhead / attributed
        if fraction > OVERHEAD_FRACTION_CEILING:
            diagnostics.append(
                _diag(
                    "warning",
                    "OVERHEAD_DOMINANT",
                    (
                        f"{fraction:.0%} of attributed wall-clock went to paving/compile/store "
                        f"overhead rather than sampling"
                    ),
                    timing=True,
                    overhead_fraction=fraction,
                    overhead_seconds=overhead,
                    sampling_seconds=rounds_seconds,
                )
            )
    return diagnostics


def diagnose_run(
    round_reports: Sequence[Any],
    factors: Sequence[FactorHealth] = (),
    *,
    target_std: Optional[float] = None,
    metrics: Optional[MetricsSnapshot] = None,
) -> Tuple[Diagnostic, ...]:
    """The full diagnostics pass over one finished run.

    ``round_reports`` are the engine's :class:`~repro.core.qcoral.RoundReport`
    values (anything with ``round_index`` / ``total_samples`` / ``estimate``
    works); ``factors`` the per-factor health inputs in metric-label order.
    ``metrics`` is optional — without a snapshot the wall-clock attribution
    records are simply skipped, which keeps the remaining output identical
    whether observability was enabled or not.

    Emission order is fixed (trajectory, consistency, per-factor in index
    order, timing last) so equal inputs produce byte-identical output.
    """
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_convergence_checks(round_reports, target_std))
    diagnostics.extend(_sigma_consistency_check(round_reports))
    diagnostics.extend(_factor_checks(factors))
    if metrics is not None:
        diagnostics.extend(_timing_checks(metrics))
    return tuple(diagnostics)


def reuse_summary_diagnostic(
    *,
    factors_total: int,
    factors_reused: int,
    factors_unchanged: int,
    factors_changed: int,
    factors_added: int,
    factors_removed: int,
    samples_saved: int,
    residual_budget: int,
    samples_drawn: int,
) -> Diagnostic:
    """The REUSE_SUMMARY record of an incremental (baseline-diffed) run.

    Emitted by the incremental layer (:mod:`repro.incremental.plan`) rather
    than :func:`diagnose_run` — it needs the constraint-set diff and the
    budget plan, which only exist for runs executed against a baseline.
    A pure function of plan numbers and the run's sample count, so it is
    ``timing=False`` and covered by the fixed-seed bit-identity contract.
    """
    return _diag(
        "info",
        "REUSE_SUMMARY",
        (
            f"reused {factors_reused}/{factors_total} factors "
            f"({factors_unchanged} unchanged, {factors_changed} changed, "
            f"{factors_added} added, {factors_removed} removed); "
            f"{samples_saved} samples saved, residual budget {residual_budget}, "
            f"{samples_drawn} drawn"
        ),
        factors_total=factors_total,
        factors_reused=factors_reused,
        factors_unchanged=factors_unchanged,
        factors_changed=factors_changed,
        factors_added=factors_added,
        factors_removed=factors_removed,
        samples_saved=samples_saved,
        residual_budget=residual_budget,
        samples_drawn=samples_drawn,
    )


def deterministic_diagnostics(diagnostics: Sequence[Diagnostic]) -> Tuple[Diagnostic, ...]:
    """The subset covered by the fixed-seed bit-identity contract."""
    return tuple(d for d in diagnostics if not d.timing)


def diagnostics_from_payload(payload: Sequence[Mapping[str, Any]]) -> Tuple[Diagnostic, ...]:
    """Parse a serialised diagnostics list (e.g. from a ledger entry)."""
    if not isinstance(payload, Sequence) or isinstance(payload, (str, bytes)):
        raise ValueError("malformed diagnostics payload: expected a list")
    return tuple(Diagnostic.from_dict(item) for item in payload)
