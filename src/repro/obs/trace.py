"""Span-based tracer: nested spans with monotonic timings and JSONL export.

Spans nest through a thread-local stack, so concurrent driver threads each
get a consistent parent chain without sharing state.  Timings come from
``time.monotonic`` only — the tracer never reads an RNG or perturbs one, so
fixed-seed analysis results are bit-identical with tracing on, off, or at any
sampling rate.

Sampling is deterministic, not random: ``sample_every=N`` keeps the 1st,
(N+1)th, (2N+1)th, ... span *of each name* (a per-name modulo counter).  A
random sampler would either consume the caller's RNG stream (perturbation) or
need its own seed plumbing; the counter gives reproducible traces for free.

Dropped spans still occupy their slot in the parent chain — a kept child of a
dropped parent records the dropped parent's id, so trace consumers see a
consistent (if partial) tree at any sampling rate.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from contextlib import contextmanager


class Tracer:
    """Collects nested spans; thread-safe; buffers until :meth:`drain`."""

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self._sample_every = sample_every
        self._epoch = time.monotonic()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._name_counts: Dict[str, int] = {}
        self._spans: List[Dict[str, Any]] = []

    @property
    def sample_every(self) -> int:
        """Keep one in this many spans of each name (1 = keep everything)."""
        return self._sample_every

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[None]:
        """Time a nested span; record it when the per-name sampler keeps it."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            seen = self._name_counts.get(name, 0)
            self._name_counts[name] = seen + 1
        recorded = seen % self._sample_every == 0
        stack = self._stack()
        parent_id: Optional[int] = stack[-1] if stack else None
        stack.append(span_id)
        started = time.monotonic()
        try:
            yield
        finally:
            duration = time.monotonic() - started
            stack.pop()
            if recorded:
                record: Dict[str, Any] = {
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "name": name,
                    "start": started - self._epoch,
                    "duration": duration,
                }
                if attributes:
                    record["attributes"] = attributes
                with self._lock:
                    self._spans.append(record)

    def drain(self) -> List[Dict[str, Any]]:
        """Return the buffered span records and clear the buffer."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
