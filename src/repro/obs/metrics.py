"""Metrics registry: counters, gauges, and histograms with mergeable snapshots.

Design constraints, in order of importance:

1. **Zero perturbation.**  Nothing here draws random numbers or reads
   wall-clock time on its own; the registry only stores what callers hand it.
   With a fixed master seed, results are bit-identical whether a registry is
   attached or not.
2. **Mergeable.**  Worker processes cannot mutate the driver's registry, so
   instrumented tasks accumulate a picklable :class:`MetricsDelta` and ship it
   back on the task result — the scheduler folds deltas in deterministic task
   order, exactly like sample counts.  :class:`MetricsSnapshot` values merge
   the same way, so per-run snapshots can be aggregated across runs.
3. **Cheap.**  One lock, dict updates, no string formatting on the hot path.
   Label sets are normalised to sorted tuples once per call.

Metric identity is ``(name, sorted label items)``; exporters render that as
the Prometheus-style ``name{key="value"}`` string.  Histograms use one fixed
latency bucket ladder (sub-millisecond to seconds) — enough resolution for
chunk/store/compile latencies without per-metric configuration.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Histogram bucket upper bounds (seconds); ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: A normalised label set: items sorted by key.
LabelItems = Tuple[Tuple[str, str], ...]

#: A metric identity: name plus normalised labels.
MetricKey = Tuple[str, LabelItems]


def label_items(labels: Mapping[str, Any]) -> LabelItems:
    """Normalise a label mapping to its canonical sorted-items form."""
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def render_key(name: str, labels: LabelItems) -> str:
    """Render a metric key as ``name`` or ``name{k="v",...}`` (Prometheus style)."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable state of one histogram: fixed buckets plus running moments."""

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]  # one slot per bucket bound, plus a final +Inf slot
    total: float
    count: int
    minimum: float
    maximum: float

    def merged(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two histograms of the same metric (bucket counts add)."""
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different bucket ladders")
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (per-bucket counts keyed by upper bound)."""
        bucket_counts = {str(bound): count for bound, count in zip(self.buckets, self.counts)}
        bucket_counts["+Inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "buckets": bucket_counts,
        }


class _Histogram:
    """Mutable histogram cell inside a registry (no lock of its own)."""

    __slots__ = ("counts", "total", "count", "minimum", "maximum")

    def __init__(self) -> None:
        self.counts = [0] * (len(DEFAULT_BUCKETS) + 1)
        self.total = 0.0
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        slot = len(DEFAULT_BUCKETS)
        for index, bound in enumerate(DEFAULT_BUCKETS):
            if value <= bound:
                slot = index
                break
        self.counts[slot] += 1
        self.total += value
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            buckets=DEFAULT_BUCKETS,
            counts=tuple(self.counts),
            total=self.total,
            count=self.count,
            minimum=self.minimum if self.count else 0.0,
            maximum=self.maximum if self.count else 0.0,
        )


@dataclass(frozen=True)
class MetricsDelta:
    """A picklable batch of metric updates produced off the driver thread.

    Worker-side instrumentation cannot touch the driver's registry (it may
    live in another process), so it accumulates ``(name, labels, amount)``
    counter increments and ``(name, labels, value)`` histogram observations
    here and ships the delta back on the task result.  The scheduler merges
    deltas in deterministic task order via :meth:`MetricsRegistry.merge_delta`.
    """

    counters: Tuple[Tuple[str, LabelItems, float], ...] = ()
    observations: Tuple[Tuple[str, LabelItems, float], ...] = ()

    def merged(self, other: "MetricsDelta") -> "MetricsDelta":
        """Concatenate two deltas (order-preserving)."""
        return MetricsDelta(
            counters=self.counters + other.counters,
            observations=self.observations + other.observations,
        )


class DeltaBuilder:
    """Mutable accumulator for building a :class:`MetricsDelta` in a worker."""

    __slots__ = ("_counters", "_observations")

    def __init__(self) -> None:
        self._counters: List[Tuple[str, LabelItems, float]] = []
        self._observations: List[Tuple[str, LabelItems, float]] = []

    def count(self, name: str, amount: float = 1, **labels: Any) -> None:
        self._counters.append((name, label_items(labels), float(amount)))

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self._observations.append((name, label_items(labels), float(value)))

    def build(self) -> MetricsDelta:
        return MetricsDelta(counters=tuple(self._counters), observations=tuple(self._observations))


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable view of a registry at one instant; merges across runs."""

    counters: Mapping[MetricKey, float] = field(default_factory=dict)
    gauges: Mapping[MetricKey, float] = field(default_factory=dict)
    histograms: Mapping[MetricKey, HistogramSnapshot] = field(default_factory=dict)

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: counters add, gauges last-write-wins,
        histograms merge bucket-wise."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0.0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for key, hist in other.histograms.items():
            existing = histograms.get(key)
            histograms[key] = existing.merged(hist) if existing is not None else hist
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def counter(self, name: str, **labels: Any) -> float:
        """Value of one counter (0.0 when never incremented)."""
        return self.counters.get((name, label_items(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter over every label set."""
        return sum(value for (metric, _), value in self.counters.items() if metric == name)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form with Prometheus-style string keys, sorted."""
        return {
            "counters": {render_key(name, labels): value for (name, labels), value in sorted(self.counters.items())},
            "gauges": {render_key(name, labels): value for (name, labels), value in sorted(self.gauges.items())},
            "histograms": {
                render_key(name, labels): hist.to_dict() for (name, labels), hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsSnapshot":
        """Inverse of :meth:`to_dict` (labels are parsed back out of the keys).

        Validates the payload shape — snapshots persisted by ledgers travel
        across versions, so malformed input raises a ``ValueError`` naming the
        offending key instead of a bare ``KeyError``/``TypeError``.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(f"malformed metrics snapshot: expected a mapping, got {type(payload).__name__}")
        counters = _validated_scalar_section(payload, "counters")
        gauges = _validated_scalar_section(payload, "gauges")
        raw_histograms = payload.get("histograms", {})
        if not isinstance(raw_histograms, Mapping):
            raise ValueError("malformed metrics snapshot: 'histograms' must be a mapping")
        histograms = {}
        for key, hist in raw_histograms.items():
            histograms[_parse_key(key)] = _histogram_from_dict(key, hist)
        return cls(counters=counters, gauges=gauges, histograms=histograms)


def _validated_scalar_section(payload: Mapping[str, Any], section: str) -> Dict[MetricKey, float]:
    """Parse one ``counters``/``gauges`` block, rejecting non-numeric values."""
    raw = payload.get(section, {})
    if not isinstance(raw, Mapping):
        raise ValueError(f"malformed metrics snapshot: {section!r} must be a mapping")
    values: Dict[MetricKey, float] = {}
    for key, value in raw.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"malformed metrics snapshot: {section}[{key!r}] is not a number")
        values[_parse_key(key)] = float(value)
    return values


def _histogram_from_dict(key: str, hist: Any) -> HistogramSnapshot:
    """Parse one serialised histogram, naming the offending key on failure."""
    where = f"histograms[{key!r}]"
    if not isinstance(hist, Mapping):
        raise ValueError(f"malformed metrics snapshot: {where} must be a mapping")
    raw_buckets = hist.get("buckets")
    if not isinstance(raw_buckets, Mapping):
        raise ValueError(f"malformed metrics snapshot: {where}.buckets must be a mapping")
    if "+Inf" not in raw_buckets:
        raise ValueError(f"malformed metrics snapshot: {where}.buckets missing '+Inf'")
    try:
        buckets = tuple(sorted(float(bound) for bound in raw_buckets if bound != "+Inf"))
    except (TypeError, ValueError):
        raise ValueError(f"malformed metrics snapshot: {where}.buckets has a non-numeric bound") from None
    counts = []
    for bound in tuple(str(bound) for bound in buckets) + ("+Inf",):
        value = raw_buckets[bound]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"malformed metrics snapshot: {where}.buckets[{bound!r}] is not an integer count")
        counts.append(value)
    fields = {}
    for name, caster in (("sum", float), ("count", int), ("min", float), ("max", float)):
        value = hist.get(name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"malformed metrics snapshot: {where}.{name} is not a number")
        fields[name] = caster(value)
    return HistogramSnapshot(
        buckets=buckets,
        counts=tuple(counts),
        total=fields["sum"],
        count=fields["count"],
        minimum=fields["min"],
        maximum=fields["max"],
    )


def _parse_key(rendered: str) -> MetricKey:
    """Parse ``name{k="v",...}`` back into a :data:`MetricKey`."""
    if "{" not in rendered:
        return rendered, ()
    name, _, rest = rendered.partition("{")
    body = rest.rstrip("}")
    items = []
    for part in body.split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        items.append((key, value.strip('"')))
    return name, tuple(sorted(items))


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, _Histogram] = {}

    def count(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Increment a monotonically growing counter."""
        key = (name, label_items(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a point-in-time gauge (last write wins)."""
        key = (name, label_items(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into a latency histogram."""
        key = (name, label_items(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram()
            histogram.observe(float(value))

    def merge_delta(self, delta: MetricsDelta) -> None:
        """Fold a worker-produced delta into this registry."""
        with self._lock:
            for name, labels, amount in delta.counters:
                key = (name, labels)
                self._counters[key] = self._counters.get(key, 0.0) + amount
        for name, labels, value in delta.observations:
            self.observe(name, value, **dict(labels))

    def merge_deltas(self, deltas: Iterable[Optional[MetricsDelta]]) -> None:
        """Fold several deltas, skipping ``None`` placeholders, in order."""
        for delta in deltas:
            if delta is not None:
                self.merge_delta(delta)

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of the current state."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={key: histogram.snapshot() for key, histogram in self._histograms.items()},
            )

    def reset(self) -> None:
        """Drop every recorded value (snapshots already taken are unaffected)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
