"""Pluggable exporters: JSONL traces, Prometheus text format, console summary.

Exporters are pure functions over drained span lists and
:class:`~repro.obs.metrics.MetricsSnapshot` values — they hold no state and
run strictly *after* analysis, so they cannot perturb results no matter what
they do.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.metrics import HistogramSnapshot, LabelItems, MetricsSnapshot

#: Schema tag stamped on the header record of every JSONL trace.
TRACE_SCHEMA = "qcoral-trace-1"

#: Keys a trace header record must carry (``qcoral obs lint-trace`` enforces
#: this; the values may be null when the producer did not know them).
TRACE_HEADER_KEYS = ("schema", "repro_version", "seed", "method", "config_fingerprint")

#: Keys every span record must carry.
TRACE_SPAN_KEYS = ("span_id", "name", "start", "duration")

#: ``# HELP`` strings for the engine's well-known metrics (exporter-side so
#: the hot path never carries help text around).
METRIC_HELP: Mapping[str, str] = {
    "qcoral_rounds_total": "Adaptive sampling rounds executed",
    "qcoral_samples_total": "Samples spent by the adaptive round loop",
    "qcoral_round_seconds": "Wall-clock duration of one adaptive round",
    "qcoral_factor_allocated_total": "Samples allocated to one factor by the budget allocator",
    "qcoral_factor_sigma": "Latest per-factor standard deviation estimate",
    "qcoral_store_outright_reuse_total": "Factors answered exactly from the store without sampling",
    "qcoral_store_warm_freeze_total": "Warm-started factors frozen without further sampling",
    "sampler_draws_total": "Samples drawn, labelled by estimation method",
    "sampler_hits_total": "Satisfying samples, labelled by estimation method",
    "importance_refinement_splits_total": "Upfront mass-driven paving splits",
    "importance_adaptive_splits_total": "Adaptive mid-run stratum refinements",
    "importance_discarded_samples_total": "Samples discarded by adaptive refinement",
    "icp_boxes_explored_total": "Boxes popped by the ICP paving solver",
    "icp_contraction_passes_total": "Contraction passes run by the ICP solver",
    "icp_pave_seconds": "Wall-clock duration of one ICP paving",
    "exec_chunks_total": "Sampling chunks executed",
    "exec_samples_total": "Samples drawn inside executor chunks",
    "exec_hits_total": "Satisfying samples inside executor chunks",
    "exec_chunk_seconds": "Wall-clock duration of one sampling chunk",
    "exec_queue_wait_seconds": "Delay between chunk dispatch and execution start",
    "exec_worker_busy_seconds_total": "Busy time accumulated per worker",
    "exec_worker_chunks_total": "Chunks executed per worker",
    "store_gets_total": "Persistent-store lookups",
    "store_hits_total": "Persistent-store lookups that found an entry",
    "store_publishes_total": "Delta publications into the persistent store",
    "store_warm_starts_total": "Factors warm-started from a store entry",
    "store_get_seconds": "Latency of one persistent-store get",
    "store_merge_seconds": "Latency of one persistent-store merge",
    "kernel_lookups_total": "Kernel cache lookups during the analysis",
    "kernel_memory_hits_total": "Kernel lookups served from the in-process LRU",
    "kernel_disk_hits_total": "Kernel lookups served from the disk source cache",
    "kernel_codegens_total": "Kernel sources generated from scratch",
    "kernel_evictions_total": "Kernels evicted from the in-process LRU",
    "kernel_disk_regens_total": "Disk-cached kernel sources regenerated after validation failure",
    "kernel_numba_fallbacks_total": "Numba-tier compilations that fell back to NumPy",
    "kernel_compile_seconds_total": "Time spent generating and compiling kernels",
}


def write_trace_jsonl(
    spans: Iterable[Mapping[str, Any]],
    path: str,
    append: bool = True,
    header: Optional[Mapping[str, Any]] = None,
) -> int:
    """Write span records as JSON Lines; returns the number of *spans* written.

    When ``header`` is given and the target file is new (or ``append`` is
    False), a self-describing header record is written first — schema tag,
    repro version, seed, method, config fingerprint — so a trace file can be
    interpreted without the producing process (``qcoral obs lint-trace``
    requires it).  Appending to an existing non-empty file never repeats the
    header.
    """
    mode = "a" if append else "w"
    fresh = mode == "w" or not os.path.exists(path) or os.path.getsize(path) == 0
    written = 0
    with open(path, mode, encoding="utf-8") as handle:
        if header is not None and fresh:
            handle.write(json.dumps(dict(header), sort_keys=True) + "\n")
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True) + "\n")
            written += 1
    return written


def lint_trace(path: str) -> List[str]:
    """Validate a JSONL trace file; returns a list of problems (empty = ok).

    Checks: the file parses line-by-line as JSON objects, line 1 is a header
    record carrying every :data:`TRACE_HEADER_KEYS` with a recognised schema
    tag, every later line is a span record with the :data:`TRACE_SPAN_KEYS`,
    non-negative start/duration, and unique span ids.  Span ids are assigned
    sequentially per producing run and restart when a later run appends to
    the same file, so uniqueness is scoped to each monotone run segment — a
    strictly decreasing id starts a new segment rather than flagging a
    duplicate.
    """
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        return [f"{path}: cannot read: {error}"]
    if not lines:
        return [f"{path}: empty trace (missing header record)"]
    seen_ids: set = set()
    previous_id: Optional[float] = None
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            problems.append(f"{path}:{line_number}: blank line")
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(f"{path}:{line_number}: not valid JSON: {error}")
            continue
        if not isinstance(record, dict):
            problems.append(f"{path}:{line_number}: expected a JSON object")
            continue
        if line_number == 1:
            if record.get("record") != "header":
                problems.append(f"{path}:1: first record must be the trace header (record='header')")
                continue
            for key in TRACE_HEADER_KEYS:
                if key not in record:
                    problems.append(f"{path}:1: header missing {key!r}")
            schema = record.get("schema")
            if isinstance(schema, str) and not schema.startswith("qcoral-trace"):
                problems.append(f"{path}:1: unrecognised trace schema {schema!r}")
            continue
        if record.get("record") == "header":
            problems.append(f"{path}:{line_number}: duplicate header record")
            continue
        missing = [key for key in TRACE_SPAN_KEYS if key not in record]
        if missing:
            problems.append(f"{path}:{line_number}: span missing {', '.join(repr(key) for key in missing)}")
            continue
        for key in ("start", "duration"):
            value = record[key]
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{path}:{line_number}: {key!r} must be a non-negative number")
        span_id = record["span_id"]
        if isinstance(span_id, (int, float)) and previous_id is not None and span_id < previous_id:
            seen_ids.clear()
        if span_id in seen_ids:
            problems.append(f"{path}:{line_number}: duplicate span_id {span_id!r}")
        seen_ids.add(span_id)
        if isinstance(span_id, (int, float)):
            previous_id = span_id
    return problems


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: LabelItems, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = labels + extra
    if not items:
        return ""
    return "{" + ",".join(f'{key}="{value}"' for key, value in items) + "}"


def _grouped(metrics: Mapping[Tuple[str, LabelItems], Any]) -> Dict[str, List[Tuple[LabelItems, Any]]]:
    groups: Dict[str, List[Tuple[LabelItems, Any]]] = {}
    for (name, labels), value in sorted(metrics.items()):
        groups.setdefault(name, []).append((labels, value))
    return groups


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []

    for name, rows in _grouped(snapshot.counters).items():
        help_text = METRIC_HELP.get(name, f"Counter {name}")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        for labels, value in rows:
            lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")

    for name, rows in _grouped(snapshot.gauges).items():
        help_text = METRIC_HELP.get(name, f"Gauge {name}")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for labels, value in rows:
            lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")

    for name, rows in _grouped(snapshot.histograms).items():
        help_text = METRIC_HELP.get(name, f"Histogram {name}")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} histogram")
        for labels, hist in rows:
            cumulative = 0
            for bound, count in zip(hist.buckets, hist.counts):
                cumulative += count
                le = (("le", _format_value(bound)),)
                lines.append(f"{name}_bucket{_render_labels(labels, le)} {cumulative}")
            cumulative += hist.counts[-1]
            lines.append(f'{name}_bucket{_render_labels(labels, (("le", "+Inf"),))} {cumulative}')
            lines.append(f"{name}_sum{_render_labels(labels)} {repr(hist.total)}")
            lines.append(f"{name}_count{_render_labels(labels)} {hist.count}")

    return "\n".join(lines) + "\n" if lines else ""


def _histogram_line(name: str, hist: HistogramSnapshot) -> str:
    return (
        f"  {name}: n={hist.count} mean={hist.mean * 1000.0:.3f}ms "
        f"min={hist.minimum * 1000.0:.3f}ms max={hist.maximum * 1000.0:.3f}ms"
    )


def console_summary(snapshot: MetricsSnapshot) -> str:
    """Human-readable one-screen summary of a snapshot."""
    lines: List[str] = []
    counters = snapshot.to_dict()["counters"]
    gauges = snapshot.to_dict()["gauges"]
    if counters:
        lines.append("counters:")
        lines.extend(f"  {key}: {_format_value(value)}" for key, value in counters.items())
    if gauges:
        lines.append("gauges:")
        lines.extend(f"  {key}: {value:.6g}" for key, value in gauges.items())
    histograms = sorted(snapshot.histograms.items())
    if histograms:
        lines.append("latencies:")
        from repro.obs.metrics import render_key

        lines.extend(_histogram_line(render_key(name, labels), hist) for (name, labels), hist in histograms)
    if not lines:
        return "no metrics recorded\n"
    return "\n".join(lines) + "\n"
