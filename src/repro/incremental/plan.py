"""The incremental budget planner: store coverage → per-factor reuse plan.

A :class:`ReusePlan` projects what an incremental run will do before it runs:
for every factor of the *candidate* version, how many stored samples the
estimate store already holds under that factor's canonical digest, and how
many samples this run still owes it.  Factors whose stored evidence covers
the whole per-factor budget are *reused outright* — the engine freezes them
before sampling (the warm-freeze path of
:meth:`~repro.core.qcoral.QCoralAnalyzer._new_state`) and the round loop's
pooled budget, which sums residual needs only, concentrates everything on
the changed factors through the configured allocation policy (Neyman when
asked for).

The plan is a *projection*, not a command: the engine remains the single
authority on reuse (a stratified entry whose paving fingerprint no longer
matches, for example, warm-starts less than the plan promised).  The
REUSE_SUMMARY diagnostic therefore reports the plan's numbers alongside the
run's actually-drawn samples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.incremental.diff import REMOVED, ConstraintDiff, FactorDelta
from repro.obs.diagnostics import reuse_summary_diagnostic
from repro.store.backends import EstimateStore, FactorCoverage


@dataclass(frozen=True)
class FactorPlan:
    """Planned treatment of one candidate-version factor."""

    delta: FactorDelta
    #: Stored samples under this factor's digest (0 when the store has none).
    stored_samples: int
    #: True when a previous run resolved the factor exactly (no sampling).
    exact: bool
    #: Samples this run still owes the factor (0 = reused outright).
    planned_samples: int

    @property
    def reused(self) -> bool:
        return self.planned_samples == 0


@dataclass(frozen=True)
class ReusePlan:
    """The projected sampling budget of one incremental run."""

    #: Per-factor nominal budget the plan was computed against.
    budget_per_factor: int
    #: One plan per candidate-version factor, in diff order.
    factors: Tuple[FactorPlan, ...]

    @property
    def total_factors(self) -> int:
        return len(self.factors)

    @property
    def reused_factors(self) -> int:
        return sum(1 for factor in self.factors if factor.reused)

    @property
    def reuse_fraction(self) -> float:
        return self.reused_factors / self.total_factors if self.factors else 0.0

    @property
    def cold_budget(self) -> int:
        """What a cold run would owe: the full budget for every factor."""
        return self.budget_per_factor * self.total_factors

    @property
    def residual_budget(self) -> int:
        """Samples the incremental run still plans to draw."""
        return sum(factor.planned_samples for factor in self.factors)

    @property
    def samples_saved(self) -> int:
        """Samples the stored evidence saves relative to a cold run."""
        return self.cold_budget - self.residual_budget

    def summary(self) -> str:
        return (
            f"{self.reused_factors}/{self.total_factors} factors reused, "
            f"{self.samples_saved} of {self.cold_budget} samples saved, "
            f"residual budget {self.residual_budget}"
        )


def plan_reuse(diff: ConstraintDiff, store: Optional[EstimateStore], budget_per_factor: int) -> ReusePlan:
    """Turn a diff plus store coverage into the incremental budget plan.

    Coverage is queried for *every* candidate factor, not only the unchanged
    ones — a changed or added factor another program already sampled under
    the same digest is a perfectly sound reuse, and the engine would take it
    whether the plan mentions it or not.  Without a store every factor plans
    its full budget (the all-cold projection).
    """
    candidate_deltas = [delta for delta in diff.deltas if delta.status != REMOVED]
    coverage = store.coverage([delta.key for delta in candidate_deltas]) if store is not None else {}
    factors = []
    for delta in candidate_deltas:
        covered = coverage.get(delta.key, FactorCoverage(samples=0, exact=False))
        planned = 0 if covered.exact else max(0, budget_per_factor - covered.samples)
        factors.append(
            FactorPlan(
                delta=delta,
                stored_samples=covered.samples,
                exact=covered.exact,
                planned_samples=planned,
            )
        )
    return ReusePlan(budget_per_factor=budget_per_factor, factors=tuple(factors))


def attach_reuse_summary(report, diff: ConstraintDiff, plan: ReusePlan):
    """Append the REUSE_SUMMARY diagnostic to a finished run's report.

    Returns a new :class:`~repro.api.report.Report` (reports are frozen)
    whose diagnostics end with the reuse record; the run ledger then carries
    it automatically.  ``samples_drawn`` comes from the report itself, so
    the diagnostic juxtaposes the plan with what actually happened.
    """
    diagnostic = reuse_summary_diagnostic(
        factors_total=plan.total_factors,
        factors_reused=plan.reused_factors,
        factors_unchanged=len(diff.unchanged),
        factors_changed=len(diff.changed),
        factors_added=len(diff.added),
        factors_removed=len(diff.removed),
        samples_saved=plan.samples_saved,
        residual_budget=plan.residual_budget,
        samples_drawn=report.total_samples,
    )
    return replace(report, diagnostics=report.diagnostics + (diagnostic,))
