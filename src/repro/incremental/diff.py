"""The constraint-set differ: factor two program versions through canonical keys.

Both versions are factored exactly the way the engine factors a run —
per-PC simplification, dependency partition over the whole constraint set,
per-block conjunct grouping — and every factor is keyed with the persistent
store's canonical digest (:class:`repro.store.keys.StoreContext`).  That
digest commits to the alpha-renamed constraint text, the profile
fingerprint, the method tag, and the estimator version, so:

* a factor whose digest appears in both versions is **unchanged** — the
  store would hand the new run the old run's counts, and a renamed but
  alpha-equivalent factor lands here automatically;
* an old factor and a new factor that share no digest but look like two
  revisions of one constraint (same variable set, or failing that the same
  structural skeleton) pair up as **changed**;
* everything else is **added** (new version only) or **removed** (old
  version only).

The changed/added/removed distinction is reporting vocabulary — the budget
planner treats all three identically (no stored coverage ⇒ sample fresh).
Only *unchanged* has engine-level meaning, and it is exact by construction
because it reuses the very digests the store indexes by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dependency import compute_dependency_partition
from repro.core.methods import store_method_tag
from repro.core.profiles import UsageProfile
from repro.errors import ConfigurationError
from repro.lang import ast
from repro.lang.analysis import group_constraints_by_block
from repro.lang.canonical import skeleton
from repro.lang.simplify import simplify_path_condition
from repro.store.keys import StoreContext

#: Classification statuses of a :class:`FactorDelta`.
UNCHANGED = "unchanged"
CHANGED = "changed"
ADDED = "added"
REMOVED = "removed"


@dataclass(frozen=True)
class FactorVersion:
    """One factor of one version, resolved to its canonical store identity."""

    #: The store digest — the key the engine's cross-run reuse indexes by.
    digest: str
    #: Alpha-renamed canonical constraint text.
    text: str
    #: Canonical-position-ordered profile fingerprint.
    fingerprint: str
    #: Original variable names in canonical order.
    variables: Tuple[str, ...]
    #: Structural skeleton (variables and numeric literals abstracted) used
    #: to pair edited factors across versions.
    skeleton: str
    #: The simplified factor itself.
    factor: ast.PathCondition


@dataclass(frozen=True)
class FactorDelta:
    """One factor's fate across the two versions."""

    status: str
    old: Optional[FactorVersion] = None
    new: Optional[FactorVersion] = None

    def __post_init__(self) -> None:
        if self.status in (UNCHANGED, CHANGED) and (self.old is None or self.new is None):
            raise ValueError(f"a {self.status} delta needs both versions")
        if self.status == ADDED and (self.old is not None or self.new is None):
            raise ValueError("an added delta has a new version only")
        if self.status == REMOVED and (self.old is None or self.new is not None):
            raise ValueError("a removed delta has an old version only")

    @property
    def key(self) -> str:
        """The digest the *current* (new) version samples under.

        For removed factors this is the old digest — useful for reporting,
        but a removed factor is never part of the new run's plan.
        """
        version = self.new if self.new is not None else self.old
        assert version is not None
        return version.digest

    @property
    def variables(self) -> Tuple[str, ...]:
        version = self.new if self.new is not None else self.old
        assert version is not None
        return version.variables


@dataclass(frozen=True)
class ConstraintDiff:
    """The factored difference between two versions of a constraint set."""

    #: Store method tag both versions were keyed under.
    method: str
    #: One delta per factor, unchanged first, then changed, added, removed;
    #: deterministic order within each class (sorted by canonical text).
    deltas: Tuple[FactorDelta, ...]

    def _by_status(self, status: str) -> Tuple[FactorDelta, ...]:
        return tuple(delta for delta in self.deltas if delta.status == status)

    @property
    def unchanged(self) -> Tuple[FactorDelta, ...]:
        return self._by_status(UNCHANGED)

    @property
    def changed(self) -> Tuple[FactorDelta, ...]:
        return self._by_status(CHANGED)

    @property
    def added(self) -> Tuple[FactorDelta, ...]:
        return self._by_status(ADDED)

    @property
    def removed(self) -> Tuple[FactorDelta, ...]:
        return self._by_status(REMOVED)

    @property
    def candidate_factor_keys(self) -> Tuple[str, ...]:
        """Digests of every factor the *new* version quantifies."""
        return tuple(delta.key for delta in self.deltas if delta.new is not None)

    @property
    def baseline_factor_keys(self) -> Tuple[str, ...]:
        """Digests of every factor the *old* version quantified."""
        return tuple(delta.old.digest for delta in self.deltas if delta.old is not None)

    @property
    def candidate_factor_count(self) -> int:
        return sum(1 for delta in self.deltas if delta.new is not None)

    @property
    def unchanged_fraction(self) -> float:
        """Share of the new version's factors the diff proved unchanged."""
        total = self.candidate_factor_count
        return len(self.unchanged) / total if total else 0.0

    def summary(self) -> str:
        return (
            f"{len(self.unchanged)} unchanged, {len(self.changed)} changed, "
            f"{len(self.added)} added, {len(self.removed)} removed"
        )


def factor_versions(
    constraint_set: ast.ConstraintSet,
    profile: UsageProfile,
    method: str,
    *,
    simplify: bool = True,
) -> Dict[str, FactorVersion]:
    """Factor one version and key every distinct factor canonically.

    Mirrors the engine's planning pass (simplify → dependency partition →
    per-block grouping) so the digests here are exactly the keys the
    analyzer will look up in the store.  Returns digest → version; a factor
    appearing in several path conditions resolves to one entry, like the
    engine's in-run sharing.
    """
    profile.check_covers(constraint_set.free_variables())
    path_conditions = [
        simplify_path_condition(pc) if simplify else pc for pc in constraint_set.path_conditions
    ]
    partition = compute_dependency_partition(path_conditions)
    context = StoreContext(profile, method)
    versions: Dict[str, FactorVersion] = {}
    for pc in path_conditions:
        if not pc.constraints:
            continue
        for _, factor in group_constraints_by_block(pc, tuple(partition)):
            key = context.key_for(factor)
            if key.digest not in versions:
                versions[key.digest] = FactorVersion(
                    digest=key.digest,
                    text=key.pc_text,
                    fingerprint=key.fingerprint,
                    variables=key.variables,
                    skeleton=skeleton(factor),
                    factor=factor,
                )
    return versions


def _pair_edits(
    old_only: List[FactorVersion], new_only: List[FactorVersion]
) -> Tuple[List[Tuple[FactorVersion, FactorVersion]], List[FactorVersion], List[FactorVersion]]:
    """Pair leftover old/new factors that look like revisions of one another.

    Two deterministic passes: first by identical original-variable set (an
    edited threshold keeps its variables), then by structural skeleton (a
    renamed-and-edited factor keeps its shape).  Within a group both sides
    are sorted by canonical text, so pairing never depends on dict order.
    """
    pairs: List[Tuple[FactorVersion, FactorVersion]] = []
    for key_of in (
        lambda version: ("vars",) + tuple(sorted(version.variables)),
        lambda version: ("skeleton", version.skeleton),
    ):
        old_groups: Dict[Tuple, List[FactorVersion]] = {}
        for version in old_only:
            old_groups.setdefault(key_of(version), []).append(version)
        matched_old: set = set()
        matched_new: set = set()
        for version in sorted(new_only, key=lambda v: (v.text, v.fingerprint)):
            group = old_groups.get(key_of(version))
            if group:
                group.sort(key=lambda v: (v.text, v.fingerprint))
                partner = group.pop(0)
                pairs.append((partner, version))
                matched_old.add(partner.digest)
                matched_new.add(version.digest)
        old_only = [version for version in old_only if version.digest not in matched_old]
        new_only = [version for version in new_only if version.digest not in matched_new]
    return pairs, old_only, new_only


def diff_constraint_sets(
    baseline: ast.ConstraintSet,
    candidate: ast.ConstraintSet,
    profile: UsageProfile,
    *,
    config=None,
    method: Optional[str] = None,
    baseline_profile: Optional[UsageProfile] = None,
    simplify: bool = True,
) -> ConstraintDiff:
    """Diff two versions of a constraint set through canonical factor keys.

    ``profile`` is the usage profile the *candidate* runs under;
    ``baseline_profile`` defaults to the same profile (pass the old one when
    the edit renamed inputs or moved their distributions).  The method tag
    comes from ``config`` (a :class:`~repro.core.qcoral.QCoralConfig`, via
    :func:`~repro.core.methods.store_method_tag`) or an explicit ``method``
    string; exactly one of the two must be given.
    """
    if (config is None) == (method is None):
        raise ConfigurationError("diff_constraint_sets needs a config= or a method= tag (not both)")
    tag = method if method is not None else store_method_tag(config)
    old_versions = factor_versions(
        baseline, baseline_profile if baseline_profile is not None else profile, tag, simplify=simplify
    )
    new_versions = factor_versions(candidate, profile, tag, simplify=simplify)

    unchanged = [
        FactorDelta(UNCHANGED, old=old_versions[digest], new=new_versions[digest])
        for digest in sorted(set(old_versions) & set(new_versions), key=lambda d: new_versions[d].text)
    ]
    old_only = [old_versions[digest] for digest in sorted(set(old_versions) - set(new_versions))]
    new_only = [new_versions[digest] for digest in sorted(set(new_versions) - set(old_versions))]
    pairs, removed_versions, added_versions = _pair_edits(old_only, new_only)
    changed = [
        FactorDelta(CHANGED, old=old, new=new)
        for old, new in sorted(pairs, key=lambda pair: pair[1].text)
    ]
    added = [
        FactorDelta(ADDED, new=version)
        for version in sorted(added_versions, key=lambda v: (v.text, v.fingerprint))
    ]
    removed = [
        FactorDelta(REMOVED, old=version)
        for version in sorted(removed_versions, key=lambda v: (v.text, v.fingerprint))
    ]
    return ConstraintDiff(method=tag, deltas=tuple(unchanged + changed + added + removed))
