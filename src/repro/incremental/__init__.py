"""Incremental re-quantification for evolving programs.

The persistent estimate store (PR 3) made per-factor estimates durable across
runs; the run ledger (PR 8) made whole runs comparable across revisions.
This package closes the loop for *program evolution*: given two versions of
a constraint set, it answers "which factors did the edit actually touch?"
and turns the answer into a sampling budget that shrinks with the size of
the change.

Three layers:

* :mod:`repro.incremental.diff` — the constraint-set differ.  Both versions
  are factored exactly as the engine factors them (simplification,
  dependency partition, per-block grouping) and keyed with the store's
  alpha-renamed canonical digests, so a factor classifies as *unchanged*
  precisely when the store would let the new run reuse the old run's counts.
* :mod:`repro.incremental.plan` — the budget planner.  Store coverage
  queries per factor turn the diff into a :class:`~repro.incremental.plan.ReusePlan`:
  unchanged-and-covered factors are reused outright (zero samples, exactly
  like a warm store freeze) and the entire budget concentrates on the
  changed residual through the engine's existing allocation machinery.
* The ``qcoral ci`` command (:mod:`repro.cli`) — runs the incremental
  quantification, records it in the run ledger, compares against the
  baseline family's previous entry with
  :func:`~repro.obs.ledger.estimate_drift_sigmas`, and exits non-zero on
  drift or a missed reliability floor.

Bit-identity contract: an incremental run whose diff finds *everything*
changed draws exactly what a cold run draws — store lookups that miss never
touch an RNG stream — so it is bit-identical to the cold run at the same
seed.
"""

from repro.incremental.diff import (
    ADDED,
    CHANGED,
    REMOVED,
    UNCHANGED,
    ConstraintDiff,
    FactorDelta,
    FactorVersion,
    diff_constraint_sets,
)
from repro.incremental.plan import FactorPlan, ReusePlan, attach_reuse_summary, plan_reuse

__all__ = [
    "ADDED",
    "CHANGED",
    "REMOVED",
    "UNCHANGED",
    "ConstraintDiff",
    "FactorDelta",
    "FactorVersion",
    "diff_constraint_sets",
    "FactorPlan",
    "ReusePlan",
    "attach_reuse_summary",
    "plan_reuse",
]
