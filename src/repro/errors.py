"""Exception hierarchy for the qCORAL reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
downstream user can catch a single exception type at the API boundary while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` package."""


class IntervalError(ReproError):
    """Raised when an interval operation is given invalid bounds or arguments."""


class EmptyIntervalError(IntervalError):
    """Raised when an operation requires a non-empty interval but got an empty one."""


class ParseError(ReproError):
    """Raised by the constraint-language and mini-language parsers on bad input."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class EvaluationError(ReproError):
    """Raised when a concrete or interval evaluation cannot be completed."""


class UnknownVariableError(EvaluationError):
    """Raised when evaluation encounters a variable with no binding or domain."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unknown variable: {name!r}")


class UnknownFunctionError(EvaluationError):
    """Raised when evaluation encounters an unsupported function symbol."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unknown function: {name!r}")


class DomainError(ReproError):
    """Raised when an input domain is missing, unbounded or inconsistent."""


class ICPError(ReproError):
    """Raised when the interval-constraint-propagation solver fails."""


class SymbolicExecutionError(ReproError):
    """Raised by the mini-language symbolic executor."""


class AnalysisError(ReproError):
    """Raised by the probabilistic-analysis layer (qCORAL and baselines)."""


class ConfigurationError(ReproError):
    """Raised when an analysis or solver configuration is invalid."""


class UsageError(ReproError):
    """Raised when a CLI invocation is malformed or its inputs are unusable.

    The command-line layer maps this to exit code 2, keeping it distinct
    from a *gate verdict* (exit 1): ``qcoral ci`` and ``qcoral obs diff``
    exit 1 only when the gate they implement actually tripped, never because
    an input file was missing or a flag combination made no sense.
    """
