"""Benchmark subjects used to reproduce the paper's evaluation tables."""

from repro.subjects import aerospace, discrete, evolution, programs, solids, volcomp_suite
from repro.subjects.discrete import (
    DiscreteSubject,
    all_discrete_subjects,
    discrete_subject_by_name,
    exact_probability,
)
from repro.subjects.solids import Solid, VolumeEstimate, all_solids, estimate_volume, solid_by_name
from repro.subjects.volcomp_suite import (
    VolCompAssertion,
    VolCompSubject,
    all_assertion_cases,
)
from repro.subjects.aerospace import AerospaceSubject

__all__ = [
    "solids",
    "volcomp_suite",
    "aerospace",
    "programs",
    "discrete",
    "evolution",
    "DiscreteSubject",
    "all_discrete_subjects",
    "discrete_subject_by_name",
    "exact_probability",
    "Solid",
    "VolumeEstimate",
    "all_solids",
    "solid_by_name",
    "estimate_volume",
    "VolCompSubject",
    "VolCompAssertion",
    "all_assertion_cases",
    "AerospaceSubject",
]
