"""Aerospace subjects of the paper's Table 4 (RQ3): Apollo and TSAFE.

The original subjects are Java translations of Simulink models (Apollo Lunar
Autopilot) and the TSAFE Conflict Probe / Turn Logic modules; their symbolic
execution with SPF produced 5,779 and 225 path constraints respectively, rich
in ``sqrt``/``pow``/trigonometric terms with high variable interdependence.
Neither code base is redistributable here, so each subject is modelled at the
*path-constraint level*: a deterministic generator builds a family of pairwise
disjoint path conditions as the leaves of a synthetic decision tree whose
per-level guard conditions use the same function vocabulary (``sqrt``, ``pow``,
``sin``, ``cos``, ``tan``, ``atan2``) and the same kind of variable coupling the
paper describes.  Disjointness by construction and shared guards across paths
are exactly the structural properties qCORAL's composition rules exploit, so
the Table 4 comparison (Monte Carlo vs qCORAL{} vs {STRAT} vs
{STRAT,PARTCACHE}) remains meaningful on these models.

As in the paper, 70 % of the generated path conditions (in depth-first order)
are selected for quantification so the target probability is bounded away from
0 and 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.profiles import UsageProfile
from repro.lang import ast
from repro.lang.parser import parse_constraint


@dataclass(frozen=True)
class AerospaceSubject:
    """One Table 4 subject: input bounds, guard conditions, selected PCs."""

    name: str
    bounds: Dict[str, Tuple[float, float]]
    constraint_set: ast.ConstraintSet
    total_paths: int
    selected_fraction: float

    def profile(self) -> UsageProfile:
        """Uniform usage profile over the subject's input bounds."""
        return UsageProfile.uniform(self.bounds)

    @property
    def selected_paths(self) -> int:
        """Number of path conditions actually quantified."""
        return len(self.constraint_set.path_conditions)


def _decision_tree_paths(guards: Sequence[ast.Constraint], fraction: float) -> Tuple[ast.ConstraintSet, int]:
    """Disjoint path conditions from a balanced decision tree over ``guards``.

    Every leaf corresponds to one truth assignment of the guard list; the leaf
    path condition conjoins each guard or its negation.  Leaves are enumerated
    in depth-first order (guard order = tree level order) and the first
    ``fraction`` of them is selected, mimicking the paper's "first 70 % of the
    PCs in bounded depth-first order".
    """
    depth = len(guards)
    total = 2 ** depth
    selected_count = max(1, int(round(total * fraction)))
    path_conditions: List[ast.PathCondition] = []
    for index, decisions in enumerate(itertools.product((True, False), repeat=depth)):
        if index >= selected_count:
            break
        conjuncts = [guard if taken else guard.negate() for guard, taken in zip(guards, decisions)]
        path_conditions.append(ast.PathCondition.of(conjuncts, label=f"path{index}"))
    return ast.ConstraintSet.of(path_conditions), total


def _round2(value: float) -> str:
    return f"{value:.4f}"


def apollo(depth: int = 9, fraction: float = 0.7, seed: int = 2014) -> AerospaceSubject:
    """Apollo-like subject: many paths, ``sqrt``/``pow`` guards, moderate coupling.

    ``depth`` controls the number of guard levels (2**depth total paths); the
    default of 9 keeps laptop-scale run times while preserving the "thousands
    of paths" character of the original (the paper's Apollo has 5,779 PCs —
    use ``depth=13`` to reach that scale).
    """
    rng = np.random.default_rng(seed)
    bounds = {
        "px": (-10.0, 10.0),
        "py": (-10.0, 10.0),
        "pz": (-5.0, 5.0),
        "vx": (-2.0, 2.0),
        "vy": (-2.0, 2.0),
        "vz": (-1.0, 1.0),
    }
    # Each guard predicates on exactly one of three variable groups — position
    # (px, py), horizontal velocity (vx, vy), vertical state (pz, vz) — so the
    # dependency partition decomposes every path condition into three factors
    # that recur across paths; this is the structure that makes PARTCACHE pay
    # off on Apollo in the paper's Table 4.
    templates = (
        lambda t: f"sqrt(px * px + py * py) <= {_round2(t * 14.0)}",
        lambda t: f"vx * vx + vy * vy <= {_round2(t * 6.0)}",
        lambda t: f"pow(pz, 2) - vz <= {_round2(t * 26.0 - 1.0)}",
        lambda t: f"px * py <= {_round2((t - 0.5) * 60.0)}",
        lambda t: f"sqrt(vx * vx + vy * vy) <= {_round2(t * 2.5)}",
        lambda t: f"abs(pz) + abs(vz) <= {_round2(t * 5.0)}",
    )
    guards = []
    for level in range(depth):
        template = templates[level % len(templates)]
        threshold = float(rng.uniform(0.3, 0.7))
        guards.append(parse_constraint(template(threshold)))
    constraint_set, total = _decision_tree_paths(guards, fraction)
    return AerospaceSubject("Apollo", bounds, constraint_set, total, fraction)


def tsafe_conflict(depth: int = 5, fraction: float = 0.7, seed: int = 42) -> AerospaceSubject:
    """TSAFE Conflict Probe model: few paths, heavy trigonometry, tight coupling."""
    rng = np.random.default_rng(seed)
    bounds = {
        "x1": (0.0, 100.0),
        "y1": (0.0, 100.0),
        "x2": (0.0, 100.0),
        "y2": (0.0, 100.0),
        "psi1": (-3.14159, 3.14159),
        "psi2": (-3.14159, 3.14159),
    }
    templates = (
        lambda t: (
            "sqrt((x1 - x2) * (x1 - x2) + (y1 - y2) * (y1 - y2)) <= "
            f"{_round2(20.0 + t * 100.0)}"
        ),
        lambda t: f"cos(psi1) * (x2 - x1) + sin(psi1) * (y2 - y1) >= {_round2((t - 0.5) * 80.0)}",
        lambda t: f"cos(psi2) * (x1 - x2) + sin(psi2) * (y1 - y2) >= {_round2((t - 0.5) * 80.0)}",
        lambda t: f"tan(psi1 / 2) * tan(psi2 / 2) <= {_round2(t)}",
        lambda t: f"pow(sin(psi1 - psi2), 2) <= {_round2(0.2 + 0.7 * t)}",
    )
    guards = []
    for level in range(depth):
        template = templates[level % len(templates)]
        threshold = float(rng.uniform(0.3, 0.7))
        guards.append(parse_constraint(template(threshold)))
    constraint_set, total = _decision_tree_paths(guards, fraction)
    return AerospaceSubject("Conflict", bounds, constraint_set, total, fraction)


def tsafe_turn_logic(depth: int = 8, fraction: float = 0.7, seed: int = 7) -> AerospaceSubject:
    """TSAFE Turn Logic model: ``atan2`` heading computations, constant turn radius."""
    rng = np.random.default_rng(seed)
    bounds = {
        "dx": (-50.0, 50.0),
        "dy": (-50.0, 50.0),
        "speed": (100.0, 500.0),
        "bank": (0.1, 0.6),
        "heading": (-3.14159, 3.14159),
    }
    templates = (
        lambda t: f"atan2(dy, dx) - heading <= {_round2((t - 0.5) * 6.0)}",
        lambda t: f"speed * speed * tan(bank) <= {_round2(30000.0 + t * 120000.0)}",
        lambda t: f"sqrt(dx * dx + dy * dy) <= {_round2(15.0 + t * 50.0)}",
        lambda t: f"cos(heading) * dx + sin(heading) * dy >= {_round2((t - 0.5) * 60.0)}",
        lambda t: f"abs(sin(heading - atan2(dy, dx))) <= {_round2(0.3 + 0.6 * t)}",
    )
    guards = []
    for level in range(depth):
        template = templates[level % len(templates)]
        threshold = float(rng.uniform(0.3, 0.7))
        guards.append(parse_constraint(template(threshold)))
    constraint_set, total = _decision_tree_paths(guards, fraction)
    return AerospaceSubject("Turn Logic", bounds, constraint_set, total, fraction)


def all_subjects(scale: float = 1.0) -> Tuple[AerospaceSubject, ...]:
    """The three Table 4 subjects.

    ``scale`` shrinks or grows the decision-tree depths (and therefore the path
    counts) so benchmarks can trade fidelity for run time: ``scale=1.0`` gives
    the laptop-friendly defaults, larger values approach the paper's path
    counts.
    """
    apollo_depth = max(3, int(round(9 * scale)))
    conflict_depth = max(2, int(round(5 * scale)))
    turn_depth = max(3, int(round(8 * scale)))
    return (
        apollo(depth=apollo_depth),
        tsafe_conflict(depth=conflict_depth),
        tsafe_turn_logic(depth=turn_depth),
    )


def subject_by_name(name: str, scale: float = 1.0) -> AerospaceSubject:
    """Look up a Table 4 subject by name (case-insensitive)."""
    for subject in all_subjects(scale):
        if subject.name.lower() == name.lower():
            return subject
    raise KeyError(f"unknown aerospace subject {name!r}")
