"""Geometric microbenchmarks of the paper's Table 2 (RQ1).

Each subject is a solid whose volume has a closed-form analytical value; the
solid is described by a conjunction of (mostly non-linear) constraints over a
bounded bounding box, and qCORAL estimates its volume as ``probability ×
bounding-box volume``.  The paper groups the subjects into convex polyhedra,
solids of revolution, and intersections of solids; the same thirteen subjects
are reproduced here.

The paper does not publish its exact parameterisations, so canonical
parameterisations are used and the analytical volume of *these* instances is
computed from the standard closed-form formulas.  Where the paper's reported
analytical value corresponds to a standard instance (cube of edge 2, unit
sphere, unit cylinder, ...), the same instance is used so the values match the
paper exactly; the remaining instances are documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.profiles import UsageProfile
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig
from repro.lang import ast
from repro.lang.parser import parse_path_condition

#: Golden ratio, used by the icosahedron face planes.
_PHI = (1.0 + math.sqrt(5.0)) / 2.0


@dataclass(frozen=True)
class Solid:
    """One Table 2 subject: constraints, bounding box, analytical volume."""

    name: str
    group: str
    constraint: ast.PathCondition
    bounds: Dict[str, Tuple[float, float]]
    analytical_volume: float
    description: str = ""

    def profile(self) -> UsageProfile:
        """Uniform profile over the bounding box."""
        return UsageProfile.uniform(self.bounds)

    def bounding_volume(self) -> float:
        """Volume of the bounding box."""
        volume = 1.0
        for low, high in self.bounds.values():
            volume *= high - low
        return volume

    def constraint_set(self) -> ast.ConstraintSet:
        """The solid's constraints as a single-path constraint set."""
        return ast.ConstraintSet.of([self.constraint], name=self.name)


@dataclass(frozen=True)
class VolumeEstimate:
    """Volume estimate produced by qCORAL for one solid."""

    solid: Solid
    volume: float
    std: float
    analysis_time: float

    @property
    def error(self) -> float:
        """Absolute error against the analytical volume."""
        return abs(self.volume - self.solid.analytical_volume)

    @property
    def relative_error(self) -> float:
        """Relative error against the analytical volume."""
        if self.solid.analytical_volume == 0.0:
            return self.error
        return self.error / abs(self.solid.analytical_volume)


def _solid(
    name: str,
    group: str,
    constraint_text: str,
    bounds: Dict[str, Tuple[float, float]],
    analytical_volume: float,
    description: str = "",
) -> Solid:
    return Solid(
        name=name,
        group=group,
        constraint=parse_path_condition(constraint_text),
        bounds=bounds,
        analytical_volume=analytical_volume,
        description=description,
    )


# --------------------------------------------------------------------------- #
# Convex polyhedra
# --------------------------------------------------------------------------- #
def tetrahedron() -> Solid:
    """Corner tetrahedron ``x, y, z >= 0, x + y + z <= 1.5`` (V = 1.5^3 / 6)."""
    side = 1.5
    return _solid(
        "Tetrahedron",
        "Convex Polyhedra",
        f"x >= 0 && y >= 0 && z >= 0 && x + y + z <= {side}",
        {"x": (0.0, side), "y": (0.0, side), "z": (0.0, side)},
        side ** 3 / 6.0,
        "Right tetrahedron at the origin.",
    )


def cube() -> Solid:
    """Axis-aligned cube of edge 2 (V = 8, matching the paper)."""
    return _solid(
        "Cube",
        "Convex Polyhedra",
        "abs(x) <= 1 && abs(y) <= 1 && abs(z) <= 1",
        {"x": (-1.5, 1.5), "y": (-1.5, 1.5), "z": (-1.5, 1.5)},
        8.0,
        "Cube of edge 2 centred at the origin; ICP identifies it exactly.",
    )


def icosahedron() -> Solid:
    """Regular icosahedron of edge 1 (V = 5 (3 + sqrt 5) / 12, matching the paper)."""
    offset = _PHI * _PHI / 2.0
    normals: List[Tuple[float, float, float]] = []
    for sx in (1.0, -1.0):
        for sy in (1.0, -1.0):
            for sz in (1.0, -1.0):
                normals.append((sx, sy, sz))
    for sa in (1.0, -1.0):
        for sb in (1.0, -1.0):
            normals.append((0.0, sa / _PHI, sb * _PHI))
            normals.append((sa / _PHI, sb * _PHI, 0.0))
            normals.append((sb * _PHI, 0.0, sa / _PHI))
    conjuncts = []
    for nx, ny, nz in normals:
        terms = []
        for coefficient, variable in ((nx, "x"), (ny, "y"), (nz, "z")):
            if coefficient != 0.0:
                terms.append(f"{coefficient!r} * {variable}")
        conjuncts.append(" + ".join(terms) + f" <= {offset!r}")
    volume = 5.0 * (3.0 + math.sqrt(5.0)) / 12.0
    return _solid(
        "Icosahedron",
        "Convex Polyhedra",
        " && ".join(conjuncts),
        {"x": (-1.0, 1.0), "y": (-1.0, 1.0), "z": (-1.0, 1.0)},
        volume,
        "Intersection of the 20 face half-spaces of a regular icosahedron (edge 1).",
    )


def rhombicuboctahedron() -> Solid:
    """Rhombicuboctahedron of edge 2 (vertices: permutations of (±1, ±1, ±(1+√2)))."""
    sqrt2 = math.sqrt(2.0)
    axis_bound = 1.0 + sqrt2
    pair_bound = 2.0 + sqrt2
    corner_bound = 3.0 + sqrt2
    conjuncts = [
        f"abs(x) <= {axis_bound!r}",
        f"abs(y) <= {axis_bound!r}",
        f"abs(z) <= {axis_bound!r}",
        f"abs(x) + abs(y) <= {pair_bound!r}",
        f"abs(y) + abs(z) <= {pair_bound!r}",
        f"abs(x) + abs(z) <= {pair_bound!r}",
        f"abs(x) + abs(y) + abs(z) <= {corner_bound!r}",
    ]
    # The half-space representation above has vertices at the permutations of
    # (±1, ±1, ±(1+√2)), i.e. edge length 2; the closed form for edge a is
    # V = (2/3) (6 + 5√2) a³.
    edge = 2.0
    volume = 2.0 / 3.0 * (6.0 + 5.0 * sqrt2) * edge ** 3
    return _solid(
        "Rhombicuboctahedron",
        "Convex Polyhedra",
        " && ".join(conjuncts),
        {"x": (-2.5, 2.5), "y": (-2.5, 2.5), "z": (-2.5, 2.5)},
        volume,
        "26-face Archimedean solid as an intersection of half-spaces.",
    )


# --------------------------------------------------------------------------- #
# Solids of revolution
# --------------------------------------------------------------------------- #
def cone() -> Solid:
    """Unit cone (base radius 1, height 1): V = pi / 3, matching the paper."""
    return _solid(
        "Cone",
        "Solids of Revolution",
        "x * x + y * y <= (1 - z) * (1 - z) && z >= 0 && z <= 1",
        {"x": (-1.0, 1.0), "y": (-1.0, 1.0), "z": (0.0, 1.0)},
        math.pi / 3.0,
    )


def conical_frustum() -> Solid:
    """Frustum with radii 1 and 0.5, height 1: V = pi (1 + 0.5 + 0.25) / 3 ≈ 1.8326."""
    return _solid(
        "Conical frustrum",
        "Solids of Revolution",
        "x * x + y * y <= (1 - 0.5 * z) * (1 - 0.5 * z) && z >= 0 && z <= 1",
        {"x": (-1.0, 1.0), "y": (-1.0, 1.0), "z": (0.0, 1.0)},
        math.pi / 3.0 * (1.0 + 0.5 + 0.25),
    )


def cylinder() -> Solid:
    """Unit cylinder: V = pi, matching the paper."""
    return _solid(
        "Cylinder",
        "Solids of Revolution",
        "x * x + y * y <= 1 && z >= 0 && z <= 1",
        {"x": (-1.0, 1.0), "y": (-1.0, 1.0), "z": (0.0, 1.0)},
        math.pi,
    )


def oblate_spheroid() -> Solid:
    """Oblate spheroid with semi-axes (2, 2, 1): V = 16/3 pi ≈ 16.755, matching the paper."""
    return _solid(
        "Oblate spheroid",
        "Solids of Revolution",
        "x * x / 4 + y * y / 4 + z * z <= 1",
        {"x": (-2.0, 2.0), "y": (-2.0, 2.0), "z": (-1.0, 1.0)},
        4.0 / 3.0 * math.pi * 2.0 * 2.0 * 1.0,
    )


def sphere() -> Solid:
    """Unit sphere: V = 4/3 pi, matching the paper."""
    return _solid(
        "Sphere",
        "Solids of Revolution",
        "x * x + y * y + z * z <= 1",
        {"x": (-1.0, 1.0), "y": (-1.0, 1.0), "z": (-1.0, 1.0)},
        4.0 / 3.0 * math.pi,
    )


def spherical_segment() -> Solid:
    """Segment of a radius-4 sphere between z = 1 and z = 3: V = 70 pi / 3."""
    return _solid(
        "Spherical segment",
        "Solids of Revolution",
        "x * x + y * y + z * z <= 16 && z >= 1 && z <= 3",
        {"x": (-4.0, 4.0), "y": (-4.0, 4.0), "z": (1.0, 3.0)},
        70.0 * math.pi / 3.0,
    )


def torus() -> Solid:
    """Torus with major radius 1 and minor radius 0.25: V = 2 pi^2 R r^2 ≈ 1.2337."""
    return _solid(
        "Torus",
        "Solids of Revolution",
        "(sqrt(x * x + y * y) - 1) * (sqrt(x * x + y * y) - 1) + z * z <= 0.0625",
        {"x": (-1.25, 1.25), "y": (-1.25, 1.25), "z": (-0.25, 0.25)},
        2.0 * math.pi ** 2 * 1.0 * 0.25 ** 2,
    )


# --------------------------------------------------------------------------- #
# Intersections of solids
# --------------------------------------------------------------------------- #
def two_spheres_intersection() -> Solid:
    """Lens of two radius-3 spheres with centres 2 apart: V = pi (4r + d)(2r - d)^2 / 12."""
    radius = 3.0
    distance = 2.0
    volume = math.pi * (4.0 * radius + distance) * (2.0 * radius - distance) ** 2 / 12.0
    return _solid(
        "Two spheres intersection",
        "Intersection",
        "x * x + y * y + z * z <= 9 && x * x + y * y + (z - 2) * (z - 2) <= 9",
        {"x": (-3.0, 3.0), "y": (-3.0, 3.0), "z": (-1.0, 3.0)},
        volume,
    )


def cone_cylinder_intersection() -> Solid:
    """Cone ``x^2 + y^2 <= z^2`` (0 <= z <= 2) meets the unit cylinder: V = 4 pi / 3."""
    return _solid(
        "Cone-cylinder intersection",
        "Intersection",
        "x * x + y * y <= z * z && x * x + y * y <= 1 && z >= 0 && z <= 2",
        {"x": (-1.0, 1.0), "y": (-1.0, 1.0), "z": (0.0, 2.0)},
        math.pi / 3.0 + math.pi,
    )


def all_solids() -> Tuple[Solid, ...]:
    """The thirteen Table 2 subjects, in the paper's order."""
    return (
        tetrahedron(),
        cube(),
        icosahedron(),
        rhombicuboctahedron(),
        cone(),
        conical_frustum(),
        cylinder(),
        oblate_spheroid(),
        sphere(),
        spherical_segment(),
        torus(),
        two_spheres_intersection(),
        cone_cylinder_intersection(),
    )


def solid_by_name(name: str) -> Solid:
    """Look up a Table 2 subject by its (case-insensitive) name."""
    for solid in all_solids():
        if solid.name.lower() == name.lower():
            return solid
    raise KeyError(f"unknown solid {name!r}")


def estimate_volume(
    solid: Solid,
    samples: int,
    seed: Optional[int] = None,
    config: Optional[QCoralConfig] = None,
) -> VolumeEstimate:
    """Estimate the volume of ``solid`` with qCORAL.

    The probability estimate returned by the analyzer is rescaled by the
    bounding-box volume; the reported standard deviation is rescaled the same
    way so it is directly comparable to the paper's Table 2 columns.
    """
    analysis_config = config if config is not None else QCoralConfig.strat_partcache(samples, seed=seed)
    analysis_config = analysis_config.with_samples(samples).with_seed(seed)
    analyzer = QCoralAnalyzer(solid.profile(), analysis_config)
    result = analyzer.analyze(solid.constraint_set())
    scale = solid.bounding_volume()
    return VolumeEstimate(
        solid=solid,
        volume=result.mean * scale,
        std=result.std * scale,
        analysis_time=result.analysis_time,
    )
