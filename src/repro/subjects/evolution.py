"""A two-version subject pair for the incremental re-quantification engine.

``EVOLUTION_V1`` and ``EVOLUTION_V2`` model one program before and after a
small edit: five independent continuous factors (disjoint variable sets, so
PARTCACHE decomposes the path condition into exactly five blocks), of which
the edit touches only the ``sin`` factor — its threshold moves from 0.5 to
0.7.  Every factor is nonlinear enough that the ICP paving cannot resolve it
exactly, so sampling genuinely happens, and every factor has a closed-form
ground-truth probability, so tests and benchmarks can check estimates
against truth rather than against each other.

Per-factor truths (uniform profiles)::

    a*a + b*b <= 1      on [-1,1]^2   -> pi/4
    sin(c) <= 0.5       on [0,2]      -> asin(0.5)/2 = pi/12
    sin(c) <= 0.7  (v2) on [0,2]      -> asin(0.7)/2
    d*d*d <= 0.5        on [-1,1]     -> (cbrt(0.5)+1)/2
    e + f <= 0.75       on [0,1]^2    -> 0.75^2/2
    cos(g) <= 0.2       on [0,3]      -> (3-acos(0.2))/3

The whole-set probability is the product of the per-factor truths
(independent blocks).  :func:`edited_version` scales the edit from one
factor up to all five for the benchmark's edit-size sweep, and
:func:`fixture_cache_key` gives CI a content-derived cache key for the
estimate store shared across workflow runs.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Tuple

from repro.core.profiles import Distribution, UsageProfile, parse_distribution_spec

#: The baseline ("v1") constraint set, one path of five independent factors.
EVOLUTION_V1 = "a*a + b*b <= 1 && sin(c) <= 0.5 && d*d*d <= 0.5 && e + f <= 0.75 && cos(g) <= 0.2"

#: The candidate ("v2") constraint set: the edit moves only the sin threshold.
EVOLUTION_V2 = "a*a + b*b <= 1 && sin(c) <= 0.7 && d*d*d <= 0.5 && e + f <= 0.75 && cos(g) <= 0.2"

#: ``variable -> SPEC`` in the CLI ``--domain`` syntax; shared by both versions.
EVOLUTION_DOMAINS: Dict[str, str] = {
    "a": "-1:1",
    "b": "-1:1",
    "c": "0:2",
    "d": "-1:1",
    "e": "0:1",
    "f": "0:1",
    "g": "0:3",
}

#: Closed-form per-factor probabilities of the baseline version, keyed by the
#: factor's distinguishing variable(s).
FACTOR_TRUTH_V1: Dict[str, float] = {
    "ab": math.pi / 4.0,
    "c": math.asin(0.5) / 2.0,
    "d": (0.5 ** (1.0 / 3.0) + 1.0) / 2.0,
    "ef": 0.75 * 0.75 / 2.0,
    "g": (3.0 - math.acos(0.2)) / 3.0,
}

#: v2 differs from v1 in the ``c`` factor only.
FACTOR_TRUTH_V2: Dict[str, float] = dict(FACTOR_TRUTH_V1, c=math.asin(0.7) / 2.0)

#: Whole-set ground truth: the product over the independent factors.
EXACT_V1 = math.prod(FACTOR_TRUTH_V1.values())
EXACT_V2 = math.prod(FACTOR_TRUTH_V2.values())

#: The v1 factor texts in ``&&`` order, with the edit applied per index for
#: :func:`edited_version`'s edit-size sweep (index 1 is the real v1->v2 edit).
_FACTORS_V1: Tuple[str, ...] = (
    "a*a + b*b <= 1",
    "sin(c) <= 0.5",
    "d*d*d <= 0.5",
    "e + f <= 0.75",
    "cos(g) <= 0.2",
)
_FACTORS_EDITED: Tuple[str, ...] = (
    "a*a + b*b <= 0.9",
    "sin(c) <= 0.7",
    "d*d*d <= 0.4",
    "e + f <= 0.7",
    "cos(g) <= 0.3",
)


def evolution_profile() -> UsageProfile:
    """The shared uniform usage profile of both versions."""
    distributions: Dict[str, Distribution] = {
        name: parse_distribution_spec(spec) for name, spec in EVOLUTION_DOMAINS.items()
    }
    return UsageProfile(distributions)


def domain_args() -> List[str]:
    """The fixture's domains as CLI ``--domain`` operands (``VAR=SPEC``)."""
    return [f"{name}={spec}" for name, spec in EVOLUTION_DOMAINS.items()]


def edited_version(edits: int) -> str:
    """A candidate with the first ``edits`` factors changed (0..5).

    ``edits=0`` returns v1 verbatim (the no-op edit), ``edits=1`` changes a
    different factor than the canonical v2 edit would — the sweep edits
    factors in declaration order — and ``edits=5`` changes every factor,
    the case bound to the bit-identity contract (an all-changed diff must
    reproduce a cold run exactly at the same seed).
    """
    if not 0 <= edits <= len(_FACTORS_V1):
        raise ValueError(f"edits must lie in [0, {len(_FACTORS_V1)}], got {edits}")
    factors = _FACTORS_EDITED[:edits] + _FACTORS_V1[edits:]
    return " && ".join(factors)


def fixture_cache_key() -> str:
    """A content hash CI uses to key the shared estimate-store cache.

    Derived from both version texts, the domains, and the store's
    ``ESTIMATOR_VERSION``, so any change that would invalidate stored
    estimates also rolls the cache key.
    """
    from repro.store.keys import ESTIMATOR_VERSION

    material = "\x1f".join(
        [ESTIMATOR_VERSION, EVOLUTION_V1, EVOLUTION_V2]
        + [f"{name}={spec}" for name, spec in sorted(EVOLUTION_DOMAINS.items())]
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
