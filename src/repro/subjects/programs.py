"""Mini-language example programs used by the examples and the test suite.

The flagship program is the safety monitor of the paper's Section 4.4; the
others are small, self-contained programs exercising loops, assertions and the
math functions supported by the constraint language.
"""

from __future__ import annotations

#: The autopilot safety monitor of Section 4.4 (Listing 1).
SAFETY_MONITOR = """
input altitude in [0, 20000];
input headFlap in [-10, 10];
input tailFlap in [-10, 10];

if (altitude <= 9000) {
    if (sin(headFlap * tailFlap) > 0.25) {
        observe(callSupervisor);
    }
} else {
    observe(callSupervisor);
}
"""

#: Exact probability of the supervisor call for the safety monitor under the
#: uniform profile, as reported in the paper (rounded to the 6th digit).
SAFETY_MONITOR_EXACT = 0.737848

#: The target event observed by the safety monitor.
SAFETY_MONITOR_EVENT = "callSupervisor"


#: A simple collision check between two points moving on a plane.
COLLISION_CHECK = """
input x1 in [0, 10];
input y1 in [0, 10];
input x2 in [0, 10];
input y2 in [0, 10];

distance = sqrt((x1 - x2) * (x1 - x2) + (y1 - y2) * (y1 - y2));
if (distance <= 2.0) {
    observe(collision);
}
"""

#: A thermostat controller with a bounded control loop.
THERMOSTAT = """
input temperature in [10, 30];
input heatingRate in [0.1, 1.0];

steps = 0;
current = temperature;
while (current < 22 && steps < 8) {
    current = current + heatingRate;
    steps = steps + 1;
}
if (steps >= 8) {
    observe(slowHeating);
}
"""

#: A tiny scoring program with an assertion (used to exercise assert handling).
SCORING_WITH_ASSERT = """
input score in [0, 100];
input bonus in [0, 20];

total = score + bonus;
assert(total <= 110);
"""
