"""The VolComp benchmark subjects of the paper's Table 3 (RQ2).

The original benchmark programs (distributed with VolComp) are not available
offline, so each subject is re-modelled as a mini-language program with the
same structure the paper describes: risk calculators accumulating points
through branch cascades (ATRIAL, CORONARY), estimator formulas with branch-
selected coefficients (EGFR), controllers (CART, INVPEND, VOL), and a packing
robot (PACK).  Every assertion row of Table 3 has a counterpart here; the
constraint *shapes* (linear, many disjoint paths, varying variable
interdependence) are preserved even though the constants — and therefore the
absolute probabilities — differ from the originals.

Each subject provides, per assertion, a constraint set obtained by bounded
symbolic execution of ``base_source`` extended with a final
``if (<assertion>) { observe(target); }`` block.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.core.profiles import UsageProfile
from repro.lang import ast
from repro.symexec.parser import parse_program
from repro.symexec.symbolic import execute_program

#: Event name attached to every Table 3 assertion.
TARGET_EVENT = "target"


@dataclass(frozen=True)
class VolCompAssertion:
    """One assertion row of Table 3: a display label and its condition text."""

    label: str
    condition: str


@dataclass(frozen=True)
class VolCompSubject:
    """One Table 3 subject: a base program plus its assertion rows."""

    name: str
    base_source: str
    assertions: Tuple[VolCompAssertion, ...]
    max_depth: int = 60

    def assertion(self, label: str) -> VolCompAssertion:
        """Look up an assertion by its display label."""
        for assertion in self.assertions:
            if assertion.label == label:
                return assertion
        raise KeyError(f"subject {self.name!r} has no assertion {label!r}")

    def program_source(self, assertion: VolCompAssertion) -> str:
        """Base program extended with the assertion's observe block."""
        return (self.base_source + f"\nif ({assertion.condition}) {{\n    observe({TARGET_EVENT});\n}}\n")

    def program(self, assertion: VolCompAssertion):
        """Parsed program for one assertion."""
        return parse_program(self.program_source(assertion), name=f"{self.name}:{assertion.label}")

    def constraint_set(self, assertion: VolCompAssertion) -> ast.ConstraintSet:
        """Path conditions reaching the assertion's target event."""
        return _constraint_set_cached(self.name, assertion.label)

    def profile(self) -> UsageProfile:
        """Uniform usage profile over the subject's declared input domains."""
        program = parse_program(self.base_source + "\nskip;", name=self.name)
        return UsageProfile.uniform(program.input_bounds())


# --------------------------------------------------------------------------- #
# Subject definitions
# --------------------------------------------------------------------------- #
_ATRIAL_SOURCE = """
input age in [45, 95];
input sbp in [90, 190];
input pr in [120, 260];
input bmi in [18, 45];
input sbpErr in [-10, 10];
input prErr in [-15, 15];

points = 0;
if (age >= 85) { points = points + 8; }
else { if (age >= 75) { points = points + 6; }
else { if (age >= 65) { points = points + 4; }
else { if (age >= 55) { points = points + 2; } else { skip; } } } }

if (sbp >= 160) { points = points + 3; }
else { if (sbp >= 140) { points = points + 1; } else { skip; } }

if (pr >= 200) { points = points + 2; }
else { if (pr >= 180) { points = points + 1; } else { skip; } }

if (bmi >= 30) { points = points + 1; } else { skip; }

pointsErr = points;
if (sbp + sbpErr >= 160) { pointsErr = pointsErr + 3; }
else { if (sbp + sbpErr >= 140) { pointsErr = pointsErr + 1; } else { skip; } }
if (pr + prErr >= 200) { pointsErr = pointsErr + 2; }
else { if (pr + prErr >= 180) { pointsErr = pointsErr + 1; } else { skip; } }
if (sbp >= 160) { pointsErr = pointsErr - 3; }
else { if (sbp >= 140) { pointsErr = pointsErr - 1; } else { skip; } }
if (pr >= 200) { pointsErr = pointsErr - 2; }
else { if (pr >= 180) { pointsErr = pointsErr - 1; } else { skip; } }
"""

_CART_SOURCE = """
input pos in [-1, 1];
input wind in [-0.5, 0.5];

count = 0;
err1 = pos + wind;
if (err1 * err1 * (err1 - 0.1) * (err1 + 0.05) > 0.0005) { count = count + 1; pos = pos - 0.5 * err1; } else { skip; }
err2 = pos + 0.8 * wind;
if (err2 * err2 * (err2 - 0.1) * (err2 + 0.05) > 0.0005) { count = count + 1; pos = pos - 0.5 * err2; } else { skip; }
err3 = pos + 0.6 * wind;
if (err3 * err3 * (err3 - 0.1) * (err3 + 0.05) > 0.0005) { count = count + 1; pos = pos - 0.5 * err3; } else { skip; }
err4 = pos + 0.4 * wind;
if (err4 * err4 * (err4 - 0.1) * (err4 + 0.05) > 0.0005) { count = count + 1; pos = pos - 0.5 * err4; } else { skip; }
err5 = pos + 0.2 * wind;
if (err5 * err5 * (err5 - 0.1) * (err5 + 0.05) > 0.0005) { count = count + 1; pos = pos - 0.5 * err5; } else { skip; }
"""

_CORONARY_SOURCE = """
input age in [30, 75];
input chol in [150, 300];
input hdl in [20, 100];
input sbp in [100, 180];

tmp = 0;
if (age >= 65) { tmp = tmp + 5; }
else { if (age >= 50) { tmp = tmp + 3; }
else { if (age >= 40) { tmp = tmp + 1; } else { skip; } } }

if (chol >= 280) { tmp = tmp + 4; }
else { if (chol >= 240) { tmp = tmp + 2; }
else { if (chol >= 200) { tmp = tmp + 1; } else { skip; } } }

if (hdl >= 60) { tmp = tmp - 2; }
else { if (hdl <= 35) { tmp = tmp + 2; } else { skip; } }

if (sbp >= 170) { tmp = tmp + 3; }
else { if (sbp >= 150) { tmp = tmp + 1; } else { skip; } }

tmp = tmp - 6;
"""

_EGFR_SOURCE = """
input scr in [0.5, 3.0];
input age in [18, 90];
input scrF in [0.5, 3.0];
input ageF in [18, 90];

f = 0;
if (scr <= 0.9) { f = 6.0 - 0.7 * scr - 0.006 * age; }
else { if (scr <= 1.5) { f = 5.9 - 0.6 * scr - 0.007 * age; }
else { f = 5.7 - 0.5 * scr - 0.008 * age; } }

f1 = 0;
if (scrF <= 0.7) { f1 = 6.2 - 0.9 * scrF - 0.004 * ageF; }
else { if (scrF <= 1.3) { f1 = 6.0 - 0.7 * scrF - 0.005 * ageF; }
else { f1 = 5.9 - 0.65 * scrF - 0.006 * ageF; } }
"""

_INVPEND_SOURCE = """
input ang in [-0.5, 0.5];
input angVel in [-1, 1];
input force in [-2, 2];

pAng = 1.1 + 0.3 * ang + 0.05 * angVel + 0.01 * force * ang + 0.002 * force * force;
"""

_PACK_SOURCE = """
input w1 in [0, 1.5];
input w2 in [0, 1.5];
input w3 in [0, 1.5];
input w4 in [0, 1.5];
input w5 in [0, 1.5];
input w6 in [0, 1.5];
input w7 in [0, 1.5];
input w8 in [0, 1.5];

limit = 6.5;
totalWeight = 0;
count = 0;
if (totalWeight + w1 <= limit) { totalWeight = totalWeight + w1; count = count + 1; } else { skip; }
if (totalWeight + w2 <= limit) { totalWeight = totalWeight + w2; count = count + 1; } else { skip; }
if (totalWeight + w3 <= limit) { totalWeight = totalWeight + w3; count = count + 1; } else { skip; }
if (totalWeight + w4 <= limit) { totalWeight = totalWeight + w4; count = count + 1; } else { skip; }
if (totalWeight + w5 <= limit) { totalWeight = totalWeight + w5; count = count + 1; } else { skip; }
if (totalWeight + w6 <= limit) { totalWeight = totalWeight + w6; count = count + 1; } else { skip; }
if (totalWeight + w7 <= limit) { totalWeight = totalWeight + w7; count = count + 1; } else { skip; }
if (totalWeight + w8 <= limit) { totalWeight = totalWeight + w8; count = count + 1; } else { skip; }
"""

_VOL_SOURCE = """
input flowA in [0, 1];
input flowB in [0, 1];
input flowC in [0, 1];

volume = 0;
count = 0;
while (volume < 8 && count < 20) {
    volume = volume + 0.2 * flowA + 0.3 * flowB + 0.1 * flowC;
    count = count + 1;
}
"""


@lru_cache(maxsize=None)
def all_subjects() -> Tuple[VolCompSubject, ...]:
    """Every Table 3 subject, in the paper's order."""
    return (
        VolCompSubject(
            "ATRIAL",
            _ATRIAL_SOURCE,
            (
                VolCompAssertion("points >= 10", "points >= 10"),
                VolCompAssertion("points - pointsErr >= 5", "points - pointsErr >= 5"),
                VolCompAssertion("pointsErr - points <= 5", "pointsErr - points <= 5"),
            ),
        ),
        VolCompSubject(
            "CART",
            _CART_SOURCE,
            (
                VolCompAssertion("count >= 3", "count >= 3"),
                VolCompAssertion("count >= 1", "count >= 1"),
            ),
        ),
        VolCompSubject(
            "CORONARY",
            _CORONARY_SOURCE,
            (
                VolCompAssertion("tmp >= 5", "tmp >= 5"),
                VolCompAssertion("tmp <= -5", "tmp <= 0 - 5"),
            ),
        ),
        VolCompSubject(
            "EGFR EPI",
            _EGFR_SOURCE,
            (
                VolCompAssertion("f1 - f >= 0.1", "f1 - f >= 0.1"),
                VolCompAssertion("f - f1 >= 0.1", "f - f1 >= 0.1"),
            ),
        ),
        VolCompSubject(
            "EGFR EPI (SIMPLE)",
            _EGFR_SOURCE,
            (
                VolCompAssertion("f1 <= 4.4 && f >= 4.6", "f1 <= 4.4 && f >= 4.6"),
                VolCompAssertion("f1 >= 4.6 && f <= 4.4", "f1 >= 4.6 && f <= 4.4"),
            ),
        ),
        VolCompSubject(
            "INVPEND",
            _INVPEND_SOURCE,
            (VolCompAssertion("pAng <= 1", "pAng <= 1"),),
        ),
        VolCompSubject(
            "PACK",
            _PACK_SOURCE,
            (
                VolCompAssertion("count >= 5", "count >= 5"),
                VolCompAssertion("count >= 6", "count >= 6"),
                VolCompAssertion("count >= 7", "count >= 7"),
                VolCompAssertion("count >= 10", "count >= 10"),
                VolCompAssertion("totalWeight >= 6", "totalWeight >= 6"),
                VolCompAssertion("totalWeight >= 5", "totalWeight >= 5"),
                VolCompAssertion("totalWeight >= 4", "totalWeight >= 4"),
            ),
        ),
        VolCompSubject(
            "VOL",
            _VOL_SOURCE,
            (VolCompAssertion("count >= 20", "count >= 20"),),
            max_depth=80,
        ),
    )


def subject_by_name(name: str) -> VolCompSubject:
    """Look up a Table 3 subject by name (case-insensitive)."""
    for subject in all_subjects():
        if subject.name.lower() == name.lower():
            return subject
    raise KeyError(f"unknown VolComp subject {name!r}")


def all_assertion_cases() -> Tuple[Tuple[VolCompSubject, VolCompAssertion], ...]:
    """Every (subject, assertion) pair, i.e. every row of Table 3."""
    cases = []
    for subject in all_subjects():
        for assertion in subject.assertions:
            cases.append((subject, assertion))
    return tuple(cases)


@lru_cache(maxsize=None)
def _constraint_set_cached(subject_name: str, assertion_label: str) -> ast.ConstraintSet:
    """Symbolically execute a subject's assertion program (cached)."""
    subject = subject_by_name(subject_name)
    assertion = subject.assertion(assertion_label)
    program = subject.program(assertion)
    result = execute_program(program, max_depth=subject.max_depth, prune_infeasible=True)
    return result.constraint_set_for(TARGET_EVENT)
