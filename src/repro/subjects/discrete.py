"""Discrete and mixed-profile subjects for the importance-sampling evaluation.

The paper's evaluation samples uniform profiles only; its discussion of usage
profiles (Section 3) explicitly covers *peaked* input distributions — the
regime in which per-box sampling variance, not box probability mass, dominates
the combined error.  The subjects here re-create that regime: every input
follows a peaked discrete distribution (binomial, truncated Poisson, truncated
geometric, categorical) or, for the mixed subjects, a peaked truncated normal,
and every constraint is non-linear enough that the ICP paving cannot resolve
it exactly — so the estimate genuinely depends on where the samples land.

For the all-discrete subjects the ground-truth probability is computable by
exhaustive enumeration of the (small) atom grid (:func:`exact_probability`),
which the tests use to check that both estimation methods are unbiased and the
benchmarks use to report true errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.profiles import (
    BinomialDistribution,
    CategoricalDistribution,
    Distribution,
    TruncatedGeometricDistribution,
    TruncatedNormalDistribution,
    TruncatedPoissonDistribution,
    UsageProfile,
)
from repro.lang import ast
from repro.lang.kernel import get_kernel
from repro.lang.parser import parse_path_condition

#: Enumeration ceiling: all-discrete subjects above this many atoms report no
#: exact probability (none of the shipped subjects comes close).
MAX_ENUMERATED_ATOMS = 2_000_000


@dataclass(frozen=True, eq=False)
class DiscreteSubject:
    """One peaked-profile subject: a constraint plus its usage profile."""

    name: str
    group: str
    constraint: ast.PathCondition
    profile: UsageProfile
    description: str = ""

    def constraint_set(self) -> ast.ConstraintSet:
        """The subject's constraint as a single-path constraint set."""
        return ast.ConstraintSet.of([self.constraint], name=self.name)

    def exact_probability(self) -> Optional[float]:
        """Ground truth by atom enumeration (None for mixed subjects)."""
        return exact_probability(self.constraint, self.profile)


def exact_probability(pc: ast.PathCondition, profile: UsageProfile) -> Optional[float]:
    """Exact satisfaction probability of an all-discrete constraint.

    Enumerates the Cartesian atom grid of the (discrete) per-variable
    supports, weighs each grid point by the product of the atom masses, and
    sums the weights of the satisfying points.  Returns None when any free
    variable is continuous or the grid exceeds :data:`MAX_ENUMERATED_ATOMS`.
    """
    names = sorted(pc.free_variables())
    if not names:
        return None
    distributions = [profile.distribution(name) for name in names]
    if not all(distribution.is_discrete for distribution in distributions):
        return None
    atom_values = []
    atom_masses = []
    total_atoms = 1
    for distribution in distributions:
        support = distribution.support
        values = np.arange(support.lo, support.hi + 1.0)
        masses = np.array([distribution.mass(_point(value)) for value in values])
        atom_values.append(values)
        atom_masses.append(masses)
        total_atoms *= len(values)
        if total_atoms > MAX_ENUMERATED_ATOMS:
            return None
    grids = np.meshgrid(*atom_values, indexing="ij")
    batch: Dict[str, np.ndarray] = {name: grid.ravel() for name, grid in zip(names, grids)}
    weight_grids = np.meshgrid(*atom_masses, indexing="ij")
    weights = np.ones(total_atoms)
    for grid in weight_grids:
        weights = weights * grid.ravel()
    # Routed through the shared kernel cache: repeated exact_probability
    # calls (tests, benchmarks) no longer recompile the path condition.
    hits = get_kernel(pc)(batch)
    return float(weights[hits].sum())


def _point(value: float):
    from repro.intervals.interval import Interval

    return Interval.point(value)


def _subject(
    name: str,
    group: str,
    constraint: str,
    distributions: Dict[str, Distribution],
    description: str,
) -> DiscreteSubject:
    return DiscreteSubject(
        name=name,
        group=group,
        constraint=parse_path_condition(constraint),
        profile=UsageProfile(distributions),
        description=description,
    )


def all_discrete_subjects() -> Tuple[DiscreteSubject, ...]:
    """The shipped peaked-profile subjects (all-discrete first, then mixed)."""
    return (
        _subject(
            "PacketBurst",
            "discrete",
            "x * y >= 18 && x + y <= 30",
            {
                "x": TruncatedPoissonDistribution(4.0, 0, 30),
                "y": TruncatedPoissonDistribution(6.0, 0, 40),
            },
            "Arrival bursts on two links: joint load window around the peak "
            "of two truncated Poisson profiles.",
        ),
        _subject(
            "SensorGrid",
            "discrete",
            "(x - 8.0) * (y - 9.0) <= 3.0 && x + 2.0 * y >= 20.0",
            {
                "x": BinomialDistribution(24, 0.35),
                "y": BinomialDistribution(16, 0.55),
            },
            "Faulty-cell counts of two sensor banks: a hyperbolic acceptance "
            "region cutting straight through both binomial peaks.",
        ),
        _subject(
            "RetryStorm",
            "discrete",
            "x * (y + 1.0) >= 10.0 && x * (y + 1.0) <= 60.0",
            {
                "x": TruncatedGeometricDistribution(0.3, 0, 40),
                "y": CategoricalDistribution(0, (0.1, 0.2, 0.4, 0.2, 0.1)),
            },
            "Retries times queue priority: a product band over a geometric "
            "tail and a peaked categorical priority profile.",
        ),
        _subject(
            "LoadSpike",
            "mixed",
            "x * y >= 7.5",
            {
                "x": BinomialDistribution(30, 0.4),
                "y": TruncatedNormalDistribution(0.6, 0.25, 0.0, 1.0),
            },
            "Request count times utilisation: a hyperbola through the joint "
            "peak of a binomial and a truncated normal.",
        ),
        _subject(
            "BurstySensor",
            "mixed",
            "sin(x * 0.4) + y * y <= 0.5",
            {
                "x": TruncatedPoissonDistribution(5.0, 0, 25),
                "y": TruncatedNormalDistribution(0.0, 0.4, -1.0, 1.0),
            },
            "Oscillating acceptance threshold over a Poisson burst count and "
            "a centred noise term.",
        ),
    )


def discrete_subject_by_name(name: str) -> DiscreteSubject:
    """Look up a shipped subject by name (case-sensitive)."""
    for subject in all_discrete_subjects():
        if subject.name == name:
            return subject
    known = [subject.name for subject in all_discrete_subjects()]
    raise KeyError(f"no discrete subject named {name!r}; known subjects: {known}")
