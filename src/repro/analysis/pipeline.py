"""End-to-end probabilistic software analysis pipeline (paper Figure 1).

The pipeline glues the three stages together: parse a program, symbolically
execute it to collect the path conditions reaching a target event, and hand
the resulting constraint set (plus the usage profile) to qCORAL.  It also
quantifies the probability mass of the paths that hit the execution bound,
which the paper proposes as a confidence measure for the bounded result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core.cache import CacheStatistics
from repro.core.estimate import Estimate
from repro.core.profiles import UsageProfile
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig, QCoralResult, RoundReport
from repro.errors import AnalysisError
from repro.exec.executor import Executor
from repro.obs import Observability
from repro.store.backends import EstimateStore
from repro.symexec.ast import Program
from repro.symexec.parser import parse_program
from repro.symexec.symbolic import SymbolicExecutionResult, execute_program


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of an end-to-end analysis of one target event."""

    event: str
    probability: Estimate
    bounded_probability: Estimate
    qcoral_result: QCoralResult
    symbolic_result: SymbolicExecutionResult

    @property
    def mean(self) -> float:
        """Estimated probability of the target event."""
        return self.probability.mean

    @property
    def std(self) -> float:
        """Standard deviation of the probability estimate."""
        return self.probability.std

    @property
    def rounds(self) -> int:
        """Sampling rounds the adaptive loop executed for the target event."""
        return self.qcoral_result.rounds

    @property
    def round_reports(self) -> Tuple[RoundReport, ...]:
        """Per-round convergence records of the target-event analysis."""
        return self.qcoral_result.round_reports

    @property
    def executor_label(self) -> Optional[str]:
        """Resolved backend the analysis sampled on (None = in-thread path).

        Comes from the analyzer's executor instance, so a pool passed to the
        pipeline constructor is reported even when the config names none.
        """
        return self.qcoral_result.executor

    @property
    def store_label(self) -> Optional[str]:
        """Label of the persistent estimate store used (None = no store)."""
        return self.qcoral_result.store

    @property
    def cache_statistics(self) -> CacheStatistics:
        """Two-tier cache counters of the whole pipeline run.

        The event analysis and the bounded-path analysis share one analyzer,
        so these counters cover both — including persistent-store hits, warm
        starts, and merges when a store is configured.
        """
        return self.qcoral_result.cache_statistics

    @property
    def confidence_note(self) -> str:
        """Human-readable statement of the bounded-path probability mass."""
        return (f"probability mass of paths hitting the execution bound: " f"{self.bounded_probability.mean:.6f}")


def require_event(symbolic: SymbolicExecutionResult, event: str) -> None:
    """Raise :class:`AnalysisError` when ``event`` occurs on no explored path.

    Shared by the pipeline and the Session facade so the two surfaces can
    never drift apart in validation or message.
    """
    if event not in symbolic.events():
        raise AnalysisError(
            f"event {event!r} never occurs on any explored path; "
            f"known events: {list(symbolic.events())}"
        )


def bounded_probability_estimate(analyzer: QCoralAnalyzer, symbolic: SymbolicExecutionResult) -> Estimate:
    """Probability mass of the paths that hit the execution bound.

    The paper proposes this as a confidence measure for the bounded result;
    an exploration with no bound-hitting paths has exactly zero mass.  Shared
    by the pipeline and the Session facade.
    """
    bounded_set = symbolic.bounded_constraint_set()
    if not bounded_set.path_conditions:
        return Estimate.zero()
    return analyzer.analyze(bounded_set).estimate


class ProbabilisticAnalysisPipeline:
    """Program + usage profile + target event → probability estimate."""

    def __init__(
        self,
        program: Union[str, Program],
        profile: Optional[UsageProfile] = None,
        config: QCoralConfig = QCoralConfig(),
        max_depth: int = 50,
        max_paths: int = 100_000,
        executor: Optional[Executor] = None,
        store: Optional[EstimateStore] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        self._program = parse_program(program) if isinstance(program, str) else program
        self._profile = profile if profile is not None else UsageProfile.uniform(self._program.input_bounds())
        self._config = config
        self._max_depth = max_depth
        self._max_paths = max_paths
        self._executor = executor
        self._store = store
        self._observability = observability
        self._symbolic_result: Optional[SymbolicExecutionResult] = None
        self._analyzer: Optional[QCoralAnalyzer] = None
        self._closed = False

    @property
    def program(self) -> Program:
        """The parsed program under analysis."""
        return self._program

    @property
    def profile(self) -> UsageProfile:
        """The usage profile describing the inputs."""
        return self._profile

    def symbolic_execution(self) -> SymbolicExecutionResult:
        """Run (and cache) the bounded symbolic execution of the program."""
        if self._symbolic_result is None:
            self._symbolic_result = execute_program(self._program, max_depth=self._max_depth, max_paths=self._max_paths)
        return self._symbolic_result

    def analyzer(self) -> QCoralAnalyzer:
        """The single qCORAL analyzer shared by all analyses of this pipeline.

        Sharing one analyzer means the event analysis and the bounded-path
        analysis (and analyses of further events) draw from one factor cache:
        path-condition factors quantified once are reused instead of being
        re-sampled by a second analyzer with the same seed — which previously
        also replayed the identical RNG stream.

        The executor backend and the persistent estimate store are plumbed
        from the configuration (or instances passed to the pipeline
        constructor are borrowed), so every analysis of this pipeline samples
        on the same worker pool and reuses/merges against the same store.
        """
        if self._analyzer is None:
            self._analyzer = QCoralAnalyzer(
                self._profile,
                self._config,
                executor=self._executor,
                store=self._store,
                observability=self._observability,
            )
        return self._analyzer

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Shut down any executor pool or store handle the analyzer created.

        Idempotent, like :meth:`QCoralAnalyzer.close`: repeated calls (e.g.
        nested context-manager entry) are no-ops, and borrowed instances
        (passed to the constructor) stay open for their owner in every case.
        """
        if self._closed:
            return
        self._closed = True
        if self._analyzer is not None:
            self._analyzer.close()

    def __enter__(self) -> "ProbabilisticAnalysisPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def analyze(self, event: str) -> PipelineResult:
        """Quantify the probability that ``event`` occurs during execution."""
        symbolic = self.symbolic_execution()
        require_event(symbolic, event)
        constraint_set = symbolic.constraint_set_for(event)
        analyzer = self.analyzer()
        result = analyzer.analyze(constraint_set)
        bounded = bounded_probability_estimate(analyzer, symbolic)

        return PipelineResult(
            event=event,
            probability=result.estimate,
            bounded_probability=bounded,
            qcoral_result=result,
            symbolic_result=symbolic,
        )


def analyze_program(
    source: Union[str, Program],
    event: str,
    profile: Optional[UsageProfile] = None,
    config: QCoralConfig = QCoralConfig(),
    max_depth: int = 50,
) -> PipelineResult:
    """One-shot convenience wrapper around :class:`ProbabilisticAnalysisPipeline`.

    Any executor pool the configuration requests is shut down on return.
    """
    with ProbabilisticAnalysisPipeline(source, profile, config, max_depth=max_depth) as pipeline:
        return pipeline.analyze(event)
