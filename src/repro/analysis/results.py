"""Result records and plain-text table rendering for the benchmark harness.

The benchmark scripts print the same rows the paper's tables report; this
module keeps the formatting in one place so `benchmarks/` and the CLI produce
identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class TableRow:
    """One row of a rendered table: a label plus formatted cell values."""

    label: str
    cells: Tuple[str, ...]


@dataclass
class Table:
    """A plain-text table with a title, column headers, and rows."""

    title: str
    headers: Tuple[str, ...]
    rows: List[TableRow] = field(default_factory=list)

    def add_row(self, label: str, *cells: object) -> None:
        """Append a row, converting every cell to text."""
        self.rows.append(TableRow(label, tuple(_format_cell(cell) for cell in cells)))

    def render(self) -> str:
        """Render the table as aligned plain text."""
        label_width = max([len("subject")] + [len(row.label) for row in self.rows])
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row.cells):
                if index < len(widths):
                    widths[index] = max(widths[index], len(cell))

        lines = [self.title, "=" * len(self.title)]
        header_line = "subject".ljust(label_width) + "  " + "  ".join(
            header.rjust(widths[index]) for index, header in enumerate(self.headers)
        )
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in self.rows:
            cells = "  ".join(
                (row.cells[index] if index < len(row.cells) else "").rjust(widths[index])
                for index in range(len(self.headers))
            )
            lines.append(row.label.ljust(label_width) + "  " + cells)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0.0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.2e}"
        return f"{value:.4f}"
    return str(value)


def format_interval(lower: float, upper: float) -> str:
    """Format a probability interval the way the paper prints VolComp bounds."""
    return f"[{lower:.4f}, {upper:.4f}]"


def reuse_summary(cache_statistics: object) -> str:
    """One-line rendering of the two-tier cache/store counters of a run.

    Accepts the :class:`~repro.core.cache.CacheStatistics` carried by
    ``QCoralResult.cache_statistics`` (duck-typed, like
    :func:`convergence_table`, to keep this module free of ``core`` imports).
    The L1 part is always present; the store part appears once any
    persistent-tier traffic happened.
    """
    parts = [f"cache {cache_statistics.hits}/{cache_statistics.lookups} hits"]
    if cache_statistics.store_lookups or cache_statistics.store_publishes:
        parts.append(
            f"store {cache_statistics.store_hits}/{cache_statistics.store_lookups} hits, "
            f"{cache_statistics.warm_starts} warm starts, "
            f"{cache_statistics.store_publishes} published "
            f"({cache_statistics.store_merges} merged)"
        )
    return " · ".join(parts)


def convergence_table(round_reports: Sequence[object], title: str = "Adaptive convergence") -> Table:
    """Render the per-round records of an adaptive run as a table.

    Accepts the :class:`~repro.core.qcoral.RoundReport` sequence carried by
    ``QCoralResult.round_reports``; the duck-typed signature keeps this module
    free of a ``core`` import so formatting stays dependency-light.
    """
    table = Table(title, ("allocated", "cumulative", "estimate", "σ"))
    for report in round_reports:
        table.add_row(
            f"round {report.round_index}",
            report.allocated,
            report.total_samples,
            report.mean,
            report.std,
        )
    return table
