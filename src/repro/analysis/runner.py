"""Repeated-trial experiment runner.

The paper reports averages over 30 executions of its randomised algorithm
(Table 2 and Table 3 captions).  :func:`repeat_analysis` re-runs an analysis
callable with distinct seeds and aggregates the estimates the same way: the
mean of the per-run estimates, the standard deviation *across* runs, the mean
of the per-run reported standard deviations, and the mean wall-clock time.

Per-trial seeds are spawned from one :class:`numpy.random.SeedSequence`
rooted at ``base_seed`` (see :func:`trial_seeds`), so trials are statistically
independent yet fully reproducible, and the seed of trial *i* never depends
on how many trials run or where they run.  Because trials are independent,
they can be dispatched on any :class:`~repro.exec.executor.Executor` backend;
the process backend additionally requires the ``run`` callable to be
picklable (a module-level function, not a lambda).
"""

from __future__ import annotations

import functools
import math
import statistics
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.exec.seeds import SeedStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.api.query import Query
    from repro.core.qcoral import QCoralResult
    from repro.exec.executor import Executor


def trial_seeds(runs: int, base_seed: int = 0) -> List[int]:
    """Independent integer seeds for ``runs`` trials, spawned from ``base_seed``.

    Each seed is derived from one child of ``SeedSequence(base_seed)``; the
    list is a pure function of ``(runs, base_seed)`` and a prefix-stable one:
    the first ``k`` seeds are the same for any ``runs >= k``.
    """
    if runs < 0:
        raise ValueError("trial count may not be negative")
    return SeedStream(base_seed).spawn_seeds(runs)


@dataclass(frozen=True)
class TrialOutcome:
    """One trial: the estimate, its reported standard deviation, and its time.

    ``samples`` and ``rounds`` record the sampling effort of the trial when
    the analysis exposes them (adaptive runs); both default to 0 for plain
    ``(estimate, std)`` callables.  ``store_hits``, ``warm_starts``, and
    ``store_merges`` record the trial's traffic against a persistent
    estimate store (all 0 when the trial ran without one) — with a shared
    store, later trials reuse or extend what earlier trials sampled, and
    these counters make that reuse observable per trial.
    """

    estimate: float
    reported_std: float
    elapsed: float
    samples: int = 0
    rounds: int = 0
    store_hits: int = 0
    warm_starts: int = 0
    store_merges: int = 0


@dataclass(frozen=True)
class RepeatedResult:
    """Aggregate of several trials of a randomised analysis."""

    outcomes: Tuple[TrialOutcome, ...]

    @property
    def runs(self) -> int:
        """Number of trials aggregated."""
        return len(self.outcomes)

    @property
    def mean_estimate(self) -> float:
        """Average of the per-trial estimates (the paper's "estimate" column)."""
        return statistics.fmean(outcome.estimate for outcome in self.outcomes)

    @property
    def empirical_std(self) -> float:
        """Standard deviation of the estimates across trials (paper's "σ" in Table 2)."""
        if self.runs < 2:
            return 0.0
        return statistics.stdev(outcome.estimate for outcome in self.outcomes)

    @property
    def mean_reported_std(self) -> float:
        """Average of the per-trial reported standard deviations (Table 3/4 "σ")."""
        return statistics.fmean(outcome.reported_std for outcome in self.outcomes)

    @property
    def mean_time(self) -> float:
        """Average wall-clock time per trial, in seconds."""
        return statistics.fmean(outcome.elapsed for outcome in self.outcomes)

    @property
    def mean_samples(self) -> float:
        """Average samples spent per trial (0 when trials did not report it)."""
        return statistics.fmean(outcome.samples for outcome in self.outcomes)

    @property
    def mean_rounds(self) -> float:
        """Average adaptive rounds per trial (0 when trials did not report it)."""
        return statistics.fmean(outcome.rounds for outcome in self.outcomes)

    @property
    def total_store_hits(self) -> int:
        """Persistent-store hits summed over all trials."""
        return sum(outcome.store_hits for outcome in self.outcomes)

    @property
    def total_warm_starts(self) -> int:
        """Factors warm-started from stored counts, summed over all trials."""
        return sum(outcome.warm_starts for outcome in self.outcomes)

    @property
    def total_store_merges(self) -> int:
        """Merge-on-write publishes into existing entries, over all trials."""
        return sum(outcome.store_merges for outcome in self.outcomes)

    def summary(self) -> str:
        """Compact single-line summary for logging."""
        text = (
            f"estimate={self.mean_estimate:.6f} σ_runs={self.empirical_std:.2e} "
            f"σ_reported={self.mean_reported_std:.2e} time={self.mean_time:.2f}s ({self.runs} runs)"
        )
        if self.total_store_hits or self.total_warm_starts or self.total_store_merges:
            text += (
                f" store[hits={self.total_store_hits} warm={self.total_warm_starts}"
                f" merges={self.total_store_merges}]"
            )
        return text


def _run_trials(
    trial: Callable[[int], TrialOutcome],
    seeds: Sequence[int],
    executor: Optional["Executor"],
) -> Tuple[TrialOutcome, ...]:
    """Dispatch seeded trials on the executor (in-thread when None), in order."""
    if executor is None:
        return tuple(trial(seed) for seed in seeds)
    return tuple(executor.map(trial, list(seeds)))


def _timed_plain_trial(run: Callable[[int], Tuple[float, float]], seed: int) -> TrialOutcome:
    started = time.perf_counter()
    estimate, reported_std = run(seed)
    elapsed = time.perf_counter() - started
    if math.isnan(estimate) or math.isnan(reported_std):
        raise ValueError(f"trial with seed {seed} produced NaN results")
    return TrialOutcome(estimate, reported_std, elapsed)


def repeat_analysis(
    run: Callable[[int], Tuple[float, float]],
    runs: int = 30,
    base_seed: int = 0,
    executor: Optional["Executor"] = None,
) -> RepeatedResult:
    """Run ``run(seed)`` for ``runs`` independent seeds and aggregate the outcomes.

    ``run`` must return a ``(estimate, reported_std)`` pair; wall-clock time is
    measured here so every analysis is timed consistently.  Seeds come from
    :func:`trial_seeds`, and independent trials are dispatched through
    ``executor`` when one is given (trial order is preserved either way).
    """
    if runs < 1:
        raise ValueError("at least one run is required")
    outcomes = _run_trials(functools.partial(_timed_plain_trial, run), trial_seeds(runs, base_seed), executor)
    return RepeatedResult(outcomes)


def _timed_quantification_trial(run: Callable[[int], "QCoralResult"], seed: int) -> TrialOutcome:
    started = time.perf_counter()
    result = run(seed)
    elapsed = time.perf_counter() - started
    if math.isnan(result.mean) or math.isnan(result.std):
        raise ValueError(f"trial with seed {seed} produced NaN results")
    cache = result.cache_statistics
    return TrialOutcome(
        result.mean,
        result.std,
        elapsed,
        result.total_samples,
        result.rounds,
        store_hits=cache.store_hits,
        warm_starts=cache.warm_starts,
        store_merges=cache.store_merges,
    )


def repeat_quantification(
    run: Callable[[int], "QCoralResult"],
    runs: int = 30,
    base_seed: int = 0,
    executor: Optional["Executor"] = None,
) -> RepeatedResult:
    """Like :func:`repeat_analysis` for callables returning a full result.

    Deprecated entry point: prefer building a :class:`~repro.api.query.Query`
    and calling ``query.repeat(...)`` (which runs through :func:`repeat_query`
    below).  ``run(seed)`` must return a
    :class:`~repro.core.qcoral.QCoralResult`; the per-trial sample counts and
    adaptive round counts are recorded alongside the estimate, so
    convergence-vs-budget trajectories can be aggregated the same way the
    paper aggregates estimates.
    """
    if runs < 1:
        raise ValueError("at least one run is required")
    outcomes = _run_trials(functools.partial(_timed_quantification_trial, run), trial_seeds(runs, base_seed), executor)
    return RepeatedResult(outcomes)


def _timed_query_trial(query: "Query", seed: int) -> TrialOutcome:
    started = time.perf_counter()
    report = query.seed(seed).run()
    elapsed = time.perf_counter() - started
    if math.isnan(report.mean) or math.isnan(report.std):
        raise ValueError(f"trial with seed {seed} produced NaN results")
    cache = report.cache_statistics
    return TrialOutcome(
        report.mean,
        report.std,
        elapsed,
        report.total_samples,
        report.rounds,
        store_hits=cache.store_hits if cache is not None else 0,
        warm_starts=cache.warm_starts if cache is not None else 0,
        store_merges=cache.store_merges if cache is not None else 0,
    )


def repeat_query(
    query: "Query",
    runs: int = 30,
    base_seed: int = 0,
    executor: Optional["Executor"] = None,
) -> RepeatedResult:
    """Run a facade :class:`~repro.api.query.Query` at ``runs`` spawned seeds.

    The facade-native form of :func:`repeat_quantification`: each trial is
    ``query.seed(s).run()`` for the seeds of :func:`trial_seeds`, so a query
    and a hand-rolled ``quantify``-per-seed loop aggregate identically.
    Dispatching trials on a process executor requires the query to pickle;
    session-bound queries generally do not, so use the serial/thread backends
    (or None) there.
    """
    if runs < 1:
        raise ValueError("at least one run is required")
    outcomes = _run_trials(functools.partial(_timed_query_trial, query), trial_seeds(runs, base_seed), executor)
    return RepeatedResult(outcomes)
