"""End-to-end pipeline, experiment runner, and result formatting.

The pipeline/runner entry points that predate the Session facade —
``ProbabilisticAnalysisPipeline``, ``PipelineResult``, ``analyze_program``,
and ``repeat_quantification`` — are still exported here but deprecated:
accessing them through this package emits a :class:`DeprecationWarning`
pointing at the :mod:`repro.api` replacement.  They keep returning
numerically identical fixed-seed results (the facade compiles down to the
same engine), and importing them from their defining submodules stays silent
for internal use.
"""

from __future__ import annotations

import importlib
import warnings

from repro.analysis.results import Table, TableRow, format_interval
from repro.analysis.runner import (
    RepeatedResult,
    TrialOutcome,
    repeat_analysis,
    repeat_query,
    trial_seeds,
)

__all__ = [
    "RepeatedResult",
    "TrialOutcome",
    "repeat_analysis",
    "repeat_query",
    "trial_seeds",
    "Table",
    "TableRow",
    "format_interval",
]
# The deprecated entry points (ProbabilisticAnalysisPipeline, PipelineResult,
# analyze_program, repeat_quantification) resolve through __getattr__ below
# with a DeprecationWarning; they are NOT in __all__ so star-imports stay
# warning-free.

#: Deprecated exports: name → (defining module, replacement shown in the warning).
_DEPRECATED = {
    "ProbabilisticAnalysisPipeline": ("repro.analysis.pipeline", "repro.Session().analyze(...)"),
    "PipelineResult": ("repro.analysis.pipeline", "repro.Report"),
    "analyze_program": ("repro.analysis.pipeline", "repro.Session().analyze(...).run()"),
    "repeat_quantification": ("repro.analysis.runner", "Query.repeat(...)"),
}


def __getattr__(name: str):
    try:
        module_name, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    warnings.warn(
        f"repro.analysis.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(__all__) | set(_DEPRECATED))
