"""End-to-end pipeline, experiment runner, and result formatting."""

from repro.analysis.pipeline import (
    PipelineResult,
    ProbabilisticAnalysisPipeline,
    analyze_program,
)
from repro.analysis.results import Table, TableRow, format_interval
from repro.analysis.runner import (
    RepeatedResult,
    TrialOutcome,
    repeat_analysis,
    repeat_quantification,
    trial_seeds,
)

__all__ = [
    "ProbabilisticAnalysisPipeline",
    "PipelineResult",
    "analyze_program",
    "RepeatedResult",
    "TrialOutcome",
    "repeat_analysis",
    "repeat_quantification",
    "trial_seeds",
    "Table",
    "TableRow",
    "format_interval",
]
