"""Name → value registries behind the pluggable backend surfaces.

Estimation methods, executor backends, and store backends used to be
hardcoded tuples (``ESTIMATION_METHODS`` / ``EXECUTOR_KINDS`` /
``STORE_BACKENDS``) with if/elif dispatch next to each.  A :class:`Registry`
replaces both halves: the registry *is* the dispatch table, and a
:class:`RegistryView` is a live, tuple-like window onto the registered names
that keeps every historical use of the old tuples working (``in`` checks,
``list(...)`` for CLI choices, f-string interpolation in error messages) while
new registrations show up everywhere at once.

Registration is additive and explicit: :meth:`Registry.register` refuses to
overwrite silently (pass ``replace=True`` to shadow a builtin), and
:meth:`Registry.unregister` exists so plugins and tests can clean up after
themselves.  The public registration helpers live in
:mod:`repro.api.registry` (``register_method`` / ``register_executor`` /
``register_store_backend``).
"""

from __future__ import annotations

import threading
from typing import Dict, Generic, Iterator, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError

_ValueT = TypeVar("_ValueT")


class Registry(Generic[_ValueT]):
    """A locked, ordered name → value map with tuple-compatible name views.

    ``kind`` is the human-readable noun used in error messages (for example
    ``"executor kind"``), chosen so registry errors render exactly like the
    messages the hardcoded tuples used to produce.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._entries: Dict[str, _ValueT] = {}
        self._lock = threading.Lock()

    @property
    def kind(self) -> str:
        """The noun this registry's error messages use for its entries."""
        return self._kind

    def register(self, name: str, value: _ValueT, *, replace: bool = False) -> _ValueT:
        """Register ``value`` under ``name``; refuses silent overwrites."""
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"{self._kind} name must be a non-empty string, got {name!r}")
        with self._lock:
            if name in self._entries and not replace:
                raise ConfigurationError(
                    f"{self._kind} {name!r} is already registered; pass replace=True to override it"
                )
            self._entries[name] = value
        return value

    def unregister(self, name: str) -> _ValueT:
        """Remove (and return) the entry registered under ``name``."""
        with self._lock:
            if name in self._entries:
                return self._entries.pop(name)
        # Raise outside the lock: names() re-acquires it for the message.
        raise ConfigurationError(f"unknown {self._kind} {name!r}; expected one of {self.names()}")

    def get(self, name: str) -> _ValueT:
        """The value registered under ``name``; raises on unknown names."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                pass
        raise ConfigurationError(f"unknown {self._kind} {name!r}; expected one of {self.names()}")

    def names(self) -> Tuple[str, ...]:
        """Snapshot of the registered names, in registration order."""
        with self._lock:
            return tuple(self._entries)

    def view(self) -> "RegistryView":
        """A live, tuple-like view of the registered names."""
        return RegistryView(self)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self._kind!r}, names={self.names()!r})"


class RegistryView(Sequence[str]):
    """A live window onto a registry's names that behaves like a tuple.

    Supports everything the old hardcoded name tuples were used for —
    membership tests, iteration (``list(...)`` for ``argparse`` choices),
    indexing, equality against tuples/lists, and tuple-style ``repr`` inside
    error messages — while always reflecting the registry's current contents.
    """

    def __init__(self, registry: Registry) -> None:
        self._registry = registry

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __getitem__(self, index):
        return self._registry.names()[index]

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RegistryView):
            return self._registry.names() == other._registry.names()
        if isinstance(other, (tuple, list)):
            return self._registry.names() == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._registry.names())

    def __repr__(self) -> str:
        return repr(self._registry.names())
