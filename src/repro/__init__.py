"""qCORAL reproduction: compositional solution space quantification.

This package reproduces the PLDI 2014 paper "Compositional Solution Space
Quantification for Probabilistic Software Analysis" (Borges, Filieri,
d'Amorim, Păsăreanu, Visser).  The public API is re-exported here:

* :class:`UsageProfile` — probabilistic characterisation of the inputs.
* :func:`parse_constraint_set` / :class:`ConstraintSet` — the constraint
  language path conditions are written in.
* :class:`QCoralAnalyzer` / :func:`quantify` — the compositional statistical
  quantification engine (the paper's contribution).
* :mod:`repro.symexec` — a small imperative language with a bounded symbolic
  executor that produces path conditions (the Symbolic PathFinder substitute).
* :mod:`repro.baselines` — the comparison techniques used in the evaluation.
"""

from repro.core.estimate import Estimate
from repro.exec import (
    EXECUTOR_KINDS,
    Executor,
    ProcessPoolExecutor,
    SeedStream,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.core.profiles import (
    BinomialDistribution,
    CategoricalDistribution,
    PiecewiseUniformDistribution,
    TruncatedGeometricDistribution,
    TruncatedNormalDistribution,
    TruncatedPoissonDistribution,
    UniformDistribution,
    UsageProfile,
    parse_distribution_spec,
)
from repro.core.importance import ESTIMATION_METHODS, ImportanceSampler, importance_sampling
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig, QCoralResult, quantify
from repro.store import (
    STORE_BACKENDS,
    EstimateStore,
    JsonlStore,
    MemoryStore,
    SqliteStore,
    StoreEntry,
    open_store,
)
from repro.lang.ast import Constraint, ConstraintSet, PathCondition
from repro.lang.parser import (
    parse_constraint,
    parse_constraint_set,
    parse_expression,
    parse_path_condition,
)

__version__ = "0.1.0"

__all__ = [
    "Estimate",
    "UsageProfile",
    "UniformDistribution",
    "TruncatedNormalDistribution",
    "PiecewiseUniformDistribution",
    "BinomialDistribution",
    "TruncatedPoissonDistribution",
    "TruncatedGeometricDistribution",
    "CategoricalDistribution",
    "parse_distribution_spec",
    "ESTIMATION_METHODS",
    "ImportanceSampler",
    "importance_sampling",
    "QCoralAnalyzer",
    "QCoralConfig",
    "QCoralResult",
    "quantify",
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "EXECUTOR_KINDS",
    "make_executor",
    "SeedStream",
    "EstimateStore",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "StoreEntry",
    "STORE_BACKENDS",
    "open_store",
    "Constraint",
    "PathCondition",
    "ConstraintSet",
    "parse_expression",
    "parse_constraint",
    "parse_path_condition",
    "parse_constraint_set",
    "__version__",
]
