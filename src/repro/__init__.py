"""qCORAL reproduction: compositional solution space quantification.

This package reproduces the PLDI 2014 paper "Compositional Solution Space
Quantification for Probabilistic Software Analysis" (Borges, Filieri,
d'Amorim, Păsăreanu, Visser).

The public way in is the **Session facade** (:mod:`repro.api`)::

    from repro import Session

    with Session() as session:
        report = (
            session.quantify("x <= 0 - y && y <= x", {"x": (-1, 1), "y": (-1, 1)})
            .with_budget(30_000)
            .seed(1)
            .run()
        )
        print(report.mean, report.std)

* :class:`Session` — owns executor + store lifecycles, builds queries.
* :class:`Query` — fluent, immutable builder; ``run()`` blocks,
  ``stream()`` yields per-round results, ``repeat()`` aggregates trials.
* :class:`Report` — the unified result type with a versioned JSON schema.
* ``register_method`` / ``register_executor`` / ``register_store_backend`` —
  pluggable backend registries behind method/executor/store resolution.

The pre-facade entry points (``quantify``, ``ProbabilisticAnalysisPipeline``,
``PipelineResult``, ``analyze_program``, ``repeat_quantification``) remain
available as deprecated shims with bit-identical fixed-seed results; the
lower layers (:mod:`repro.core`, :mod:`repro.exec`, :mod:`repro.store`,
:mod:`repro.symexec`, :mod:`repro.baselines`) stay importable directly.
"""

from __future__ import annotations

import importlib
import logging
import warnings

from repro.api import (
    SCHEMA_VERSION,
    Query,
    Report,
    RoundStream,
    Session,
    register_executor,
    register_method,
    register_store_backend,
)
from repro.core.estimate import Estimate
from repro.core.methods import ESTIMATION_METHODS, EstimationMethod
from repro.core.importance import ImportanceSampler, importance_sampling
from repro.core.profiles import (
    BinomialDistribution,
    CategoricalDistribution,
    PiecewiseUniformDistribution,
    TruncatedGeometricDistribution,
    TruncatedNormalDistribution,
    TruncatedPoissonDistribution,
    UniformDistribution,
    UsageProfile,
    parse_distribution_spec,
)
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig, QCoralResult, RoundReport
from repro.incremental import (
    ConstraintDiff,
    FactorDelta,
    ReusePlan,
    diff_constraint_sets,
    plan_reuse,
)
from repro.exec import (
    EXECUTOR_KINDS,
    Executor,
    ProcessPoolExecutor,
    SeedStream,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
)
from repro.lang.ast import Constraint, ConstraintSet, PathCondition
from repro.lang.kernel import (
    KERNEL_TIERS,
    clear_kernel_cache,
    current_kernel_tier,
    get_kernel,
    kernel_cache_info,
    kernel_cache_stats,
    set_kernel_tier,
)
from repro.obs import Observability
from repro.lang.parser import (
    parse_constraint,
    parse_constraint_set,
    parse_expression,
    parse_path_condition,
)
from repro.store import (
    STORE_BACKENDS,
    EstimateStore,
    JsonlStore,
    MemoryStore,
    SqliteStore,
    StoreEntry,
    open_store,
)

__version__ = "0.2.0"

# Library convention: never emit log records unless the application opts in
# (the CLI's --verbose does; embedders attach their own handlers).
logging.getLogger("repro").addHandler(logging.NullHandler())

__all__ = [
    # Session facade (the documented public API)
    "Session",
    "Query",
    "RoundStream",
    "Report",
    "SCHEMA_VERSION",
    "register_method",
    "register_executor",
    "register_store_backend",
    # Observability (zero-perturbation spans + metrics)
    "Observability",
    # Profiles and the constraint language
    "Estimate",
    "UsageProfile",
    "UniformDistribution",
    "TruncatedNormalDistribution",
    "PiecewiseUniformDistribution",
    "BinomialDistribution",
    "TruncatedPoissonDistribution",
    "TruncatedGeometricDistribution",
    "CategoricalDistribution",
    "parse_distribution_spec",
    "Constraint",
    "PathCondition",
    "ConstraintSet",
    "parse_expression",
    "parse_constraint",
    "parse_path_condition",
    "parse_constraint_set",
    # Fused constraint kernels
    "get_kernel",
    "KERNEL_TIERS",
    "set_kernel_tier",
    "current_kernel_tier",
    "kernel_cache_stats",
    "kernel_cache_info",
    "clear_kernel_cache",
    # Engine layer (stable, non-deprecated lower-level surface)
    "QCoralAnalyzer",
    "QCoralConfig",
    "QCoralResult",
    "RoundReport",
    "EstimationMethod",
    "ESTIMATION_METHODS",
    "ImportanceSampler",
    "importance_sampling",
    # Incremental re-quantification (constraint-set diff + reuse plan)
    "ConstraintDiff",
    "FactorDelta",
    "diff_constraint_sets",
    "ReusePlan",
    "plan_reuse",
    # Executor backends
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "EXECUTOR_KINDS",
    "make_executor",
    "SeedStream",
    # Store backends
    "EstimateStore",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "StoreEntry",
    "STORE_BACKENDS",
    "open_store",
    "__version__",
]
# Deprecated shims (quantify, ProbabilisticAnalysisPipeline, PipelineResult,
# analyze_program, repeat_quantification) resolve through __getattr__ below
# with a DeprecationWarning.  They are deliberately NOT in __all__ so that
# `from repro import *` stays warning-free; the API-surface snapshot tracks
# them through _DEPRECATED_EXPORTS instead.

#: Deprecated exports: name → (module, attribute, replacement in the warning).
_DEPRECATED_EXPORTS = {
    "quantify": ("repro.core.qcoral", "quantify", "Session().quantify(...).run()"),
    "ProbabilisticAnalysisPipeline": (
        "repro.analysis.pipeline",
        "ProbabilisticAnalysisPipeline",
        "Session().analyze(...)",
    ),
    "PipelineResult": ("repro.analysis.pipeline", "PipelineResult", "repro.Report"),
    "analyze_program": ("repro.analysis.pipeline", "analyze_program", "Session().analyze(...).run()"),
    "repeat_quantification": ("repro.analysis.runner", "repeat_quantification", "Query.repeat(...)"),
}


def __getattr__(name: str):
    try:
        module_name, attribute, replacement = _DEPRECATED_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    warnings.warn(
        f"repro.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), attribute)


def __dir__():
    return sorted(set(globals()) | set(__all__) | set(_DEPRECATED_EXPORTS))
