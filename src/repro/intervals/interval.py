"""Closed real intervals with (conservative) outward-rounded arithmetic.

This module is the foundation of the RealPaver substitute: every interval
operation is *enclosing*, i.e. the exact real result of applying the operation
pointwise to members of the operand intervals is contained in the returned
interval.  Outward rounding is implemented with :func:`math.nextafter`, which
is cheaper and simpler than switching the FPU rounding mode and is sufficient
for the soundness argument the paper relies on (the union of ICP boxes must
contain *all* solutions).

The special empty interval is represented by :data:`EMPTY`; arithmetic on it
propagates emptiness.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.errors import EmptyIntervalError, IntervalError

Number = Union[int, float]

_INF = math.inf


def _next_down(value: float) -> float:
    """Largest float strictly below ``value`` (identity on ``-inf``).

    A *lower* bound of ``+inf`` can only come from a finite computation that
    overflowed (e.g. the reciprocal of a subnormal), whose true value merely
    exceeds the largest finite float; relaxing it to ``DBL_MAX`` keeps the
    enclosure sound instead of producing an interval that excludes the true
    value.
    """
    if value == -_INF:
        return value
    if value == _INF:
        return sys.float_info.max
    return math.nextafter(value, -_INF)


def _next_up(value: float) -> float:
    """Smallest float strictly above ``value`` (identity on ``+inf``).

    Symmetrically to :func:`_next_down`, an *upper* bound of ``-inf`` is an
    overflow artefact and is relaxed to ``-DBL_MAX``.
    """
    if value == _INF:
        return value
    if value == -_INF:
        return -sys.float_info.max
    return math.nextafter(value, _INF)


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals.

    The interval is *empty* when ``lo > hi``; use :meth:`is_empty` rather than
    comparing the bounds directly.  Instances are immutable and hashable so
    they can be used as cache keys.
    """

    lo: float
    hi: float

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def make(lo: Number, hi: Number) -> "Interval":
        """Build an interval, validating the bounds.

        ``lo`` may equal ``hi`` (a point interval).  NaN bounds are rejected.
        """
        lo_f = float(lo)
        hi_f = float(hi)
        if math.isnan(lo_f) or math.isnan(hi_f):
            raise IntervalError(f"interval bounds may not be NaN: [{lo}, {hi}]")
        return Interval(lo_f, hi_f)

    @staticmethod
    def point(value: Number) -> "Interval":
        """Interval containing exactly ``value``."""
        return Interval.make(value, value)

    @staticmethod
    def empty() -> "Interval":
        """The canonical empty interval."""
        return EMPTY

    @staticmethod
    def entire() -> "Interval":
        """The whole extended real line."""
        return ENTIRE

    @staticmethod
    def hull_of(values: Iterable[Number]) -> "Interval":
        """Smallest interval containing every value in ``values``."""
        lo = _INF
        hi = -_INF
        seen = False
        for value in values:
            value_f = float(value)
            if math.isnan(value_f):
                raise IntervalError("cannot take the hull of NaN values")
            seen = True
            lo = min(lo, value_f)
            hi = max(hi, value_f)
        if not seen:
            return EMPTY
        return Interval(lo, hi)

    # ------------------------------------------------------------------ #
    # Predicates and accessors
    # ------------------------------------------------------------------ #
    def is_empty(self) -> bool:
        """True when the interval contains no point."""
        return self.lo > self.hi

    def is_point(self) -> bool:
        """True when the interval contains exactly one point."""
        return self.lo == self.hi

    def is_bounded(self) -> bool:
        """True when both bounds are finite."""
        return not self.is_empty() and math.isfinite(self.lo) and math.isfinite(self.hi)

    def width(self) -> float:
        """Length ``hi - lo`` of the interval (0 for empty intervals)."""
        if self.is_empty():
            return 0.0
        return self.hi - self.lo

    def midpoint(self) -> float:
        """Midpoint of a non-empty bounded interval."""
        if self.is_empty():
            raise EmptyIntervalError("midpoint of an empty interval")
        if not self.is_bounded():
            raise IntervalError(f"midpoint of an unbounded interval {self}")
        mid = 0.5 * (self.lo + self.hi)
        # Guard against overflow of lo + hi for huge magnitudes.
        if not math.isfinite(mid):
            mid = self.lo + 0.5 * (self.hi - self.lo)
        return mid

    def radius(self) -> float:
        """Half of the interval width."""
        return 0.5 * self.width()

    def magnitude(self) -> float:
        """Maximum absolute value over the interval."""
        if self.is_empty():
            return 0.0
        return max(abs(self.lo), abs(self.hi))

    def mignitude(self) -> float:
        """Minimum absolute value over the interval."""
        if self.is_empty():
            return 0.0
        if self.contains(0.0):
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    def contains(self, value: Number) -> bool:
        """True when ``value`` lies inside the interval."""
        if self.is_empty():
            return False
        return self.lo <= float(value) <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` is a subset of this interval."""
        if other.is_empty():
            return True
        if self.is_empty():
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True when the intersection with ``other`` is non-empty."""
        if self.is_empty() or other.is_empty():
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    def clamp(self, value: Number) -> float:
        """Closest point of the interval to ``value``."""
        if self.is_empty():
            raise EmptyIntervalError("cannot clamp into an empty interval")
        return min(max(float(value), self.lo), self.hi)

    def sample_points(self, count: int) -> Iterator[float]:
        """Yield ``count`` evenly spaced points covering the interval."""
        if self.is_empty() or count <= 0:
            return
        if count == 1 or self.is_point():
            yield self.midpoint() if self.is_bounded() else self.lo
            return
        step = self.width() / (count - 1)
        for index in range(count):
            yield self.lo + index * step

    # ------------------------------------------------------------------ #
    # Lattice operations
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Interval") -> "Interval":
        """Set intersection."""
        if self.is_empty() or other.is_empty():
            return EMPTY
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return EMPTY
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands (interval union hull)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def split(self, at: Optional[float] = None) -> Tuple["Interval", "Interval"]:
        """Split at ``at`` (default: midpoint) into two sub-intervals."""
        if self.is_empty():
            raise EmptyIntervalError("cannot split an empty interval")
        point = self.midpoint() if at is None else float(at)
        if not self.contains(point):
            raise IntervalError(f"split point {point} not inside {self}")
        return Interval(self.lo, point), Interval(point, self.hi)

    def inflate(self, amount: float) -> "Interval":
        """Widen both bounds outward by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise IntervalError("inflate amount must be non-negative")
        if self.is_empty():
            return self
        return Interval(self.lo - amount, self.hi + amount)

    # ------------------------------------------------------------------ #
    # Arithmetic (enclosing / outward rounded)
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Interval", Number]) -> "Interval":
        other = _coerce(other)
        if self.is_empty() or other.is_empty():
            return EMPTY
        return Interval(_next_down(self.lo + other.lo), _next_up(self.hi + other.hi))

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: Union["Interval", Number]) -> "Interval":
        other = _coerce(other)
        if self.is_empty() or other.is_empty():
            return EMPTY
        return Interval(_next_down(self.lo - other.hi), _next_up(self.hi - other.lo))

    def __rsub__(self, other: Union["Interval", Number]) -> "Interval":
        return _coerce(other) - self

    def __mul__(self, other: Union["Interval", Number]) -> "Interval":
        other = _coerce(other)
        if self.is_empty() or other.is_empty():
            return EMPTY
        products = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                product = _mul_bound(a, b)
                products.append(product)
        return Interval(_next_down(min(products)), _next_up(max(products)))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Interval", Number]) -> "Interval":
        other = _coerce(other)
        if self.is_empty() or other.is_empty():
            return EMPTY
        if not other.contains(0.0):
            reciprocals = []
            for b in (other.lo, other.hi):
                reciprocals.append(1.0 / b)
            recip = Interval(_next_down(min(reciprocals)), _next_up(max(reciprocals)))
            return self * recip
        if other.is_point():  # other == [0, 0]
            return EMPTY if not self.contains(0.0) else ENTIRE
        # Division by an interval containing zero: result is unbounded.
        return ENTIRE

    def __rtruediv__(self, other: Union["Interval", Number]) -> "Interval":
        return _coerce(other) / self

    def __abs__(self) -> "Interval":
        if self.is_empty():
            return EMPTY
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return Interval(-self.hi, -self.lo)
        return Interval(0.0, max(-self.lo, self.hi))

    def sqr(self) -> "Interval":
        """Enclosure of ``x * x`` — tighter than ``self * self`` around zero."""
        if self.is_empty():
            return EMPTY
        abs_iv = abs(self)
        return Interval(max(0.0, _next_down(abs_iv.lo * abs_iv.lo)), _next_up(abs_iv.hi * abs_iv.hi))

    # ------------------------------------------------------------------ #
    # Dunder plumbing
    # ------------------------------------------------------------------ #
    def __bool__(self) -> bool:
        return not self.is_empty()

    def __iter__(self) -> Iterator[float]:
        yield self.lo
        yield self.hi

    def __repr__(self) -> str:
        if self.is_empty():
            return "Interval.EMPTY"
        return f"[{self.lo!r}, {self.hi!r}]"


def _coerce(value: Union[Interval, Number]) -> Interval:
    """Coerce a scalar into a point interval (identity on intervals)."""
    if isinstance(value, Interval):
        return value
    return Interval.point(value)


def _mul_bound(a: float, b: float) -> float:
    """Multiply two bounds with the IEEE convention 0 * inf = 0.

    In interval multiplication the indeterminate products arising from a zero
    bound and an infinite bound must resolve to zero, otherwise the resulting
    interval would spuriously become the whole line.
    """
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


#: The canonical empty interval.
EMPTY = Interval(_INF, -_INF)

#: The whole extended real line.
ENTIRE = Interval(-_INF, _INF)

#: Convenience unit interval [0, 1].
UNIT = Interval(0.0, 1.0)
