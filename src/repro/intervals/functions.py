"""Interval extensions of the mathematical functions used in path conditions.

Each function takes interval arguments and returns an interval that encloses
the exact image of the function over those arguments.  A small safety margin
(one ULP outward per bound, plus a fixed relative pad for the periodic
functions) keeps every enclosure conservative without the complexity of
correctly-rounded libm bounds.

The set of functions mirrors what the paper's subjects require: ``sin``,
``cos``, ``tan``, ``atan``, ``atan2``, ``asin``, ``acos``, ``exp``, ``log``,
``sqrt``, ``pow`` plus hyperbolic functions and ``min``/``max``/``abs``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence

from repro.errors import IntervalError, UnknownFunctionError
from repro.intervals.interval import EMPTY, ENTIRE, Interval, _next_down, _next_up

_TWO_PI = 2.0 * math.pi
_HALF_PI = 0.5 * math.pi

#: Width beyond which a periodic function is immediately enclosed by its range.
_PERIODIC_BAILOUT = 1.0e16


def _pad(lo: float, hi: float) -> Interval:
    """Build an interval padded outward by one ULP on each side."""
    return Interval(_next_down(lo), _next_up(hi))


# --------------------------------------------------------------------------- #
# Monotone helpers
# --------------------------------------------------------------------------- #
def _monotone(func: Callable[[float], float], iv: Interval) -> Interval:
    """Enclosure of a monotonically increasing function over ``iv``."""
    if iv.is_empty():
        return EMPTY
    return _pad(func(iv.lo), func(iv.hi))


def interval_exp(iv: Interval) -> Interval:
    """Enclosure of ``exp`` (overflow saturates to +inf)."""
    if iv.is_empty():
        return EMPTY

    def safe_exp(x: float) -> float:
        try:
            return math.exp(x)
        except OverflowError:
            return math.inf

    return _pad(max(0.0, _next_down(safe_exp(iv.lo))), safe_exp(iv.hi))


def interval_log(iv: Interval) -> Interval:
    """Enclosure of the natural logarithm over the positive part of ``iv``."""
    if iv.is_empty() or iv.hi <= 0.0:
        return EMPTY
    lo = -math.inf if iv.lo <= 0.0 else math.log(iv.lo)
    hi = math.log(iv.hi)
    return _pad(lo, hi)


def interval_log10(iv: Interval) -> Interval:
    """Enclosure of the base-10 logarithm over the positive part of ``iv``."""
    if iv.is_empty() or iv.hi <= 0.0:
        return EMPTY
    lo = -math.inf if iv.lo <= 0.0 else math.log10(iv.lo)
    hi = math.log10(iv.hi)
    return _pad(lo, hi)


def interval_sqrt(iv: Interval) -> Interval:
    """Enclosure of the square root over the non-negative part of ``iv``."""
    if iv.is_empty() or iv.hi < 0.0:
        return EMPTY
    lo = 0.0 if iv.lo <= 0.0 else math.sqrt(iv.lo)
    hi = math.sqrt(iv.hi)
    return Interval(max(0.0, _next_down(lo)), _next_up(hi))


def interval_atan(iv: Interval) -> Interval:
    """Enclosure of the arctangent."""
    return _monotone(math.atan, iv)


def interval_sinh(iv: Interval) -> Interval:
    """Enclosure of the hyperbolic sine."""
    def safe_sinh(x: float) -> float:
        try:
            return math.sinh(x)
        except OverflowError:
            return math.copysign(math.inf, x)

    return _monotone(safe_sinh, iv)


def interval_tanh(iv: Interval) -> Interval:
    """Enclosure of the hyperbolic tangent, clipped to [-1, 1]."""
    result = _monotone(math.tanh, iv)
    return result.intersect(Interval(-1.0, 1.0)) if not result.is_empty() else result


def interval_cosh(iv: Interval) -> Interval:
    """Enclosure of the hyperbolic cosine."""
    if iv.is_empty():
        return EMPTY

    def safe_cosh(x: float) -> float:
        try:
            return math.cosh(x)
        except OverflowError:
            return math.inf

    values = [safe_cosh(iv.lo), safe_cosh(iv.hi)]
    lo = 1.0 if iv.contains(0.0) else min(values)
    return _pad(max(1.0, _next_down(lo)), max(values))


def interval_asin(iv: Interval) -> Interval:
    """Enclosure of arcsine over the intersection of ``iv`` with [-1, 1]."""
    clipped = iv.intersect(Interval(-1.0, 1.0))
    if clipped.is_empty():
        return EMPTY
    result = _monotone(math.asin, clipped)
    return result.intersect(Interval(-_HALF_PI, _HALF_PI)).hull(result)


def interval_acos(iv: Interval) -> Interval:
    """Enclosure of arccosine over the intersection of ``iv`` with [-1, 1]."""
    clipped = iv.intersect(Interval(-1.0, 1.0))
    if clipped.is_empty():
        return EMPTY
    return _pad(math.acos(clipped.hi), math.acos(clipped.lo))


# --------------------------------------------------------------------------- #
# Periodic functions
# --------------------------------------------------------------------------- #
def interval_sin(iv: Interval) -> Interval:
    """Enclosure of the sine function."""
    if iv.is_empty():
        return EMPTY
    if not iv.is_bounded() or iv.width() >= _TWO_PI or iv.magnitude() > _PERIODIC_BAILOUT:
        return Interval(-1.0, 1.0)
    lo, hi = iv.lo, iv.hi
    result_lo = min(math.sin(lo), math.sin(hi))
    result_hi = max(math.sin(lo), math.sin(hi))
    # sin attains +1 at pi/2 + 2k*pi and -1 at -pi/2 + 2k*pi.
    if _contains_congruent(lo, hi, _HALF_PI):
        result_hi = 1.0
    if _contains_congruent(lo, hi, -_HALF_PI):
        result_lo = -1.0
    return _clip_unit(_pad(result_lo, result_hi))


def interval_cos(iv: Interval) -> Interval:
    """Enclosure of the cosine function."""
    if iv.is_empty():
        return EMPTY
    if not iv.is_bounded() or iv.width() >= _TWO_PI or iv.magnitude() > _PERIODIC_BAILOUT:
        return Interval(-1.0, 1.0)
    lo, hi = iv.lo, iv.hi
    result_lo = min(math.cos(lo), math.cos(hi))
    result_hi = max(math.cos(lo), math.cos(hi))
    if _contains_congruent(lo, hi, 0.0):
        result_hi = 1.0
    if _contains_congruent(lo, hi, math.pi):
        result_lo = -1.0
    return _clip_unit(_pad(result_lo, result_hi))


def interval_tan(iv: Interval) -> Interval:
    """Enclosure of the tangent function (whole line across a pole)."""
    if iv.is_empty():
        return EMPTY
    if not iv.is_bounded() or iv.width() >= math.pi or iv.magnitude() > _PERIODIC_BAILOUT:
        return ENTIRE
    if _contains_congruent(iv.lo, iv.hi, _HALF_PI, period=math.pi):
        return ENTIRE
    return _pad(math.tan(iv.lo), math.tan(iv.hi))


def _contains_congruent(lo: float, hi: float, target: float, period: float = _TWO_PI) -> bool:
    """True when some ``target + k * period`` lies in ``[lo, hi]``."""
    k = math.ceil((lo - target) / period)
    return target + k * period <= hi


def _clip_unit(iv: Interval) -> Interval:
    """Clip a sine/cosine enclosure to the mathematically valid range."""
    return iv.intersect(Interval(-1.0, 1.0))


def interval_atan2(y: Interval, x: Interval) -> Interval:
    """Enclosure of ``atan2(y, x)``.

    The enclosure is computed from corner evaluations, widened to the full
    range ``[-pi, pi]`` whenever the argument box crosses the branch cut
    (negative x axis) or contains the origin.
    """
    if y.is_empty() or x.is_empty():
        return EMPTY
    full = Interval(-math.pi, math.pi)
    if not (y.is_bounded() and x.is_bounded()):
        return full
    crosses_cut = x.lo < 0.0 and y.contains(0.0)
    contains_origin = x.contains(0.0) and y.contains(0.0)
    if crosses_cut or contains_origin:
        return full
    corners = [math.atan2(yy, xx) for yy in (y.lo, y.hi) for xx in (x.lo, x.hi)]
    return _pad(min(corners), max(corners)).intersect(full)


# --------------------------------------------------------------------------- #
# Powers
# --------------------------------------------------------------------------- #
def interval_pow(base: Interval, exponent: Interval) -> Interval:
    """Enclosure of ``base ** exponent``.

    Integer point exponents get the tight monomial enclosure; other exponents
    are routed through ``exp(exponent * log(base))`` restricted to positive
    bases, which matches the semantics of ``Math.pow`` on the subjects the
    paper analyses (fractional powers of negative numbers are NaN and thus
    excluded from the solution space).
    """
    if base.is_empty() or exponent.is_empty():
        return EMPTY
    if exponent.is_point() and float(exponent.lo).is_integer():
        return integer_power(base, int(exponent.lo))
    positive_base = base.intersect(Interval(0.0, math.inf))
    if positive_base.is_empty():
        return EMPTY
    log_part = interval_log(positive_base)
    if log_part.is_empty():
        # base interval is exactly {0}; 0**e is 0 for e > 0, 1 for e == 0.
        out = Interval.point(0.0)
        if exponent.contains(0.0):
            out = out.hull(Interval.point(1.0))
        return out
    result = interval_exp(exponent * log_part)
    if positive_base.contains(0.0):
        result = result.hull(Interval.point(0.0))
        if exponent.contains(0.0):
            result = result.hull(Interval.point(1.0))
    return result


def integer_power(base: Interval, power: int) -> Interval:
    """Tight enclosure of an integer power of an interval."""
    if base.is_empty():
        return EMPTY
    if power == 0:
        return Interval.point(1.0)
    if power < 0:
        return Interval.point(1.0) / integer_power(base, -power)
    if power % 2 == 0:
        abs_base = abs(base)
        return _pad(_safe_pow(abs_base.lo, power), _safe_pow(abs_base.hi, power))
    return _pad(_safe_pow(base.lo, power), _safe_pow(base.hi, power))


def _safe_pow(value: float, power: int) -> float:
    """``value ** power`` with overflow saturated to signed infinity."""
    try:
        return float(value) ** power
    except OverflowError:
        sign = -1.0 if (value < 0 and power % 2 == 1) else 1.0
        return sign * math.inf


# --------------------------------------------------------------------------- #
# Min / max / misc
# --------------------------------------------------------------------------- #
def interval_min(a: Interval, b: Interval) -> Interval:
    """Enclosure of the pointwise minimum."""
    if a.is_empty() or b.is_empty():
        return EMPTY
    return Interval(min(a.lo, b.lo), min(a.hi, b.hi))


def interval_max(a: Interval, b: Interval) -> Interval:
    """Enclosure of the pointwise maximum."""
    if a.is_empty() or b.is_empty():
        return EMPTY
    return Interval(max(a.lo, b.lo), max(a.hi, b.hi))


def interval_abs(iv: Interval) -> Interval:
    """Enclosure of the absolute value."""
    return abs(iv)


# --------------------------------------------------------------------------- #
# Registry used by the interval evaluator and the HC4 contractor
# --------------------------------------------------------------------------- #
_UNARY: Dict[str, Callable[[Interval], Interval]] = {
    "sin": interval_sin,
    "cos": interval_cos,
    "tan": interval_tan,
    "asin": interval_asin,
    "acos": interval_acos,
    "atan": interval_atan,
    "sinh": interval_sinh,
    "cosh": interval_cosh,
    "tanh": interval_tanh,
    "exp": interval_exp,
    "log": interval_log,
    "log10": interval_log10,
    "sqrt": interval_sqrt,
    "abs": interval_abs,
}

_BINARY: Dict[str, Callable[[Interval, Interval], Interval]] = {
    "pow": interval_pow,
    "atan2": interval_atan2,
    "min": interval_min,
    "max": interval_max,
}


def supported_functions() -> Sequence[str]:
    """Names of every function with an interval extension."""
    return sorted(set(_UNARY) | set(_BINARY))


def apply_function(name: str, args: Sequence[Interval]) -> Interval:
    """Apply the interval extension of function ``name`` to ``args``."""
    if name in _UNARY:
        if len(args) != 1:
            raise IntervalError(f"function {name!r} expects 1 argument, got {len(args)}")
        return _UNARY[name](args[0])
    if name in _BINARY:
        if len(args) != 2:
            raise IntervalError(f"function {name!r} expects 2 arguments, got {len(args)}")
        return _BINARY[name](args[0], args[1])
    raise UnknownFunctionError(name)
