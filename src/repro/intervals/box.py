"""Axis-aligned boxes: named Cartesian products of intervals.

A :class:`Box` maps variable names to :class:`~repro.intervals.interval.Interval`
instances.  Boxes are the currency of the ICP solver (paving output), of the
stratified sampler (strata), and of the input-domain description consumed by
qCORAL.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DomainError, EmptyIntervalError, IntervalError
from repro.intervals.interval import Interval


class Box:
    """An n-dimensional axis-aligned box over named variables.

    The box is immutable: every operation returns a new box.  Variable order
    is preserved (insertion order of the mapping used to build the box) so
    iteration and sampling are deterministic.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Mapping[str, Interval]) -> None:
        self._intervals: Dict[str, Interval] = dict(intervals)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_bounds(bounds: Mapping[str, Tuple[float, float]]) -> "Box":
        """Build a box from a mapping of variable name to ``(lo, hi)`` pairs."""
        intervals = {name: Interval.make(lo, hi) for name, (lo, hi) in bounds.items()}
        return Box(intervals)

    @staticmethod
    def empty(variables: Iterable[str]) -> "Box":
        """A box over ``variables`` in which every interval is empty."""
        return Box({name: Interval.empty() for name in variables})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[str, ...]:
        """Variable names, in insertion order."""
        return tuple(self._intervals)

    def interval(self, name: str) -> Interval:
        """Interval of variable ``name``."""
        try:
            return self._intervals[name]
        except KeyError as exc:
            raise DomainError(f"box has no variable {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[str]:
        return iter(self._intervals)

    def items(self) -> Iterator[Tuple[str, Interval]]:
        """Iterate over ``(name, interval)`` pairs."""
        return iter(self._intervals.items())

    def as_dict(self) -> Dict[str, Interval]:
        """Copy of the underlying mapping."""
        return dict(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._intervals.items())))

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}: {iv!r}" for name, iv in self._intervals.items())
        return f"Box({{{parts}}})"

    # ------------------------------------------------------------------ #
    # Predicates and measures
    # ------------------------------------------------------------------ #
    def is_empty(self) -> bool:
        """True when any coordinate interval is empty."""
        return any(iv.is_empty() for iv in self._intervals.values())

    def is_bounded(self) -> bool:
        """True when every coordinate interval is bounded."""
        return all(iv.is_bounded() for iv in self._intervals.values())

    def volume(self) -> float:
        """Product of the widths of all coordinate intervals.

        A zero-dimensional box has volume 1 (the neutral element of the
        product), which makes weights of projected sub-boxes compose cleanly.
        """
        if self.is_empty():
            return 0.0
        volume = 1.0
        for iv in self._intervals.values():
            volume *= iv.width()
        return volume

    def max_width_variable(self) -> str:
        """Name of the variable whose interval is widest (ties: first)."""
        if not self._intervals:
            raise DomainError("cannot select a variable from an empty box")
        best_name = None
        best_width = -math.inf
        for name, iv in self._intervals.items():
            if iv.width() > best_width:
                best_width = iv.width()
                best_name = name
        assert best_name is not None
        return best_name

    def max_width(self) -> float:
        """Largest coordinate width."""
        if not self._intervals:
            return 0.0
        return max(iv.width() for iv in self._intervals.values())

    def contains_point(self, point: Mapping[str, float]) -> bool:
        """True when ``point`` (a name → value mapping) lies inside the box."""
        for name, iv in self._intervals.items():
            if name not in point or not iv.contains(point[name]):
                return False
        return True

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` is a subset of this box (same variables)."""
        for name, iv in self._intervals.items():
            if name not in other._intervals:
                return False
            if not iv.contains_interval(other._intervals[name]):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def replace(self, name: str, interval: Interval) -> "Box":
        """New box with the interval of ``name`` replaced."""
        if name not in self._intervals:
            raise DomainError(f"box has no variable {name!r}")
        intervals = dict(self._intervals)
        intervals[name] = interval
        return Box(intervals)

    def intersect(self, other: "Box") -> "Box":
        """Coordinate-wise intersection (variables must match)."""
        if set(self._intervals) != set(other._intervals):
            raise DomainError("cannot intersect boxes over different variables")
        return Box({name: iv.intersect(other._intervals[name]) for name, iv in self._intervals.items()})

    def hull(self, other: "Box") -> "Box":
        """Coordinate-wise interval hull (variables must match)."""
        if set(self._intervals) != set(other._intervals):
            raise DomainError("cannot hull boxes over different variables")
        return Box({name: iv.hull(other._intervals[name]) for name, iv in self._intervals.items()})

    def project(self, variables: Sequence[str]) -> "Box":
        """Sub-box over the given variables (order follows ``variables``)."""
        missing = [name for name in variables if name not in self._intervals]
        if missing:
            raise DomainError(f"box has no variables {missing}")
        return Box({name: self._intervals[name] for name in variables})

    def extend(self, other: "Box") -> "Box":
        """Cartesian product with a box over disjoint variables."""
        overlap = set(self._intervals) & set(other._intervals)
        if overlap:
            raise DomainError(f"cannot extend: variables {sorted(overlap)} appear in both boxes")
        intervals = dict(self._intervals)
        intervals.update(other._intervals)
        return Box(intervals)

    def split(self, name: Optional[str] = None, at: Optional[float] = None) -> Tuple["Box", "Box"]:
        """Bisect along ``name`` (default: widest variable) at ``at`` (default: midpoint)."""
        if self.is_empty():
            raise EmptyIntervalError("cannot split an empty box")
        variable = name if name is not None else self.max_width_variable()
        low, high = self.interval(variable).split(at)
        return self.replace(variable, low), self.replace(variable, high)

    def corners(self) -> List[Dict[str, float]]:
        """All 2^n corner points of a bounded box (small n only)."""
        if not self.is_bounded():
            raise IntervalError("corners of an unbounded box are undefined")
        names = list(self._intervals)
        corners: List[Dict[str, float]] = [{}]
        for name in names:
            iv = self._intervals[name]
            corners = [
                {**corner, name: bound}
                for corner in corners
                for bound in ((iv.lo,) if iv.is_point() else (iv.lo, iv.hi))
            ]
        return corners

    def midpoint(self) -> Dict[str, float]:
        """Centre point of a bounded box."""
        return {name: iv.midpoint() for name, iv in self._intervals.items()}

    def relative_volume(self, domain: "Box") -> float:
        """Volume of this box divided by the volume of ``domain``.

        This is the stratified-sampling weight ``w_i = size(R_i)/size(D)``
        from the paper's Equation (3).  Only the variables present in this box
        are considered (a projected factor box is weighed against the matching
        projection of the domain).
        """
        if self.is_empty():
            return 0.0
        weight = 1.0
        for name, iv in self._intervals.items():
            denominator = domain.interval(name).width()
            if denominator == 0.0:
                # Point domains contribute no measure; treat them as weight 1
                # so a degenerate dimension does not zero-out the whole weight.
                continue
            weight *= iv.width() / denominator
        return weight
