"""Interval-arithmetic substrate: intervals, boxes, and interval functions."""

from repro.intervals.box import Box
from repro.intervals.functions import apply_function, supported_functions
from repro.intervals.interval import EMPTY, ENTIRE, UNIT, Interval

__all__ = [
    "Box",
    "Interval",
    "EMPTY",
    "ENTIRE",
    "UNIT",
    "apply_function",
    "supported_functions",
]
