"""Command-line interface of the qCORAL reproduction.

Two sub-commands cover the two entry points of the paper's tool chain:

``qcoral analyze``
    Run the full pipeline of Figure 1 on a mini-language program: symbolic
    execution followed by probabilistic analysis of a target event.

``qcoral quantify``
    Skip symbolic execution and quantify a constraint set given directly in
    the constraint language, with per-variable domains supplied on the command
    line (the mode in which the paper's microbenchmarks are run).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro.analysis.pipeline import analyze_program
from repro.analysis.results import convergence_table, reuse_summary
from repro.core.importance import DEFAULT_MASS_SPLIT_BOXES, ESTIMATION_METHODS
from repro.core.profiles import (
    Distribution,
    UniformDistribution,
    UsageProfile,
    parse_distribution_spec,
)
from repro.core.qcoral import QCoralAnalyzer, QCoralConfig, QCoralResult
from repro.errors import ReproError
from repro.exec.executor import EXECUTOR_KINDS
from repro.lang.parser import parse_constraint_set
from repro.store.backends import STORE_BACKENDS
from repro.symexec.parser import parse_program


def _parse_domain(specs: Sequence[str]) -> Dict[str, Distribution]:
    """Parse ``name=SPEC`` command-line domain specifications.

    ``SPEC`` is any form :func:`repro.core.profiles.parse_distribution_spec`
    accepts — the historical ``lo:hi`` uniform, discrete forms such as
    ``int:0:20`` / ``binomial:20:0.3`` / ``poisson:4:0:30``, or
    ``normal:mean:std:lo:hi``.
    """
    distributions: Dict[str, Distribution] = {}
    for spec in specs:
        if "=" not in spec:
            raise ReproError(f"invalid domain specification {spec!r}; expected name=SPEC")
        name, distribution = spec.split("=", 1)
        distributions[name.strip()] = parse_distribution_spec(distribution)
    return distributions


def _config_from_args(args: argparse.Namespace) -> QCoralConfig:
    return QCoralConfig(
        samples_per_query=args.samples,
        stratified=not args.no_strat,
        method=args.method,
        mass_split_boxes=args.mass_split_boxes,
        mass_split_adaptive=args.mass_split_adaptive,
        partition_and_cache=not args.no_partcache,
        seed=args.seed,
        target_std=args.target_std,
        max_rounds=args.max_rounds,
        initial_fraction=args.initial_fraction,
        allocation=args.allocation,
        executor=args.executor,
        workers=args.workers,
        store_path=args.store,
        store_backend=args.store_backend,
        store_readonly=args.store_readonly,
    )


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, default=30_000, help="sampling budget per query")
    parser.add_argument("--seed", type=int, default=None, help="random seed")
    parser.add_argument("--no-strat", action="store_true", help="disable ICP stratified sampling")
    parser.add_argument("--no-partcache", action="store_true", help="disable partitioning and caching")
    parser.add_argument(
        "--target-std",
        type=float,
        default=None,
        help="stop sampling once the combined standard deviation falls below this value",
    )
    parser.add_argument(
        "--max-rounds",
        type=int,
        default=1,
        help="maximum adaptive sampling rounds (1 = the paper's one-shot behaviour)",
    )
    parser.add_argument(
        "--initial-fraction",
        type=float,
        default=0.25,
        help="fraction of the budget spent in the pilot round of an adaptive run",
    )
    parser.add_argument(
        "--method",
        choices=list(ESTIMATION_METHODS),
        default="hit-or-miss",
        help=(
            "estimation method: hit-or-miss (paper) or importance "
            "(mass-refined pavings, mass-aware allocation, self-normalised "
            "combination — lower sigma on peaked profiles)"
        ),
    )
    parser.add_argument(
        "--mass-split-boxes",
        type=int,
        default=DEFAULT_MASS_SPLIT_BOXES,
        metavar="N",
        help="stratum cap of the importance method's mass-driven paving refinement",
    )
    parser.add_argument(
        "--mass-split-adaptive",
        type=int,
        default=0,
        metavar="N",
        help="extra adaptive splits the importance sampler may spend while sampling",
    )
    parser.add_argument(
        "--allocation",
        choices=["even", "neyman", "mass"],
        default="even",
        help="per-stratum budget split: even (paper), neyman (variance-driven), or mass",
    )
    parser.add_argument(
        "--show-rounds",
        action="store_true",
        help="print the per-round convergence table of an adaptive run",
    )
    parser.add_argument(
        "--executor",
        choices=list(EXECUTOR_KINDS),
        default=None,
        help=(
            "execution backend for sampling work; any choice switches to the "
            "sharded deterministic path (same seed => identical results on "
            "every backend and worker count)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for --executor thread/process (default: CPU count)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "persistent estimate store: stored per-factor estimates are "
            "reused (or warm-started) across runs and this run's samples are "
            "merged back"
        ),
    )
    parser.add_argument(
        "--store-backend",
        choices=list(STORE_BACKENDS),
        default=None,
        help="store backend (default: inferred from the path; .jsonl => jsonl, else sqlite)",
    )
    parser.add_argument(
        "--store-readonly",
        action="store_true",
        help="reuse stored estimates but write nothing back",
    )


def _print_rounds(args: argparse.Namespace, result: QCoralResult) -> None:
    if not result.round_reports:
        return
    if args.show_rounds or result.config.target_std is not None:
        print(convergence_table(result.round_reports).render())
        if result.config.target_std is not None:
            status = "met" if result.met_target else "NOT met (budget exhausted)"
            print(f"target std:    {result.config.target_std:.3e} {status}")


def _command_analyze(args: argparse.Namespace) -> int:
    with open(args.program, "r", encoding="utf-8") as handle:
        source = handle.read()
    config = _config_from_args(args)
    profile = None
    overrides = _parse_domain(args.domain)
    if overrides:
        # Start from the program's declared uniform input bounds and replace
        # the overridden variables' distributions (e.g. a discrete profile).
        bounds = parse_program(source).input_bounds()
        unknown = sorted(set(overrides) - set(bounds))
        if unknown:
            raise ReproError(
                f"--domain overrides unknown program inputs {unknown}; "
                f"declared inputs: {sorted(bounds)}"
            )
        for name, distribution in overrides.items():
            low, high = bounds[name]
            support = distribution.support
            if support.lo < low - 1e-9 or support.hi > high + 1e-9:
                # Symbolic execution prunes branches against the *declared*
                # bounds, so a wider override would silently drop the
                # probability mass of paths feasible only outside them.
                raise ReproError(
                    f"--domain override for {name!r} has support "
                    f"[{support.lo}, {support.hi}] outside the declared "
                    f"bounds [{low}, {high}]; widen the program's input "
                    f"declaration instead"
                )
        distributions: Dict[str, Distribution] = {
            name: UniformDistribution(low, high) for name, (low, high) in bounds.items()
        }
        distributions.update(overrides)
        profile = UsageProfile(distributions)
    result = analyze_program(source, args.event, profile=profile, config=config, max_depth=args.max_depth)
    print(f"event:        {args.event}")
    print(f"paths:        {len(result.qcoral_result.path_reports)}")
    print(f"probability:  {result.mean:.6f}")
    print(f"std:          {result.std:.3e}")
    if result.executor_label is not None:
        print(f"executor:     {result.executor_label}")
    if result.store_label is not None:
        print(f"store:        {result.store_label}")
        print(f"reuse:        {reuse_summary(result.cache_statistics)}")
    if result.rounds > 1:
        print(f"rounds:       {result.rounds}")
    print(f"time:         {result.qcoral_result.analysis_time:.2f}s")
    print(result.confidence_note)
    _print_rounds(args, result.qcoral_result)
    return 0


def _command_quantify(args: argparse.Namespace) -> int:
    if args.constraints_file:
        with open(args.constraints_file, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = args.constraints
    if not text:
        print("error: provide constraints inline or via --constraints-file", file=sys.stderr)
        return 2
    constraint_set = parse_constraint_set(text)
    profile = UsageProfile(_parse_domain(args.domain))
    config = _config_from_args(args)
    with QCoralAnalyzer(profile, config) as analyzer:
        result = analyzer.analyze(constraint_set)
    print(f"configuration: {config.feature_label()}")
    print(f"paths:         {len(constraint_set)}")
    print(f"probability:   {result.mean:.6f}")
    print(f"std:           {result.std:.3e}")
    print(f"samples:       {result.total_samples}")
    if result.executor is not None:
        print(f"executor:      {result.executor}")
    if result.store is not None:
        print(f"store:         {result.store}")
    if result.rounds > 1:
        print(f"rounds:        {result.rounds}")
    print(f"time:          {result.analysis_time:.2f}s")
    cache = result.cache_statistics
    if cache.lookups:
        print(f"reuse:         {reuse_summary(cache)}")
    _print_rounds(args, result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="qcoral",
        description="Compositional solution space quantification (PLDI 2014 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="analyze a mini-language program")
    analyze.add_argument("program", help="path to the program source file")
    analyze.add_argument("event", help="target event name (or assert.violation)")
    analyze.add_argument("--max-depth", type=int, default=50, help="symbolic execution bound")
    analyze.add_argument(
        "--domain",
        action="append",
        default=[],
        metavar="VAR=SPEC",
        help=(
            "override one input's distribution (repeatable); SPEC is lo:hi, "
            "int:lo:hi, binomial:n:p, poisson:rate:lo:hi, geometric:p:lo:hi, "
            "categorical:lo:w1,w2,..., or normal:mean:std:lo:hi"
        ),
    )
    _add_common_options(analyze)
    analyze.set_defaults(handler=_command_analyze)

    quantify = subparsers.add_parser("quantify", help="quantify a constraint set directly")
    quantify.add_argument("constraints", nargs="?", default="", help="constraint set text")
    quantify.add_argument("--constraints-file", help="file containing the constraint set")
    quantify.add_argument(
        "--domain",
        action="append",
        default=[],
        metavar="VAR=SPEC",
        help=(
            "domain of one input variable (repeatable); SPEC is lo:hi, "
            "int:lo:hi, binomial:n:p, poisson:rate:lo:hi, geometric:p:lo:hi, "
            "categorical:lo:w1,w2,..., or normal:mean:std:lo:hi"
        ),
    )
    _add_common_options(quantify)
    quantify.set_defaults(handler=_command_quantify)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
