"""Command-line interface of the qCORAL reproduction.

Two sub-commands cover the two entry points of the paper's tool chain, both
built on the :mod:`repro.api` Session facade:

``qcoral analyze``
    Run the full pipeline of Figure 1 on a mini-language program: symbolic
    execution followed by probabilistic analysis of a target event.

``qcoral quantify``
    Skip symbolic execution and quantify a constraint set given directly in
    the constraint language, with per-variable domains supplied on the command
    line (the mode in which the paper's microbenchmarks are run).

``qcoral obs``
    Cross-run observability analysis over the artifacts the other commands
    produce: ``summary`` (one run from a ledger, or a span aggregation of a
    JSONL trace), ``diff`` (estimate drift in σ units plus per-phase timing
    deltas between two ledger entries), ``history`` (a constraint family's
    trajectory across the ledger), and ``lint-trace`` (validate a JSONL trace
    file, header record included).

``qcoral ci``
    The incremental commit gate: quantify a candidate constraint set —
    incrementally against a ``--baseline-file`` when one is given, reusing
    stored per-factor estimates for everything the edit left untouched —
    record the run in the ledger, and gate on estimate drift vs the baseline
    family's previous recorded run (``--max-drift-sigmas``) and on a
    declared reliability floor (``--min-probability``).

Exit-code contract shared by the gate commands (``ci``, ``obs diff``):
**0** — ran and passed; **1** — ran and the gate tripped (drift/floor/lint
violation); **2** — usage error (missing files, malformed flags, a ledger
too empty to compare) — the gate never ran, so CI must not read 2 as a
verdict.

The estimation/executor/store options shared by both commands live in one
parent parser, so the two flag sets can never drift apart, and every
``choices`` list is read live from the backend registries — methods,
executors, and store backends registered through :mod:`repro.api` appear here
without CLI edits.  ``--json`` on either command emits the versioned
:class:`~repro.api.report.Report` schema instead of the text summary.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import Dict, Optional, Sequence

from repro.analysis.results import convergence_table, reuse_summary
from repro.api import Report, Session
from repro.core.importance import DEFAULT_MASS_SPLIT_BOXES
from repro.core.methods import ESTIMATION_METHODS
from repro.core.profiles import (
    Distribution,
    UniformDistribution,
    UsageProfile,
    parse_distribution_spec,
)
from repro.core.qcoral import QCoralConfig
from repro.core.stratified import ALLOCATION_POLICIES
from repro.errors import ConfigurationError, DomainError, ReproError, UsageError
from repro.exec.executor import EXECUTOR_KINDS
from repro.incremental import diff_constraint_sets
from repro.lang.kernel import KERNEL_TIERS, TIER_ENV, set_kernel_tier
from repro.lang.parser import parse_constraint_set
from repro.obs import Observability
from repro.obs.export import lint_trace
from repro.obs.ledger import (
    LEDGER_BACKENDS,
    LedgerEntry,
    estimate_drift_sigmas,
    family_digest,
    open_ledger,
    phase_timings,
)
from repro.store.backends import STORE_BACKENDS
from repro.symexec.parser import parse_program


def _parse_domain(specs: Sequence[str]) -> Dict[str, Distribution]:
    """Parse ``name=SPEC`` command-line domain specifications.

    ``SPEC`` is any form :func:`repro.core.profiles.parse_distribution_spec`
    accepts — the historical ``lo:hi`` uniform, discrete forms such as
    ``int:0:20`` / ``binomial:20:0.3`` / ``poisson:4:0:30``, or
    ``normal:mean:std:lo:hi``.
    """
    distributions: Dict[str, Distribution] = {}
    for spec in specs:
        if "=" not in spec:
            raise ConfigurationError(f"invalid domain specification {spec!r}; expected name=SPEC")
        name, distribution = spec.split("=", 1)
        try:
            distributions[name.strip()] = parse_distribution_spec(distribution)
        except ReproError as error:
            # Name the variable in the message; malformed specs must read as
            # a configuration problem, never as an internal failure.
            raise ConfigurationError(f"invalid domain specification {spec!r}: {error}") from None
    return distributions


def _config_from_args(args: argparse.Namespace) -> QCoralConfig:
    """Compile the command-line flags down to the engine configuration.

    Executor and store flags are *not* part of the config here: the session
    owns those lifecycles (see :func:`_session_from_args`).
    """
    return QCoralConfig(
        samples_per_query=args.samples,
        stratified=not args.no_strat,
        method=args.method,
        mass_split_boxes=args.mass_split_boxes,
        mass_split_adaptive=args.mass_split_adaptive,
        partition_and_cache=not args.no_partcache,
        seed=args.seed,
        target_std=args.target_std,
        max_rounds=args.max_rounds,
        initial_fraction=args.initial_fraction,
        allocation=args.allocation,
    )


def _observability_from_args(args: argparse.Namespace) -> Optional[Observability]:
    """An observability hub when any observability flag asks for one.

    None (the zero-overhead disabled path) unless ``--trace`` or
    ``--metrics`` is given; ``--verbose`` alone only configures logging.
    """
    if args.trace is None and args.metrics is None:
        return None
    return Observability(trace_path=args.trace, trace_sample_every=args.trace_sample_every)


def _session_from_args(args: argparse.Namespace, observability: Optional[Observability] = None) -> Session:
    """A session owning the executor/store/ledger the command line names."""
    return Session(
        executor=args.executor,
        workers=args.workers,
        store=args.store,
        store_backend=args.store_backend,
        store_readonly=args.store_readonly,
        observability=observability,
        ledger=args.ledger,
        ledger_backend=args.ledger_backend,
    )


def _emit_observability(args: argparse.Namespace, observability: Optional[Observability]) -> None:
    """Flush the trace and print the requested metrics rendering.

    The trace note goes to stderr so ``--json``/``--metrics`` output on
    stdout stays machine-parseable.
    """
    if observability is None:
        return
    if args.trace is not None:
        written = observability.flush_trace(args.trace)
        print(f"trace: {written} spans appended to {args.trace}", file=sys.stderr)
    if args.metrics == "prometheus":
        print(observability.prometheus(), end="")
    elif args.metrics == "json":
        print(json.dumps(observability.snapshot().to_dict(), indent=2))


def _configure_logging(verbosity: int) -> None:
    """Attach a stderr handler to the ``repro`` logger for ``-v``/``-vv``.

    The library itself only ever installs a NullHandler (in
    :mod:`repro.__init__`); the CLI is an application, so it may configure
    real output.  Idempotent across :func:`main` calls (tests call it
    repeatedly in one process).
    """
    if verbosity <= 0:
        return
    logger = logging.getLogger("repro")
    logger.setLevel(logging.INFO if verbosity == 1 else logging.DEBUG)
    if not any(isinstance(handler, logging.StreamHandler) for handler in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)


def _common_parser() -> argparse.ArgumentParser:
    """The estimation/executor/store options shared by both sub-commands."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--samples", type=int, default=30_000, help="sampling budget per query")
    common.add_argument("--seed", type=int, default=None, help="random seed")
    common.add_argument("--no-strat", action="store_true", help="disable ICP stratified sampling")
    common.add_argument("--no-partcache", action="store_true", help="disable partitioning and caching")
    common.add_argument(
        "--target-std",
        type=float,
        default=None,
        help="stop sampling once the combined standard deviation falls below this value",
    )
    common.add_argument(
        "--max-rounds",
        type=int,
        default=1,
        help="maximum adaptive sampling rounds (1 = the paper's one-shot behaviour)",
    )
    common.add_argument(
        "--initial-fraction",
        type=float,
        default=0.25,
        help="fraction of the budget spent in the pilot round of an adaptive run",
    )
    common.add_argument(
        "--method",
        choices=list(ESTIMATION_METHODS),
        default="hit-or-miss",
        help=(
            "estimation method: hit-or-miss (paper) or importance "
            "(mass-refined pavings, mass-aware allocation, self-normalised "
            "combination — lower sigma on peaked profiles); registered "
            "methods appear here too"
        ),
    )
    common.add_argument(
        "--mass-split-boxes",
        type=int,
        default=DEFAULT_MASS_SPLIT_BOXES,
        metavar="N",
        help="stratum cap of the importance method's mass-driven paving refinement",
    )
    common.add_argument(
        "--mass-split-adaptive",
        type=int,
        default=0,
        metavar="N",
        help="extra adaptive splits the importance sampler may spend while sampling",
    )
    common.add_argument(
        "--allocation",
        choices=list(ALLOCATION_POLICIES),
        default="even",
        help="per-stratum budget split: even (paper), neyman (variance-driven), or mass",
    )
    common.add_argument(
        "--kernel-tier",
        choices=list(KERNEL_TIERS),
        default=None,
        help=(
            "constraint-kernel tier: fused (generated numpy kernel, the "
            "default), numba (njit-compiled when numba is installed, falls "
            "back to fused), closure (reference evaluator), or auto "
            "(numba when available); also via QCORAL_KERNEL_TIER"
        ),
    )
    common.add_argument(
        "--show-rounds",
        action="store_true",
        help="print the per-round convergence table of an adaptive run",
    )
    common.add_argument(
        "--json",
        action="store_true",
        help="emit the versioned Report JSON schema instead of the text summary",
    )
    common.add_argument(
        "--executor",
        choices=list(EXECUTOR_KINDS),
        default=None,
        help=(
            "execution backend for sampling work; any choice switches to the "
            "sharded deterministic path (same seed => identical results on "
            "every backend and worker count)"
        ),
    )
    common.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for --executor thread/process (default: CPU count)",
    )
    common.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "persistent estimate store: stored per-factor estimates are "
            "reused (or warm-started) across runs and this run's samples are "
            "merged back"
        ),
    )
    common.add_argument(
        "--store-backend",
        choices=list(STORE_BACKENDS),
        default=None,
        help="store backend (default: inferred from the path; .jsonl => jsonl, else sqlite)",
    )
    common.add_argument(
        "--store-readonly",
        action="store_true",
        help="reuse stored estimates but write nothing back",
    )
    common.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help=(
            "append this run's provenance record (report summary, metrics, "
            "diagnostics, constraint-family key) to a run ledger at PATH for "
            "later `qcoral obs` analysis"
        ),
    )
    common.add_argument(
        "--ledger-backend",
        choices=list(LEDGER_BACKENDS),
        default=None,
        help="ledger backend (default: inferred from the path; .jsonl => jsonl, else sqlite)",
    )
    common.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "append the run's tracing spans to PATH as JSONL (zero "
            "perturbation: fixed-seed results are bit-identical with tracing "
            "on or off)"
        ),
    )
    common.add_argument(
        "--trace-sample-every",
        type=int,
        default=1,
        metavar="N",
        help="record every N-th span per span name (deterministic, RNG-free sampling)",
    )
    common.add_argument(
        "--metrics",
        choices=("json", "prometheus"),
        default=None,
        help="print the run's metrics to stdout in the chosen format after the summary",
    )
    common.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="engine logging on stderr (-v = INFO, -vv = DEBUG)",
    )
    return common


def _print_rounds(args: argparse.Namespace, report: Report) -> None:
    if not report.round_reports:
        return
    if args.show_rounds or report.target_std is not None:
        print(convergence_table(report.round_reports).render())
        if report.target_std is not None:
            status = "met" if report.met_target else "NOT met (budget exhausted)"
            print(f"target std:    {report.target_std:.3e} {status}")


def _command_analyze(args: argparse.Namespace) -> int:
    with open(args.program, "r", encoding="utf-8") as handle:
        source = handle.read()
    config = _config_from_args(args)
    profile = None
    overrides = _parse_domain(args.domain)
    if overrides:
        # Start from the program's declared uniform input bounds and replace
        # the overridden variables' distributions (e.g. a discrete profile).
        bounds = parse_program(source).input_bounds()
        unknown = sorted(set(overrides) - set(bounds))
        if unknown:
            raise ReproError(
                f"--domain overrides unknown program inputs {unknown}; "
                f"declared inputs: {sorted(bounds)}"
            )
        for name, distribution in overrides.items():
            low, high = bounds[name]
            support = distribution.support
            if support.lo < low - 1e-9 or support.hi > high + 1e-9:
                # Symbolic execution prunes branches against the *declared*
                # bounds, so a wider override would silently drop the
                # probability mass of paths feasible only outside them.
                raise ReproError(
                    f"--domain override for {name!r} has support "
                    f"[{support.lo}, {support.hi}] outside the declared "
                    f"bounds [{low}, {high}]; widen the program's input "
                    f"declaration instead"
                )
        distributions: Dict[str, Distribution] = {
            name: UniformDistribution(low, high) for name, (low, high) in bounds.items()
        }
        distributions.update(overrides)
        profile = UsageProfile(distributions)
    observability = _observability_from_args(args)
    with _session_from_args(args, observability) as session:
        report = session.analyze(source, args.event, profile=profile, max_depth=args.max_depth, config=config).run()
    if args.json:
        print(report.to_json(indent=2))
        _emit_observability(args, observability)
        return 0
    print(f"event:        {args.event}")
    print(f"paths:        {report.paths}")
    print(f"probability:  {report.mean:.6f}")
    print(f"std:          {report.std:.3e}")
    if report.executor is not None:
        print(f"executor:     {report.executor}")
    if report.store is not None:
        print(f"store:        {report.store}")
        print(f"reuse:        {reuse_summary(report.cache_statistics)}")
    if report.rounds > 1:
        print(f"rounds:       {report.rounds}")
    print(f"time:         {report.analysis_time:.2f}s")
    print(report.confidence_note)
    _print_rounds(args, report)
    _emit_observability(args, observability)
    return 0


def _command_quantify(args: argparse.Namespace) -> int:
    if args.constraints_file:
        with open(args.constraints_file, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = args.constraints
    if not text:
        print("error: provide constraints inline or via --constraints-file", file=sys.stderr)
        return 2
    constraint_set = parse_constraint_set(text)
    profile = UsageProfile(_parse_domain(args.domain))
    config = _config_from_args(args)
    observability = _observability_from_args(args)
    with _session_from_args(args, observability) as session:
        report = session.quantify(constraint_set, profile, config=config).run()
    if args.json:
        print(report.to_json(indent=2))
        _emit_observability(args, observability)
        return 0
    print(f"configuration: {report.feature_label}")
    print(f"paths:         {report.paths}")
    print(f"probability:   {report.mean:.6f}")
    print(f"std:           {report.std:.3e}")
    print(f"samples:       {report.total_samples}")
    if report.executor is not None:
        print(f"executor:      {report.executor}")
    if report.store is not None:
        print(f"store:         {report.store}")
    if report.rounds > 1:
        print(f"rounds:        {report.rounds}")
    print(f"time:          {report.analysis_time:.2f}s")
    cache = report.cache_statistics
    if cache is not None and cache.lookups:
        print(f"reuse:         {reuse_summary(cache)}")
    _print_rounds(args, report)
    _emit_observability(args, observability)
    return 0


# --------------------------------------------------------------------- #
# `qcoral obs`: cross-run analysis over ledgers and traces
# --------------------------------------------------------------------- #
def _sniff_obs_file(path: str) -> tuple:
    """Classify an observability artifact on disk.

    Returns ``(kind, backend)`` where ``kind`` is ``"ledger"`` or
    ``"trace"`` and ``backend`` names the ledger backend to open it with
    (None for traces).  Detection is content-based — SQLite magic bytes,
    else the first JSON line's shape — so renamed files still classify.
    """
    if not os.path.exists(path):
        raise UsageError(f"{path}: no such file")
    with open(path, "rb") as handle:
        magic = handle.read(16)
    if magic.startswith(b"SQLite format 3"):
        return "ledger", "sqlite"
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                raise UsageError(f"{path}: not a ledger or trace file (first record is not JSON)") from None
            if isinstance(payload, dict):
                schema = payload.get("schema")
                if isinstance(schema, str) and schema.startswith("qcoral-ledger"):
                    return "ledger", "jsonl"
                if payload.get("record") == "header" or "span_id" in payload:
                    return "trace", None
            raise UsageError(f"{path}: unrecognised observability record (not a ledger entry or trace span)")
    raise UsageError(f"{path}: empty file")


def _load_ledger_entries(path: str, backend: Optional[str]) -> list:
    kind, sniffed = _sniff_obs_file(path)
    if kind != "ledger":
        raise UsageError(f"{path}: this is a trace file, not a run ledger")
    with open_ledger(path, backend if backend is not None else sniffed) as ledger:
        return ledger.entries()


def _pick_family(entries: Sequence[LedgerEntry], family: Optional[str]) -> str:
    """Resolve the family a command works on (default: the latest entry's)."""
    if family is not None:
        matches = [entry.family for entry in entries if entry.family.startswith(family)]
        if not matches:
            known = ", ".join(sorted({entry.family for entry in entries}))
            raise UsageError(f"family {family!r} not found in ledger; known families: {known}")
        resolved = sorted(set(matches))
        if len(resolved) > 1:
            raise UsageError(f"family prefix {family!r} is ambiguous: {', '.join(resolved)}")
        return resolved[0]
    return entries[-1].family


def _format_created(created: float) -> str:
    if created <= 0:
        return "-"
    import datetime

    return datetime.datetime.fromtimestamp(created).strftime("%Y-%m-%d %H:%M:%S")


def _print_entry(entry: LedgerEntry, *, index: Optional[int] = None) -> None:
    label = f"entry {index}" if index is not None else "entry"
    print(f"{label}:        run {entry.run_id} (family {entry.family})")
    print(f"created:        {_format_created(entry.created)}")
    print(f"method:         {entry.method}")
    print(f"features:       {entry.features}")
    print(f"seed:           {entry.seed}")
    print(f"mean:           {entry.mean:.6f}")
    print(f"std:            {entry.std:.3e}")
    print(f"samples:        {entry.samples}")
    print(f"rounds:         {entry.rounds}")
    print(f"time:           {entry.analysis_time:.2f}s")
    print(f"versions:       repro {entry.repro_version}, estimator {entry.estimator_version}")
    diagnostics = entry.diagnostics()
    if diagnostics:
        print("diagnostics:")
        for diagnostic in diagnostics:
            print(f"  [{diagnostic.severity}] {diagnostic.code}: {diagnostic.message}")
    else:
        print("diagnostics:    none recorded")


def _command_obs_summary(args: argparse.Namespace) -> int:
    kind, backend = _sniff_obs_file(args.path)
    if kind == "trace":
        problems = lint_trace(args.path)
        header: Optional[dict] = None
        spans: Dict[str, list] = {}
        with open(args.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                if record.get("record") == "header":
                    header = header or record
                elif "span_id" in record:
                    spans.setdefault(str(record.get("name", "?")), []).append(float(record.get("duration", 0.0)))
        print(f"trace:          {args.path}")
        if header is not None:
            print(f"schema:         {header.get('schema')}")
            print(f"repro version:  {header.get('repro_version')}")
            print(f"seed:           {header.get('seed')}")
            print(f"method:         {header.get('method')}")
            print(f"config:         {header.get('config_fingerprint')}")
        total = sum(len(durations) for durations in spans.values())
        print(f"spans:          {total} across {len(spans)} names")
        for name in sorted(spans):
            durations = spans[name]
            print(f"  {name:<28} count={len(durations):<6} total={sum(durations):.4f}s")
        if problems:
            print(f"lint:           {len(problems)} problem(s); run `qcoral obs lint-trace {args.path}`")
        return 0
    entries = _load_ledger_entries(args.path, backend)
    if not entries:
        print(f"ledger:         {args.path} (empty)")
        return 0
    families: Dict[str, int] = {}
    for entry in entries:
        families[entry.family] = families.get(entry.family, 0) + 1
    print(f"ledger:         {args.path}")
    print(f"entries:        {len(entries)} across {len(families)} families")
    for family, count in families.items():
        print(f"  {family}  runs={count}")
    print()
    _print_entry(entries[-1], index=len(entries) - 1)
    return 0


def _command_obs_history(args: argparse.Namespace) -> int:
    entries = _load_ledger_entries(args.path, args.backend)
    if not entries:
        raise UsageError(f"{args.path}: the ledger is empty")
    family = _pick_family(entries, args.family)
    selected = [entry for entry in entries if entry.family == family]
    if args.limit is not None and args.limit > 0:
        selected = selected[-args.limit :]
    print(f"family {family}: {len(selected)} run(s)")
    header = (
        f"{'#':>3}  {'created':<19}  {'seed':>6}  {'mean':>12}  {'std':>10}  "
        f"{'samples':>9}  {'rounds':>6}  {'time':>8}  diags"
    )
    print(header)
    print("-" * len(header))
    for index, entry in enumerate(selected):
        diagnostics = entry.diagnostics()
        worst = "-"
        if diagnostics:
            severities = [diagnostic.severity for diagnostic in diagnostics]
            worst = "error" if "error" in severities else ("warning" if "warning" in severities else "info")
        seed = "-" if entry.seed is None else str(entry.seed)
        print(
            f"{index:>3}  {_format_created(entry.created):<19}  {seed:>6}  "
            f"{entry.mean:>12.6f}  {entry.std:>10.3e}  {entry.samples:>9}  "
            f"{entry.rounds:>6}  {entry.analysis_time:>7.2f}s  {worst}"
        )
    return 0


def _gate_exit(violations: Sequence[str], ok_message: str, *, quiet: bool = False) -> int:
    """The shared verdict tail of the gate commands (``ci``, ``obs diff``).

    Prints one ``GATE:`` line per violation and returns 1, or the single
    ``OK:`` line and returns 0.  ``quiet`` suppresses the text (used by
    ``--json``, where the same verdict rides in the payload instead) while
    keeping the exit code identical, so scripts can rely on either channel.
    """
    if violations:
        if not quiet:
            for violation in violations:
                print(f"GATE: {violation}")
        return 1
    if not quiet:
        print(f"OK: {ok_message}")
    return 0


def _command_obs_diff(args: argparse.Namespace) -> int:
    entries = _load_ledger_entries(args.path, args.backend)
    if not entries:
        raise UsageError(f"{args.path}: the ledger is empty")
    family = _pick_family(entries, args.family)
    selected = [entry for entry in entries if entry.family == family]
    if len(selected) < 2:
        raise UsageError(
            f"need at least two runs of family {family} to diff; the ledger has {len(selected)}"
        )
    a, b = selected[-2], selected[-1]
    drift = estimate_drift_sigmas(a, b)
    print(f"family:     {family}")
    print(f"baseline:   run {a.run_id}  ({_format_created(a.created)}, repro {a.repro_version})")
    print(f"candidate:  run {b.run_id}  ({_format_created(b.created)}, repro {b.repro_version})")
    print(f"{'':12}{'baseline':>14}  {'candidate':>14}")
    print(f"{'mean':<12}{a.mean:>14.6f}  {b.mean:>14.6f}")
    print(f"{'std':<12}{a.std:>14.3e}  {b.std:>14.3e}")
    print(f"{'samples':<12}{a.samples:>14}  {b.samples:>14}")
    print(f"{'rounds':<12}{a.rounds:>14}  {b.rounds:>14}")
    print(f"{'time':<12}{a.analysis_time:>13.2f}s  {b.analysis_time:>13.2f}s")
    timings_a, timings_b = phase_timings(a), phase_timings(b)
    shared = [phase for phase in timings_a if phase in timings_b and (timings_a[phase] or timings_b[phase])]
    if shared:
        print("phase timings (seconds):")
        for phase in shared:
            before, after = timings_a[phase], timings_b[phase]
            if before > 0:
                change = f"{(after - before) / before * 100.0:+6.1f}%"
            else:
                change = "   new" if after > 0 else "     -"
            print(f"  {phase:<18}{before:>10.4f}  {after:>10.4f}  {change}")
    print(f"drift:      {drift:.2f} sigma (threshold {args.threshold:g})")
    violations = []
    if drift >= args.threshold:
        violations.append(f"estimates differ by {drift:.2f} sigma (>= {args.threshold:g})")
    return _gate_exit(violations, "estimates agree within the threshold")


def _command_obs_lint_trace(args: argparse.Namespace) -> int:
    kind, _ = _sniff_obs_file(args.path)
    if kind != "trace":
        raise UsageError(f"{args.path}: this is a run ledger, not a trace file")
    problems = lint_trace(args.path)
    if problems:
        for problem in problems:
            print(problem)
        print(f"FAIL: {len(problems)} problem(s) in {args.path}")
        return 1
    with open(args.path, "r", encoding="utf-8") as handle:
        spans = sum(1 for line in handle if line.strip() and '"span_id"' in line)
    print(f"OK: {args.path} is a well-formed trace ({spans} spans, header present)")
    return 0


# --------------------------------------------------------------------- #
# `qcoral ci`: the incremental commit gate
# --------------------------------------------------------------------- #
def _read_constraint_text(inline: Optional[str], path: Optional[str], what: str) -> str:
    """Fetch one constraint set from the flag pair (inline text, file path)."""
    if path:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError as error:
            raise UsageError(f"cannot read {what} file {path}: {error}") from error
    if not inline:
        raise UsageError(f"provide the {what} constraints inline or via a file flag")
    return inline


def _reuse_evidence(report: Report) -> Optional[Dict[str, object]]:
    """The REUSE_SUMMARY diagnostic's evidence, when the run carried one."""
    for diagnostic in report.diagnostics:
        if diagnostic.code == "REUSE_SUMMARY":
            return dict(diagnostic.evidence)
    return None


def _command_ci(args: argparse.Namespace) -> int:
    if args.ledger is None:
        raise UsageError("qcoral ci needs --ledger: the gate compares against the previous recorded run")
    if args.max_drift_sigmas <= 0:
        raise UsageError(f"--max-drift-sigmas must be positive, got {args.max_drift_sigmas:g}")
    if args.min_probability is not None and not 0.0 <= args.min_probability <= 1.0:
        raise UsageError(f"--min-probability must lie in [0, 1], got {args.min_probability:g}")
    candidate_text = _read_constraint_text(args.constraints, args.constraints_file, "candidate")
    baseline_text: Optional[str] = None
    if args.baseline or args.baseline_file:
        baseline_text = _read_constraint_text(args.baseline, args.baseline_file, "baseline")
    config = _config_from_args(args)
    try:
        candidate_set = parse_constraint_set(candidate_text)
        baseline_set = parse_constraint_set(baseline_text) if baseline_text is not None else None
        profile = UsageProfile(_parse_domain(args.domain))
    except UsageError:
        raise
    except ReproError as error:
        raise UsageError(str(error)) from error

    # The edit changes the *candidate's* family digest, so the drift
    # comparison must look up the BASELINE version's family — computed from
    # the same diff the incremental run itself uses.
    diff = None
    if baseline_set is not None:
        if not config.partition_and_cache:
            raise UsageError("incremental quantification needs the PARTCACHE feature; drop --no-partcache")
        try:
            diff = diff_constraint_sets(
                baseline_set, candidate_set, profile, config=config, simplify=config.simplify
            )
        except (ConfigurationError, DomainError) as error:
            raise UsageError(str(error)) from error

    observability = _observability_from_args(args)
    with _session_from_args(args, observability) as session:
        query = session.quantify(candidate_set, profile, config=config)
        if baseline_set is not None:
            query = query.against_baseline(baseline_set)
        try:
            report = query.run()
        except (ConfigurationError, DomainError) as error:
            raise UsageError(str(error)) from error
        entries = session.ledger.entries()
    _emit_observability(args, observability)

    current = entries[-1]
    baseline_family = family_digest(diff.method, diff.baseline_factor_keys) if diff is not None else current.family
    history = [entry for entry in entries[:-1] if entry.family == baseline_family]
    previous = history[-1] if history else None
    drift = estimate_drift_sigmas(previous, current) if previous is not None else None

    violations = []
    if drift is not None and drift >= args.max_drift_sigmas:
        violations.append(
            f"estimate drifted {drift:.2f} sigma from run {previous.run_id} "
            f"(>= {args.max_drift_sigmas:g})"
        )
    if args.min_probability is not None and report.mean < args.min_probability:
        violations.append(
            f"probability {report.mean:.6f} is below the floor {args.min_probability:g}"
        )

    reuse = _reuse_evidence(report)
    if args.json:
        payload = {
            "report": report.to_dict(),
            "gate": {
                "family": current.family,
                "baseline_family": baseline_family,
                "previous_run": previous.run_id if previous is not None else None,
                "drift_sigmas": drift,
                "max_drift_sigmas": args.max_drift_sigmas,
                "min_probability": args.min_probability,
                "violations": violations,
                "passed": not violations,
            },
        }
        print(json.dumps(payload, indent=2))
        return _gate_exit(violations, "", quiet=True)
    print(f"family:       {current.family}")
    if previous is not None:
        print(f"baseline:     run {previous.run_id}  ({_format_created(previous.created)})")
    else:
        print(f"baseline:     none (first recorded run of family {baseline_family})")
    print(f"probability:  {report.mean:.6f}")
    print(f"std:          {report.std:.3e}")
    print(f"samples:      {report.total_samples}")
    if reuse is not None:
        print(
            f"reuse:        {reuse['factors_reused']}/{reuse['factors_total']} factors reused, "
            f"{reuse['samples_saved']} samples saved"
        )
    if drift is not None:
        print(f"drift:        {drift:.2f} sigma (threshold {args.max_drift_sigmas:g})")
    else:
        print("drift:        n/a (no prior run of this family to compare)")
    return _gate_exit(violations, "run recorded; the gate passed")


# --------------------------------------------------------------------- #
# `qcoral serve`: the engine as a long-lived HTTP/SSE service
# --------------------------------------------------------------------- #
def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import AdmissionLimits, QuantifyServer

    try:
        limits = AdmissionLimits(
            max_concurrent=args.max_concurrent,
            max_budget=args.max_budget,
            max_seconds=args.max_seconds,
            drain_timeout=args.drain_timeout,
        )
    except ConfigurationError as error:
        raise UsageError(str(error)) from error
    executor = args.executor
    if args.workers is not None and executor is None:
        # `--workers N` alone means "a pool of N"; pick the thread backend.
        executor = "thread"
    try:
        server = QuantifyServer(
            host=args.host,
            port=args.port,
            executor=executor,
            workers=args.workers,
            store=args.store,
            store_backend=args.store_backend,
            ledger=args.ledger,
            ledger_backend=args.ledger_backend,
            defaults=QCoralConfig(samples_per_query=args.samples),
            limits=limits,
        )
    except ConfigurationError as error:
        raise UsageError(str(error)) from error

    def announce(host: str, port: int) -> None:
        print(f"qcoral serve listening on http://{host}:{port}", file=sys.stderr)
        print(
            f"admission: max_concurrent={limits.max_concurrent} "
            f"max_budget={limits.max_budget} max_seconds={limits.max_seconds}",
            file=sys.stderr,
        )

    try:
        server.run(announce=announce)
    except KeyboardInterrupt:  # pragma: no cover - platforms without signal handlers
        pass
    except OSError as error:
        raise UsageError(f"cannot bind {args.host}:{args.port}: {error}") from error
    print("qcoral serve drained cleanly", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (registry choices read live)."""
    parser = argparse.ArgumentParser(
        prog="qcoral",
        description="Compositional solution space quantification (PLDI 2014 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    common = _common_parser()

    analyze = subparsers.add_parser("analyze", help="analyze a mini-language program", parents=[common])
    analyze.add_argument("program", help="path to the program source file")
    analyze.add_argument("event", help="target event name (or assert.violation)")
    analyze.add_argument("--max-depth", type=int, default=50, help="symbolic execution bound")
    analyze.add_argument(
        "--domain",
        action="append",
        default=[],
        metavar="VAR=SPEC",
        help=(
            "override one input's distribution (repeatable); SPEC is lo:hi, "
            "int:lo:hi, binomial:n:p, poisson:rate:lo:hi, geometric:p:lo:hi, "
            "categorical:lo:w1,w2,..., or normal:mean:std:lo:hi"
        ),
    )
    analyze.set_defaults(handler=_command_analyze)

    quantify = subparsers.add_parser("quantify", help="quantify a constraint set directly", parents=[common])
    quantify.add_argument("constraints", nargs="?", default="", help="constraint set text")
    quantify.add_argument("--constraints-file", help="file containing the constraint set")
    quantify.add_argument(
        "--domain",
        action="append",
        default=[],
        metavar="VAR=SPEC",
        help=(
            "domain of one input variable (repeatable); SPEC is lo:hi, "
            "int:lo:hi, binomial:n:p, poisson:rate:lo:hi, geometric:p:lo:hi, "
            "categorical:lo:w1,w2,..., or normal:mean:std:lo:hi"
        ),
    )
    quantify.set_defaults(handler=_command_quantify)

    ci = subparsers.add_parser(
        "ci",
        help="incremental commit gate: quantify against a baseline, gate on drift and a floor",
        parents=[common],
    )
    ci.add_argument("constraints", nargs="?", default="", help="candidate constraint set text")
    ci.add_argument("--constraints-file", help="file containing the candidate constraint set")
    ci.add_argument("--baseline", default="", help="baseline constraint set text (previous version)")
    ci.add_argument("--baseline-file", help="file containing the baseline constraint set")
    ci.add_argument(
        "--domain",
        action="append",
        default=[],
        metavar="VAR=SPEC",
        help=(
            "domain of one input variable (repeatable); SPEC is lo:hi, "
            "int:lo:hi, binomial:n:p, poisson:rate:lo:hi, geometric:p:lo:hi, "
            "categorical:lo:w1,w2,..., or normal:mean:std:lo:hi"
        ),
    )
    ci.add_argument(
        "--max-drift-sigmas",
        type=float,
        default=3.0,
        metavar="SIGMA",
        help="gate: fail when the estimate drifts this many sigma from the previous run (default 3.0)",
    )
    ci.add_argument(
        "--min-probability",
        type=float,
        default=None,
        metavar="P",
        help="gate: fail when the estimated probability falls below this floor (default: no floor)",
    )
    ci.set_defaults(handler=_command_ci)

    serve = subparsers.add_parser(
        "serve",
        help="serve the engine over HTTP/SSE: one shared session, store, ledger, and metrics hub",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral; default 8080)")
    serve.add_argument(
        "--executor",
        choices=list(EXECUTOR_KINDS),
        default=None,
        help="execution backend shared by every served run (default: in-thread sampling)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count of the shared executor pool (implies --executor thread when none is named)",
    )
    serve.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=(
            "persistent estimate store shared by every client; repeated "
            "identical requests are answered with zero samples drawn "
            "(default: a process-lifetime in-memory store)"
        ),
    )
    serve.add_argument(
        "--store-backend",
        choices=list(STORE_BACKENDS),
        default=None,
        help="store backend (default: inferred from the path; memory without one)",
    )
    serve.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="append every served run's provenance record to a run ledger at PATH",
    )
    serve.add_argument(
        "--ledger-backend",
        choices=list(LEDGER_BACKENDS),
        default=None,
        help="ledger backend (default: inferred from the path)",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        metavar="N",
        help="admission: concurrent engine runs beyond N answer 429 (default 4)",
    )
    serve.add_argument(
        "--max-budget",
        type=int,
        default=None,
        metavar="N",
        help="admission: requests asking for more than N samples answer 413 (default: unlimited)",
    )
    serve.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="admission: per-run wall-clock ceiling, enforced via early stop (default: unlimited)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="graceful-drain bound: how long SIGTERM waits for early-stopped runs to finalise",
    )
    serve.add_argument(
        "--samples",
        type=int,
        default=30_000,
        metavar="N",
        help="default sampling budget when a request names none (default 30000)",
    )
    serve.set_defaults(handler=_command_serve, verbose=0, kernel_tier=None)

    obs = subparsers.add_parser("obs", help="analyse run ledgers and trace files across runs")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    summary = obs_sub.add_parser("summary", help="summarise a run ledger or a JSONL trace")
    summary.add_argument("path", help="ledger or trace file (content-sniffed)")
    summary.set_defaults(handler=_command_obs_summary)

    diff = obs_sub.add_parser("diff", help="compare the last two runs of a family (drift in sigma)")
    diff.add_argument("path", help="run ledger file")
    diff.add_argument("--family", default=None, help="family digest or unique prefix (default: latest entry's)")
    diff.add_argument("--backend", choices=list(LEDGER_BACKENDS), default=None, help="ledger backend override")
    diff.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        metavar="SIGMA",
        help="exit non-zero when the estimate drift reaches this many sigma (default 3.0)",
    )
    diff.set_defaults(handler=_command_obs_diff)

    history = obs_sub.add_parser("history", help="render a family's run trajectory from a ledger")
    history.add_argument("path", help="run ledger file")
    history.add_argument("--family", default=None, help="family digest or unique prefix (default: latest entry's)")
    history.add_argument("--backend", choices=list(LEDGER_BACKENDS), default=None, help="ledger backend override")
    history.add_argument("--limit", type=int, default=None, metavar="N", help="show only the last N runs")
    history.set_defaults(handler=_command_obs_history)

    lint = obs_sub.add_parser("lint-trace", help="validate a JSONL trace file (header record required)")
    lint.add_argument("path", help="trace file")
    lint.set_defaults(handler=_command_obs_lint_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # `obs` subcommands do not take the estimation/observability flag set.
    _configure_logging(getattr(args, "verbose", 0))
    try:
        if getattr(args, "kernel_tier", None) is not None:
            # Set the environment too so process-pool workers spawned later
            # inherit the tier choice along with the in-process override.
            os.environ[TIER_ENV] = args.kernel_tier
            set_kernel_tier(args.kernel_tier)
        return args.handler(args)
    except UsageError as error:
        # Usage failures are exit 2 so CI distinguishes "the gate tripped"
        # (exit 1) from "the gate never ran" — see the module docstring.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
