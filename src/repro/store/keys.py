"""Canonical keys of the persistent estimate store.

A stored per-factor estimate is only reusable when *everything* that went
into producing it matches; the key therefore commits to four components:

1. **Alpha-renamed constraint text** — the factor simplified, conjuncts
   sorted, variables renamed to canonical positions
   (:mod:`repro.lang.canonical`), so syntactic duplicates *and* renamed
   duplicates share one entry.
2. **Profile fingerprint** — the distribution family, parameters, and domain
   of each variable, listed in canonical-position order.  Two factors with
   the same shape but differently distributed inputs describe different
   probabilities and must never share an entry.
3. **Estimation method** — plain hit-or-miss (``mc``) or ICP-stratified
   sampling with a specific solver configuration (``strat``).  Entries of
   different methods carry structurally different state (whole-domain counts
   vs per-stratum counts over a config-dependent paving), so they are kept
   apart by construction rather than reconciled at read time.
4. **Estimator version** — :data:`ESTIMATOR_VERSION`, bumped whenever the
   sampling semantics change, so entries written by an incompatible
   implementation are never reused.

For symmetric factors several alpha-renamings achieve the minimal canonical
text; the fingerprint breaks the tie (the smallest ``(text, fingerprint)``
pair wins), so the key is a pure function of factor + profile even when the
factor is invariant under swapping differently-distributed variables.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.profiles import (
    BinomialDistribution,
    CategoricalDistribution,
    Distribution,
    PiecewiseUniformDistribution,
    TruncatedGeometricDistribution,
    TruncatedNormalDistribution,
    TruncatedPoissonDistribution,
    UniformDistribution,
    UsageProfile,
)
from repro.icp.config import ICPConfig
from repro.lang import ast
from repro.lang.canonical import alpha_orders

#: Version tag of the estimator semantics.  Bump on any change to the
#: sampling/estimation pipeline that makes previously stored counts
#: incomparable with freshly drawn ones.
ESTIMATOR_VERSION = "qcoral-est-1"


def distribution_fingerprint(distribution: Distribution) -> str:
    """Deterministic text identifying a distribution family + parameters.

    The fingerprint covers the support too (it is implied by the parameters
    for the shipped families), so two variables are interchangeable for the
    store exactly when their fingerprints are equal.  Unknown distribution
    subclasses get a generic fingerprint from their dataclass fields, or —
    as a last resort — their ``repr``; an over-precise fingerprint only costs
    reuse, never soundness.
    """
    if isinstance(distribution, UniformDistribution):
        return f"uniform[{distribution.low!r},{distribution.high!r}]"
    if isinstance(distribution, TruncatedNormalDistribution):
        return (f"truncnorm[{distribution.mean!r},{distribution.std!r}," f"{distribution.low!r},{distribution.high!r}]")
    if isinstance(distribution, PiecewiseUniformDistribution):
        edges = ",".join(repr(edge) for edge in distribution.edges)
        weights = ",".join(repr(weight) for weight in distribution.weights)
        return f"piecewise[{edges};{weights}]"
    if isinstance(distribution, BinomialDistribution):
        return f"binomial[{distribution.trials!r},{distribution.success!r}]"
    if isinstance(distribution, TruncatedPoissonDistribution):
        return f"poisson[{distribution.rate!r},{distribution.low!r},{distribution.high!r}]"
    if isinstance(distribution, TruncatedGeometricDistribution):
        return f"geometric[{distribution.success!r},{distribution.low!r},{distribution.high!r}]"
    if isinstance(distribution, CategoricalDistribution):
        weights = ",".join(repr(weight) for weight in distribution.weights)
        return f"categorical[{distribution.low!r};{weights}]"
    if dataclasses.is_dataclass(distribution):
        fields = ",".join(
            f"{field.name}={getattr(distribution, field.name)!r}"
            for field in dataclasses.fields(distribution)
        )
        return f"{type(distribution).__name__}[{fields}]"
    return f"{type(distribution).__name__}[{distribution!r}]"


def mc_method() -> str:
    """Method tag of plain whole-domain hit-or-miss estimation."""
    return "mc"


def stratified_method(icp: ICPConfig) -> str:
    """Method tag of ICP-stratified estimation under a solver configuration.

    The paving — and with it the meaning of the per-stratum counts — depends
    on every solver knob, so the full configuration is folded into the tag
    (including the wall-clock budget: two budgets systematically produce
    different pavings, and sharing a key would make them evict each other's
    pools on every write instead of pooling).
    """
    return (
        f"strat[boxes={icp.max_boxes},prec={icp.precision!r},"
        f"iter={icp.max_contractor_iterations},tol={icp.contraction_tolerance!r},"
        f"time={icp.time_budget!r}]"
    )


def importance_method(icp: ICPConfig, mass_split_boxes: int) -> str:
    """Method tag of mass-refined importance sampling under a solver configuration.

    Importance-sampled counts live over a *mass-refined* paving and are
    combined self-normalised; they must never pool with plain hit-or-miss or
    ICP-stratified counts, so the tag is disjoint from :func:`mc_method` and
    :func:`stratified_method` by construction.  The refinement cap is part of
    the tag because it determines the deterministic refined paving (the
    profile, the other refinement input, is already part of the key).
    """
    return (
        f"imp[boxes={icp.max_boxes},prec={icp.precision!r},"
        f"iter={icp.max_contractor_iterations},tol={icp.contraction_tolerance!r},"
        f"time={icp.time_budget!r},splits={mass_split_boxes}]"
    )


@dataclass(frozen=True)
class FactorKey:
    """The resolved canonical key of one factor under one profile + method.

    Attributes:
        digest: Stable store key (SHA-256 over version, method, text, and
            fingerprint) — what the backends index by.
        pc_text: The alpha-renamed canonical constraint text.
        fingerprint: The canonical-position-ordered profile fingerprint.
        variables: Original variable names in canonical order; position ``i``
            is the variable ``$v{i}`` stands for.  A warm-starting reader
            uses this order to line stored state up with its own variables.
    """

    digest: str
    pc_text: str
    fingerprint: str
    variables: Tuple[str, ...]


@dataclass(frozen=True)
class StoreContext:
    """Everything needed to key factors of one analysis run.

    One analyzer quantifies factors under a fixed usage profile and a fixed
    estimation method, so the context is computed once per run and reused for
    every factor lookup.
    """

    profile: UsageProfile
    method: str
    version: str = ESTIMATOR_VERSION

    def key_for(self, factor: ast.PathCondition) -> FactorKey:
        """Canonical store key of ``factor`` under this context.

        The factor is expected simplified (the analyzer keys simplified
        factors everywhere).  Among the minimal-text alpha orders the one
        with the smallest fingerprint wins, making the key deterministic for
        symmetric factors too.
        """
        best: Optional[Tuple[str, str, Tuple[str, ...]]] = None
        for order, text in alpha_orders(factor):
            fingerprint = ";".join(distribution_fingerprint(self.profile.distribution(name)) for name in order)
            candidate = (text, fingerprint, order)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        assert best is not None  # alpha_orders never returns an empty list
        text, fingerprint, order = best
        material = "\x1f".join((self.version, self.method, text, fingerprint))
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        return FactorKey(digest=digest, pc_text=text, fingerprint=fingerprint, variables=order)
