"""Pluggable backends of the persistent estimate store.

One :class:`EstimateStore` interface, three implementations spanning the
deployment spectrum:

* :class:`MemoryStore` — a locked dict; the L2 equivalent of the in-run
  cache, useful for tests and for sharing between analyzers in one process.
* :class:`JsonlStore` — an append-only JSONL log.  Every write appends the
  *delta* record of one run; readers fold the log per key with
  :meth:`StoreEntry.merge`.  Appends are single ``write()`` calls on a file
  opened in append mode, so concurrent writers from several processes
  interleave whole lines and the fold stays correct — the classic
  log-structured trade: cheap lock-free writes, full-file replay on open.
* :class:`SqliteStore` — a SQLite database in WAL mode.  Merge-on-write runs
  inside one ``BEGIN IMMEDIATE`` transaction (read, merge, upsert), so the
  read-modify-write is atomic under concurrent writers from any number of
  threads or processes.

All three are thread-safe behind a reentrant lock, and all three implement
**merge-on-write**: :meth:`EstimateStore.merge` folds a run's delta counts
into whatever is already stored, so two runs that sampled the same factor
pool their budgets instead of the second overwriting the first.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.registry import Registry
from repro.store.entry import StoreEntry, StoreError

#: Registry of store factories: backend name → ``factory(path, readonly=...)``.
#: Extend through :func:`repro.api.register_store_backend` rather than core
#: edits (custom backends are reachable by explicit name; path-suffix
#: inference in :func:`open_store` stays limited to the builtins).
STORE_REGISTRY: "Registry[Callable[..., EstimateStore]]" = Registry("store backend")

#: Backend names accepted throughout the stack (config, CLI).  A live view of
#: :data:`STORE_REGISTRY` — registered backends appear here too.
STORE_BACKENDS = STORE_REGISTRY.view()


@dataclass(frozen=True)
class FactorCoverage:
    """How much stored evidence a store holds for one factor key.

    ``samples`` is the pooled sample count across every merged run;
    ``exact`` marks entries a previous run resolved without sampling
    (ICP-exact), which cover any budget outright.  Returned by
    :meth:`EstimateStore.coverage` for the incremental budget planner.
    """

    samples: int
    exact: bool

    def covers(self, budget: int) -> bool:
        """True when the stored evidence satisfies a ``budget``-sample run."""
        return self.exact or self.samples >= budget


@dataclass
class StoreStatistics:
    """Counters of one store handle's activity (exposed in analysis reports)."""

    gets: int = 0
    hits: int = 0
    merges: int = 0
    creates: int = 0
    readonly_skips: int = 0

    @property
    def misses(self) -> int:
        """Lookups that found no entry."""
        return self.gets - self.hits

    @property
    def writes(self) -> int:
        """Total write operations (merges into existing entries + creates)."""
        return self.merges + self.creates


class EstimateStore:
    """Base class of the persistent per-factor estimate stores.

    Subclasses implement :meth:`_load` and :meth:`_combine`; the public
    surface (counters, readonly gating, locking policy) lives here.  ``get``
    never mutates; ``merge`` is the only write and always *accumulates*.
    """

    #: Backend name, matching :data:`STORE_BACKENDS`.
    backend: str = "abstract"

    def __init__(self, readonly: bool = False) -> None:
        self._readonly = readonly
        self._lock = threading.RLock()
        self._statistics = StoreStatistics()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    @property
    def readonly(self) -> bool:
        """True when writes are silently skipped (and counted as skips)."""
        return self._readonly

    @property
    def statistics(self) -> StoreStatistics:
        """Activity counters of this handle."""
        return self._statistics

    def get(self, key: str) -> Optional[StoreEntry]:
        """The stored entry for ``key``, or None; updates the counters."""
        with self._lock:
            self._check_open()
            entry = self._load(key)
            self._statistics.gets += 1
            if entry is not None:
                self._statistics.hits += 1
            return entry

    def merge(self, key: str, delta: StoreEntry) -> StoreEntry:
        """Fold ``delta`` into the entry stored at ``key``; returns the total.

        Writers pass the *delta* of one run — only the samples that run drew
        itself, never counts it loaded from the store — so merging is never
        double counting.  On a readonly handle the write is skipped and the
        would-be total is returned, so callers need no readonly special case.
        """
        with self._lock:
            self._check_open()
            if self._readonly:
                self._statistics.readonly_skips += 1
                existing = self._load(key)
                return existing.merge(delta) if existing is not None else delta
            merged, created = self._combine(key, delta)
            if created:
                self._statistics.creates += 1
            else:
                self._statistics.merges += 1
            return merged

    def keys(self) -> List[str]:
        """All keys currently stored (snapshot)."""
        raise NotImplementedError

    def coverage(self, keys: Sequence[str]) -> Dict[str, FactorCoverage]:
        """Stored evidence per factor key, for the incremental planner.

        Returns one :class:`FactorCoverage` per *present* key (absent keys
        are simply omitted).  Reads go through the backend's ``_load`` hook
        directly rather than :meth:`get`, so planning a reuse budget does not
        distort the hit/miss statistics of the run that follows.
        """
        result: Dict[str, FactorCoverage] = {}
        with self._lock:
            self._check_open()
            for key in keys:
                entry = self._load(key)
                if entry is not None:
                    result[key] = FactorCoverage(samples=entry.samples, exact=entry.is_exact)
        return result

    def __len__(self) -> int:
        return len(self.keys())

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        self._closed = True

    def describe(self) -> str:
        """Human-readable label, e.g. ``sqlite:estimates.db``."""
        return self.backend

    def __enter__(self) -> "EstimateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(entries={len(self)}, readonly={self._readonly})"

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"store {self.describe()} is closed")

    def _load(self, key: str) -> Optional[StoreEntry]:
        raise NotImplementedError

    def _combine(self, key: str, delta: StoreEntry) -> Tuple[StoreEntry, bool]:
        """Merge ``delta`` into ``key`` and persist; returns (total, created)."""
        raise NotImplementedError


class MemoryStore(EstimateStore):
    """In-process store: a locked dict, no persistence."""

    backend = "memory"

    def __init__(self, readonly: bool = False) -> None:
        super().__init__(readonly)
        self._entries: Dict[str, StoreEntry] = {}

    def _load(self, key: str) -> Optional[StoreEntry]:
        return self._entries.get(key)

    def _combine(self, key: str, delta: StoreEntry) -> Tuple[StoreEntry, bool]:
        existing = self._entries.get(key)
        merged = existing.merge(delta) if existing is not None else delta
        self._entries[key] = merged
        return merged, existing is None

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)


class JsonlStore(EstimateStore):
    """Append-only JSONL store: one delta record per line, folded on open.

    Each line is ``{"key": ..., **entry}``.  The in-memory fold is refreshed
    lazily before reads when the file has grown (another process appended),
    so concurrent runs see each other's finished writes without any locking
    beyond POSIX append atomicity.
    """

    backend = "jsonl"

    def __init__(self, path: str, readonly: bool = False) -> None:
        super().__init__(readonly)
        self._path = path
        self._entries: Dict[str, StoreEntry] = {}
        self._folded_size = 0
        if not readonly:
            # Create the file eagerly so a concurrent reader sees a store,
            # not a missing path.
            with open(self._path, "a", encoding="utf-8"):
                pass
        self._refresh()

    def describe(self) -> str:
        return f"jsonl:{os.path.basename(self._path)}"

    def _refresh(self) -> None:
        """Fold any lines appended since the last fold into the entry map."""
        try:
            size = os.path.getsize(self._path)
        except OSError:
            return
        if size == self._folded_size:
            return
        if size < self._folded_size:
            # Truncated behind our back: refold from scratch.
            self._entries.clear()
            self._folded_size = 0
        with open(self._path, "r", encoding="utf-8") as handle:
            handle.seek(self._folded_size)
            for line in handle:
                if not line.endswith("\n"):
                    # A concurrent writer's partial line; pick it up next time.
                    break
                self._folded_size += len(line.encode("utf-8"))
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    key = payload.pop("key")
                    delta = StoreEntry.from_dict(payload)
                except (json.JSONDecodeError, KeyError, StoreError):
                    continue  # skip corrupt lines rather than poison the store
                existing = self._entries.get(key)
                self._entries[key] = existing.merge(delta) if existing is not None else delta

    def _load(self, key: str) -> Optional[StoreEntry]:
        self._refresh()
        return self._entries.get(key)

    def _combine(self, key: str, delta: StoreEntry) -> Tuple[StoreEntry, bool]:
        self._refresh()
        existing = self._entries.get(key)
        merged = existing.merge(delta) if existing is not None else delta
        record = {"key": key, **delta.to_dict()}
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(line)
        # Our own append is folded immediately; _folded_size tracks the file,
        # so count the bytes we just wrote as folded only when nobody else
        # appended in between (otherwise the next refresh refolds cleanly).
        if os.path.getsize(self._path) == self._folded_size + len(line.encode("utf-8")):
            self._folded_size += len(line.encode("utf-8"))
            self._entries[key] = merged
        else:
            self._refresh()
            merged = self._entries.get(key, merged)
        return merged, existing is None

    def keys(self) -> List[str]:
        with self._lock:
            self._refresh()
            return list(self._entries)


class SqliteStore(EstimateStore):
    """SQLite-backed store (WAL mode) with transactional merge-on-write."""

    backend = "sqlite"

    def __init__(self, path: str, readonly: bool = False, timeout: float = 30.0) -> None:
        super().__init__(readonly)
        self._path = path
        # One connection per handle; cross-thread use is serialised by the
        # store lock, so check_same_thread can be off.
        with self._lock:
            if readonly:
                # A genuinely read-only connection: no WAL pragma (that is a
                # write), no file creation, and it works on paths the user
                # cannot write to.  A store nobody has written yet is simply
                # empty.
                try:
                    self._connection = sqlite3.connect(
                        f"file:{path}?mode=ro", uri=True, timeout=timeout, check_same_thread=False
                    )
                except sqlite3.OperationalError:
                    self._connection = sqlite3.connect(":memory:", check_same_thread=False)
                return
            self._connection = sqlite3.connect(path, timeout=timeout, check_same_thread=False)
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS estimates ("
                "  key TEXT PRIMARY KEY,"
                "  kind TEXT NOT NULL,"
                "  samples INTEGER NOT NULL,"
                "  runs INTEGER NOT NULL,"
                "  payload TEXT NOT NULL"
                ")"
            )
            self._connection.commit()

    def describe(self) -> str:
        return f"sqlite:{os.path.basename(self._path)}"

    def _row_entry(self, row: Optional[Tuple[str]]) -> Optional[StoreEntry]:
        if row is None:
            return None
        try:
            return StoreEntry.from_dict(json.loads(row[0]))
        except (json.JSONDecodeError, StoreError):
            return None

    def _select(self, key: str) -> Optional[StoreEntry]:
        try:
            cursor = self._connection.execute("SELECT payload FROM estimates WHERE key = ?", (key,))
        except sqlite3.OperationalError:
            # Readonly handle on a store nobody has written yet: no table.
            return None
        return self._row_entry(cursor.fetchone())

    def _load(self, key: str) -> Optional[StoreEntry]:
        return self._select(key)

    def _combine(self, key: str, delta: StoreEntry) -> Tuple[StoreEntry, bool]:
        # BEGIN IMMEDIATE takes the write lock up front, so the read that
        # feeds the merge cannot race another writer's upsert.
        self._connection.execute("BEGIN IMMEDIATE")
        try:
            row = self._connection.execute("SELECT payload FROM estimates WHERE key = ?", (key,)).fetchone()
            existing = self._row_entry(row)
            merged = existing.merge(delta) if existing is not None else delta
            self._connection.execute(
                "INSERT INTO estimates (key, kind, samples, runs, payload)"
                " VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT(key) DO UPDATE SET"
                "  kind = excluded.kind, samples = excluded.samples,"
                "  runs = excluded.runs, payload = excluded.payload",
                (key, merged.kind, merged.samples, merged.runs, json.dumps(merged.to_dict())),
            )
            self._connection.commit()
        except BaseException:
            self._connection.rollback()
            raise
        return merged, existing is None

    def keys(self) -> List[str]:
        with self._lock:
            self._check_open()
            try:
                cursor = self._connection.execute("SELECT key FROM estimates")
            except sqlite3.OperationalError:
                return []
            return [row[0] for row in cursor.fetchall()]

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._connection.close()
            super().close()


def _require_path(path: Optional[str], backend: str) -> str:
    if path is None or path == ":memory:":
        raise StoreError(f"the {backend} backend needs a file path")
    return path


STORE_REGISTRY.register("memory", lambda path, readonly=False: MemoryStore(readonly=readonly))
STORE_REGISTRY.register(
    "jsonl", lambda path, readonly=False: JsonlStore(_require_path(path, "jsonl"), readonly=readonly)
)
STORE_REGISTRY.register(
    "sqlite", lambda path, readonly=False: SqliteStore(_require_path(path, "sqlite"), readonly=readonly)
)


def open_store(
    path: Optional[str],
    backend: Optional[str] = None,
    readonly: bool = False,
) -> EstimateStore:
    """Open an estimate store, inferring the backend when not named.

    ``None`` or ``":memory:"`` paths open a :class:`MemoryStore`; a ``.jsonl``
    extension selects the JSONL log; anything else defaults to SQLite (the
    concurrency-safe choice).  An explicit ``backend`` overrides inference and
    may name any backend registered in :data:`STORE_REGISTRY`.
    """
    if backend is not None and backend not in STORE_BACKENDS:
        raise StoreError(f"unknown store backend {backend!r}; expected one of {STORE_BACKENDS}")
    if backend is None:
        if path is None or path == ":memory:":
            backend = "memory"
        elif path.endswith(".jsonl"):
            backend = "jsonl"
        else:
            backend = "sqlite"
    factory = STORE_REGISTRY.get(backend)
    return factory(path, readonly=readonly)
