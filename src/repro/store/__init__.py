"""Persistent estimate store: cross-run compositional caching.

The PARTCACHE feature of the paper caches per-factor estimates within one
run; this package extends the idea across runs and across processes.  An
:class:`EstimateStore` keeps one mergeable :class:`StoreEntry` per canonical
factor key — alpha-renamed constraint text plus a fingerprint of the usage
profile and an estimator-version tag (:mod:`repro.store.keys`) — behind one
of three backends (:mod:`repro.store.backends`): in-memory, append-only
JSONL, and SQLite in WAL mode.

Entries hold raw Bernoulli counts rather than finished estimates, so

* two runs that sampled the same factor **merge** their sample pools instead
  of overwriting each other (:meth:`StoreEntry.merge`), and
* a re-run can **warm-start** its samplers from a stored entry and spend only
  the budget the stored entry is short of.
"""

from repro.store.backends import (
    STORE_BACKENDS,
    STORE_REGISTRY,
    EstimateStore,
    JsonlStore,
    MemoryStore,
    SqliteStore,
    StoreStatistics,
    open_store,
)
from repro.store.entry import StoreEntry
from repro.store.keys import (
    ESTIMATOR_VERSION,
    FactorKey,
    StoreContext,
    distribution_fingerprint,
    mc_method,
    stratified_method,
)

__all__ = [
    "EstimateStore",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "StoreStatistics",
    "STORE_BACKENDS",
    "STORE_REGISTRY",
    "open_store",
    "StoreEntry",
    "FactorKey",
    "StoreContext",
    "ESTIMATOR_VERSION",
    "distribution_fingerprint",
    "mc_method",
    "stratified_method",
]
