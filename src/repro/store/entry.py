"""Mergeable store entries: raw per-factor sampling state.

A :class:`StoreEntry` is what the persistent store keeps per canonical factor
key.  It records *raw Bernoulli counts* rather than a finished estimate, in
one of three kinds:

``"mc"``
    Whole-domain hit-or-miss counts — ``hits`` out of ``samples``.
``"stratified"``
    Per-stratum hit-or-miss counts, one ``(hits, samples)`` pair per ICP
    stratum in paving order.  The stratum boxes themselves are *not* stored:
    the paving is a deterministic function of the factor, the domain, and the
    ICP configuration, all three of which are part of the entry's key, so a
    reader re-derives identical boxes and only needs the counts.
``"exact"``
    A probability resolved without sampling (ICP-exact factors), stored so a
    re-run skips the paving work too.

Counts make entries **mergeable**: two runs that sampled the same factor
independently add their counts (:meth:`StoreEntry.merge`), pooling their
budgets, which is statistically exact for independent Bernoulli pools.  The
``spawned`` field counts the seed-stream children the recorded samples
consumed on the sharded execution path; a warm-starting run fast-forwards its
factor stream by that amount, which makes a resumed run bit-identical to one
long run for the same master seed (chunk-aligned budgets, MC kind).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.estimate import Estimate, RunningEstimate
from repro.errors import ReproError


class StoreError(ReproError):
    """Raised on malformed entries, backend failures, or misuse of a store."""


#: Entry kinds a store recognises.
ENTRY_KINDS = ("mc", "stratified", "exact")


@dataclass(frozen=True)
class StoreEntry:
    """Raw, mergeable sampling state of one canonical factor.

    Attributes:
        kind: One of :data:`ENTRY_KINDS`.
        hits: Hit count (``"mc"`` kind; 0 otherwise).
        samples: Total samples drawn for this factor, across all merged runs.
        strata: Per-stratum ``(hits, samples)`` pairs (``"stratified"`` kind).
        exact_mean: The resolved probability (``"exact"`` kind).
        paving: Canonical fingerprint of the ICP paving the stratum counts
            refer to (``"stratified"`` kind).  The paving is *not* perfectly
            reproducible — the solver has a wall-clock budget — so counts may
            only be reused or pooled when the fingerprints agree.
        spawned: Seed-stream children consumed drawing these samples (the
            warm-start fast-forward distance on the sharded path).
        runs: How many run deltas have been merged into this entry.
        pc_text: Alpha-renamed canonical constraint text (debugging aid; the
            key already commits to it).
        fingerprint: Profile/estimator fingerprint text (debugging aid).
    """

    kind: str
    hits: int = 0
    samples: int = 0
    strata: Tuple[Tuple[int, int], ...] = ()
    exact_mean: float = 0.0
    paving: str = ""
    spawned: int = 0
    runs: int = 1
    pc_text: str = ""
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ENTRY_KINDS:
            raise StoreError(f"unknown entry kind {self.kind!r}; expected one of {ENTRY_KINDS}")
        if self.kind == "stratified":
            for hits, samples in self.strata:
                if hits < 0 or samples < 0 or hits > samples:
                    raise StoreError(f"inconsistent stratum counts: {hits} hits of {samples} samples")
            total = sum(samples for _, samples in self.strata)
            if total != self.samples:
                object.__setattr__(self, "samples", total)
        if self.hits < 0 or self.samples < 0 or (self.kind == "mc" and self.hits > self.samples):
            raise StoreError(f"inconsistent counts: {self.hits} hits of {self.samples} samples")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_mc(hits: int, samples: int, spawned: int = 0) -> "StoreEntry":
        """Entry for a plain hit-or-miss factor."""
        return StoreEntry(kind="mc", hits=hits, samples=samples, spawned=spawned)

    @staticmethod
    def from_strata(strata: Tuple[Tuple[int, int], ...], paving: str, spawned: int = 0) -> "StoreEntry":
        """Entry for an ICP-stratified factor (counts in paving order)."""
        return StoreEntry(
            kind="stratified",
            strata=tuple((int(h), int(n)) for h, n in strata),
            samples=sum(int(n) for _, n in strata),
            paving=paving,
            spawned=spawned,
        )

    @staticmethod
    def from_exact(mean: float) -> "StoreEntry":
        """Entry for a factor whose probability was resolved without sampling."""
        return StoreEntry(kind="exact", exact_mean=float(mean))

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def is_exact(self) -> bool:
        """True when the entry needs no sampling to be reused."""
        return self.kind == "exact"

    def to_estimate(self, weights: Optional[Tuple[float, ...]] = None) -> Estimate:
        """The finished estimate this entry encodes.

        Stratified entries need the per-stratum *weights* (probability masses
        of the paved boxes under the profile), which the reader re-derives
        from the paving; inner boxes are not part of the stored counts, so
        callers that need the full stratified estimate should instead preload
        a :class:`~repro.core.stratified.StratifiedSampler` and ask it.
        """
        if self.kind == "exact":
            return Estimate.exact(self.exact_mean)
        if self.kind == "mc":
            if self.samples == 0:
                return Estimate(0.5, 0.25)
            return Estimate.from_hits(self.hits, self.samples)
        if weights is None:
            raise StoreError("a stratified entry needs per-stratum weights to form an estimate")
        if len(weights) != len(self.strata):
            raise StoreError(f"weights for {len(weights)} strata given, entry has {len(self.strata)}")
        total = Estimate.zero()
        for (hits, samples), weight in zip(self.strata, weights):
            accumulator = RunningEstimate.from_counts(hits, samples)
            total = total.add_disjoint(accumulator.to_estimate().scale(weight))
        return total

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    def merge(self, other: "StoreEntry") -> "StoreEntry":
        """Pool this entry with an independently sampled ``other``.

        Counts add (elementwise for stratified entries), ``spawned`` adds so
        a same-seed continuation keeps its fast-forward distance, and ``runs``
        adds so reuse statistics stay meaningful.  Exact entries are
        idempotent and win any merge: ICP proved the value, so pooling
        sampled counts into it adds nothing.

        Kind mismatches are resolved, never raised, because the ICP solver's
        wall-clock budget makes exactness machine-dependent: the same factor
        can pave exactly on a fast machine (an ``exact`` delta) and time out
        into sampled strata on a loaded one (a ``stratified`` delta) under
        one key.  Similarly, stratified counts are only poolable over *the
        same paving*; on a paving (or residual kind) mismatch the merge
        keeps whichever pool holds more samples instead of corrupting both —
        losing the smaller pool is the price of an append-forever store that
        never blocks a writer.
        """
        if self.kind == "exact" or other.kind == "exact":
            exact = self if self.kind == "exact" else other
            return replace(exact, runs=self.runs + other.runs)
        if self.kind != other.kind:
            return self if self.samples >= other.samples else other
        if self.kind == "mc":
            return replace(
                self,
                hits=self.hits + other.hits,
                samples=self.samples + other.samples,
                spawned=self.spawned + other.spawned,
                runs=self.runs + other.runs,
            )
        if len(self.strata) != len(other.strata) or self.paving != other.paving:
            return self if self.samples >= other.samples else other
        merged = tuple((mine[0] + theirs[0], mine[1] + theirs[1]) for mine, theirs in zip(self.strata, other.strata))
        return replace(
            self,
            strata=merged,
            samples=self.samples + other.samples,
            spawned=self.spawned + other.spawned,
            runs=self.runs + other.runs,
        )

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (inverse of :meth:`from_dict`)."""
        payload: Dict[str, Any] = {"kind": self.kind, "samples": self.samples, "runs": self.runs}
        if self.kind == "mc":
            payload["hits"] = self.hits
        elif self.kind == "stratified":
            payload["strata"] = [list(pair) for pair in self.strata]
            payload["paving"] = self.paving
        else:
            payload["exact_mean"] = self.exact_mean
        if self.spawned:
            payload["spawned"] = self.spawned
        if self.pc_text:
            payload["pc"] = self.pc_text
        if self.fingerprint:
            payload["fingerprint"] = self.fingerprint
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "StoreEntry":
        """Rebuild an entry from its :meth:`to_dict` form."""
        try:
            kind = payload["kind"]
            return StoreEntry(
                kind=kind,
                hits=int(payload.get("hits", 0)),
                samples=int(payload.get("samples", 0)),
                strata=tuple((int(h), int(n)) for h, n in payload.get("strata", ())),
                exact_mean=float(payload.get("exact_mean", 0.0)),
                paving=str(payload.get("paving", "")),
                spawned=int(payload.get("spawned", 0)),
                runs=int(payload.get("runs", 1)),
                pc_text=str(payload.get("pc", "")),
                fingerprint=str(payload.get("fingerprint", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed store entry payload: {payload!r}") from exc

    def described(self, pc_text: str, fingerprint: str) -> "StoreEntry":
        """Copy of this entry carrying the human-readable key components."""
        return replace(self, pc_text=pc_text, fingerprint=fingerprint)
