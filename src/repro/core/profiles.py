"""Usage profiles: probability distributions over the bounded input domain.

A usage profile (paper Section 3) assigns to every floating-point input
variable a bounded domain and a probability distribution over it.  The paper's
implementation supports uniform profiles only; this reproduction additionally
ships truncated-normal and piecewise-uniform (histogram) distributions, which
the paper lists as future work, so the sampling layer and the stratified
weights generalise beyond the uniform case.

Each distribution must support two operations used by the samplers:

* ``measure(interval)`` — the probability mass the distribution assigns to a
  sub-interval of its support (this generalises the ``size(R)/size(D)``
  stratum weight of Equation (3));
* ``sample(rng, count, interval)`` — i.i.d. samples conditioned to lie in a
  sub-interval of the support (used to sample inside ICP boxes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.errors import DomainError
from repro.intervals.box import Box
from repro.intervals.interval import Interval


class Distribution:
    """Base class of single-variable input distributions with bounded support."""

    @property
    def support(self) -> Interval:
        """The bounded interval outside which the density is zero."""
        raise NotImplementedError

    def measure(self, interval: Interval) -> float:
        """Probability mass of ``interval ∩ support`` (in [0, 1])."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        """Draw ``count`` samples conditioned on ``interval`` (default: the support)."""
        raise NotImplementedError

    def _clip(self, interval: Optional[Interval]) -> Interval:
        target = self.support if interval is None else interval.intersect(self.support)
        if target.is_empty():
            raise DomainError(f"sampling interval {interval} does not intersect support {self.support}")
        return target


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Uniform distribution over a closed interval — the paper's profile."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise DomainError("uniform distribution bounds must be finite")
        if self.low > self.high:
            raise DomainError(f"invalid uniform bounds [{self.low}, {self.high}]")

    @property
    def support(self) -> Interval:
        return Interval.make(self.low, self.high)

    def measure(self, interval: Interval) -> float:
        clipped = interval.intersect(self.support)
        if clipped.is_empty():
            return 0.0
        width = self.high - self.low
        if width == 0.0:
            return 1.0
        return clipped.width() / width

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        target = self._clip(interval)
        if target.is_point():
            return np.full(count, target.lo)
        return rng.uniform(target.lo, target.hi, size=count)


@dataclass(frozen=True)
class TruncatedNormalDistribution(Distribution):
    """Normal distribution truncated to a bounded interval."""

    mean: float
    std: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise DomainError("standard deviation must be positive")
        if not (math.isfinite(self.low) and math.isfinite(self.high)) or self.low >= self.high:
            raise DomainError(f"invalid truncation bounds [{self.low}, {self.high}]")

    @property
    def support(self) -> Interval:
        return Interval.make(self.low, self.high)

    def _cdf(self, value: float) -> float:
        return float(stats.norm.cdf(value, loc=self.mean, scale=self.std))

    def measure(self, interval: Interval) -> float:
        clipped = interval.intersect(self.support)
        if clipped.is_empty():
            return 0.0
        total = self._cdf(self.high) - self._cdf(self.low)
        if total <= 0.0:
            # The support sits in the far tail; fall back to a uniform measure.
            return clipped.width() / (self.high - self.low)
        return (self._cdf(clipped.hi) - self._cdf(clipped.lo)) / total

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        target = self._clip(interval)
        if target.is_point():
            return np.full(count, target.lo)
        lower_cdf = self._cdf(target.lo)
        upper_cdf = self._cdf(target.hi)
        if upper_cdf - lower_cdf <= 0.0:
            return np.full(count, target.midpoint())
        quantiles = rng.uniform(lower_cdf, upper_cdf, size=count)
        samples = stats.norm.ppf(quantiles, loc=self.mean, scale=self.std)
        return np.clip(samples, target.lo, target.hi)


@dataclass(frozen=True)
class PiecewiseUniformDistribution(Distribution):
    """Histogram distribution: uniform within each bin, given bin weights.

    This is the discretised-profile representation used by Filieri et al. to
    approximate arbitrary profiles with counting-based techniques; it lets the
    reproduction express non-uniform integer-style profiles as well.
    """

    edges: Tuple[float, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.edges) < 2 or len(self.weights) != len(self.edges) - 1:
            raise DomainError("piecewise distribution needs n+1 edges for n weights")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise DomainError("piecewise distribution edges must be strictly increasing")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise DomainError("piecewise distribution weights must be non-negative and not all zero")

    @property
    def support(self) -> Interval:
        return Interval.make(self.edges[0], self.edges[-1])

    def _normalised_weights(self) -> np.ndarray:
        weights = np.asarray(self.weights, dtype=float)
        return weights / weights.sum()

    def measure(self, interval: Interval) -> float:
        clipped = interval.intersect(self.support)
        if clipped.is_empty():
            return 0.0
        weights = self._normalised_weights()
        mass = 0.0
        for index, weight in enumerate(weights):
            bin_interval = Interval.make(self.edges[index], self.edges[index + 1])
            overlap = clipped.intersect(bin_interval)
            if not overlap.is_empty() and bin_interval.width() > 0:
                mass += weight * overlap.width() / bin_interval.width()
        return mass

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        target = self._clip(interval)
        if target.is_point():
            return np.full(count, target.lo)
        weights = self._normalised_weights()
        bin_masses = []
        bin_intervals = []
        for index, weight in enumerate(weights):
            bin_interval = Interval.make(self.edges[index], self.edges[index + 1])
            overlap = target.intersect(bin_interval)
            if overlap.is_empty() or overlap.width() == 0.0:
                continue
            bin_intervals.append(overlap)
            bin_masses.append(weight * overlap.width() / bin_interval.width())
        masses = np.asarray(bin_masses, dtype=float)
        if masses.sum() <= 0.0:
            return np.full(count, target.midpoint())
        masses /= masses.sum()
        choices = rng.choice(len(bin_intervals), size=count, p=masses)
        samples = np.empty(count)
        for index, overlap in enumerate(bin_intervals):
            mask = choices == index
            samples[mask] = rng.uniform(overlap.lo, overlap.hi, size=int(mask.sum()))
        return samples


class UsageProfile:
    """A usage profile: one bounded distribution per input variable."""

    def __init__(self, distributions: Mapping[str, Distribution]) -> None:
        if not distributions:
            raise DomainError("a usage profile needs at least one variable")
        self._distributions: Dict[str, Distribution] = dict(distributions)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def uniform(bounds: Mapping[str, Tuple[float, float]]) -> "UsageProfile":
        """Uniform profile from a mapping of variable name to ``(lo, hi)``."""
        return UsageProfile({name: UniformDistribution(lo, hi) for name, (lo, hi) in bounds.items()})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[str, ...]:
        """Variable names covered by the profile, in insertion order."""
        return tuple(self._distributions)

    def distribution(self, name: str) -> Distribution:
        """Distribution of variable ``name``."""
        try:
            return self._distributions[name]
        except KeyError as exc:
            raise DomainError(f"profile has no variable {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._distributions

    def domain(self) -> Box:
        """The input domain D: the Cartesian product of all supports."""
        return Box({name: dist.support for name, dist in self._distributions.items()})

    def restrict(self, variables: Iterable[str]) -> "UsageProfile":
        """Profile over a subset of the variables (order follows ``variables``)."""
        names = list(variables)
        missing = [name for name in names if name not in self._distributions]
        if missing:
            raise DomainError(f"profile has no variables {missing}")
        return UsageProfile({name: self._distributions[name] for name in names})

    # ------------------------------------------------------------------ #
    # Probability measure and sampling
    # ------------------------------------------------------------------ #
    def weight(self, box: Box) -> float:
        """Probability mass of ``box`` under the profile.

        For uniform profiles this is exactly the ``size(R)/size(D)`` stratum
        weight of the paper's Equation (3); for other profiles it is the
        probability of an input falling into the box, which is the correct
        generalisation of the weight.
        """
        mass = 1.0
        for name, interval in box.items():
            mass *= self.distribution(name).measure(interval)
        return mass

    def sample(
        self,
        rng: np.random.Generator,
        count: int,
        variables: Optional[Sequence[str]] = None,
        box: Optional[Box] = None,
    ) -> Dict[str, np.ndarray]:
        """Draw ``count`` independent samples for ``variables`` (default: all).

        When ``box`` is given, each variable present in the box is sampled
        conditioned on its box interval (used to sample within ICP strata).
        """
        names = list(variables) if variables is not None else list(self._distributions)
        batch: Dict[str, np.ndarray] = {}
        for name in names:
            interval = box.interval(name) if box is not None and name in box else None
            batch[name] = self.distribution(name).sample(rng, count, interval)
        return batch

    def check_covers(self, variables: Iterable[str]) -> None:
        """Raise :class:`DomainError` unless every variable has a distribution."""
        missing = sorted(set(variables) - set(self._distributions))
        if missing:
            raise DomainError(f"usage profile does not cover variables {missing}")
