"""Usage profiles: probability distributions over the bounded input domain.

A usage profile (paper Section 3) assigns to every input variable a bounded
domain and a probability distribution over it.  The paper's implementation
supports uniform profiles only; this reproduction additionally ships
truncated-normal and piecewise-uniform (histogram) distributions, which the
paper lists as future work, plus a family of **discrete bounded
distributions** (binomial, truncated Poisson, truncated geometric,
categorical) whose interval mass is computed *exactly* from a cached CDF
table — the peaked usage profiles the importance-sampling engine targets.

Each distribution must support three operations used by the samplers:

* ``measure(interval)`` / ``mass(interval)`` — the probability mass the
  distribution assigns to a sub-interval of its support (this generalises the
  ``size(R)/size(D)`` stratum weight of Equation (3));
* ``sample(rng, count, interval)`` — i.i.d. samples conditioned to lie in a
  sub-interval of the support (used to sample inside ICP boxes), drawn by
  inverse-CDF transform so every call consumes exactly ``count`` variates;
* ``split_point(interval)`` — where a mass-aware refiner should bisect the
  interval (the conditional mass median; half-integer boundaries for discrete
  families so no atom is ever shared between sibling strata).

Box-level weights go through :meth:`UsageProfile.mass` — the product of the
per-variable masses with an early exit on zero, which every stratum-weight
computation in the sampling stack uses — or :meth:`UsageProfile.log_mass`,
the sum of log masses, which stays ordered where the linear product would
underflow in high dimension (the importance refiner ranks boxes by it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.errors import DomainError
from repro.intervals.box import Box
from repro.intervals.interval import Interval


class Distribution:
    """Base class of single-variable input distributions with bounded support."""

    #: True for integer-supported (atomic) distributions; the ICP layer uses
    #: this to keep box splits off the atoms (half-integer split points).
    is_discrete: bool = False

    @property
    def support(self) -> Interval:
        """The bounded interval outside which the density is zero."""
        raise NotImplementedError

    def measure(self, interval: Interval) -> float:
        """Probability mass of ``interval ∩ support`` (in [0, 1])."""
        raise NotImplementedError

    def mass(self, interval: Interval) -> float:
        """Alias of :meth:`measure`, the per-variable factor of a box weight.

        Every box-weight computation in the sampling stack goes through
        :meth:`UsageProfile.mass` / :meth:`UsageProfile.log_mass`, which call
        this per variable; the discrete families answer it in O(1) from their
        cached CDF table (their :meth:`measure` override).
        """
        return self.measure(interval)

    def log_mass(self, interval: Interval) -> float:
        """Natural log of :meth:`mass` (``-inf`` for mass-free intervals)."""
        mass = self.mass(interval)
        if mass <= 0.0:
            return -math.inf
        return math.log(mass)

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        """Draw ``count`` samples conditioned on ``interval`` (default: the support)."""
        raise NotImplementedError

    def split_point(self, interval: Optional[Interval] = None) -> Optional[float]:
        """Where a mass-aware refiner should bisect ``interval`` (None: unsplittable).

        The default is the midpoint of ``interval ∩ support``; families with a
        cheap conditional median override this so both halves carry equal mass.
        """
        target = self.support if interval is None else interval.intersect(self.support)
        if target.is_empty() or target.is_point():
            return None
        midpoint = target.midpoint()
        if not target.lo < midpoint < target.hi:
            return None
        return midpoint

    def _clip(self, interval: Optional[Interval]) -> Interval:
        target = self.support if interval is None else interval.intersect(self.support)
        if target.is_empty():
            raise DomainError(f"sampling interval {interval} does not intersect support {self.support}")
        return target


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Uniform distribution over a closed interval — the paper's profile."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.low) and math.isfinite(self.high)):
            raise DomainError("uniform distribution bounds must be finite")
        if self.low > self.high:
            raise DomainError(f"invalid uniform bounds [{self.low}, {self.high}]")

    @property
    def support(self) -> Interval:
        return Interval.make(self.low, self.high)

    def measure(self, interval: Interval) -> float:
        clipped = interval.intersect(self.support)
        if clipped.is_empty():
            return 0.0
        width = self.high - self.low
        if width == 0.0:
            return 1.0
        return clipped.width() / width

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        target = self._clip(interval)
        if target.is_point():
            return np.full(count, target.lo)
        return rng.uniform(target.lo, target.hi, size=count)


@dataclass(frozen=True)
class TruncatedNormalDistribution(Distribution):
    """Normal distribution truncated to a bounded interval."""

    mean: float
    std: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise DomainError("standard deviation must be positive")
        if not (math.isfinite(self.low) and math.isfinite(self.high)) or self.low >= self.high:
            raise DomainError(f"invalid truncation bounds [{self.low}, {self.high}]")

    @property
    def support(self) -> Interval:
        return Interval.make(self.low, self.high)

    def _cdf(self, value: float) -> float:
        return float(stats.norm.cdf(value, loc=self.mean, scale=self.std))

    def measure(self, interval: Interval) -> float:
        clipped = interval.intersect(self.support)
        if clipped.is_empty():
            return 0.0
        total = self._cdf(self.high) - self._cdf(self.low)
        if total <= 0.0:
            # The support sits in the far tail; fall back to a uniform measure.
            return clipped.width() / (self.high - self.low)
        return (self._cdf(clipped.hi) - self._cdf(clipped.lo)) / total

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        target = self._clip(interval)
        if target.is_point():
            return np.full(count, target.lo)
        lower_cdf = self._cdf(target.lo)
        upper_cdf = self._cdf(target.hi)
        if upper_cdf - lower_cdf <= 0.0:
            return np.full(count, target.midpoint())
        quantiles = rng.uniform(lower_cdf, upper_cdf, size=count)
        samples = stats.norm.ppf(quantiles, loc=self.mean, scale=self.std)
        return np.clip(samples, target.lo, target.hi)

    def split_point(self, interval: Optional[Interval] = None) -> Optional[float]:
        """Conditional median, so both halves of a refinement split carry equal mass."""
        target = self.support if interval is None else interval.intersect(self.support)
        if target.is_empty() or target.is_point():
            return None
        lower_cdf = self._cdf(target.lo)
        upper_cdf = self._cdf(target.hi)
        if upper_cdf - lower_cdf > 0.0:
            median = float(stats.norm.ppf((lower_cdf + upper_cdf) / 2.0, loc=self.mean, scale=self.std))
            if target.lo < median < target.hi:
                return median
        return super().split_point(interval)


@dataclass(frozen=True)
class PiecewiseUniformDistribution(Distribution):
    """Histogram distribution: uniform within each bin, given bin weights.

    This is the discretised-profile representation used by Filieri et al. to
    approximate arbitrary profiles with counting-based techniques; it lets the
    reproduction express non-uniform integer-style profiles as well.
    """

    edges: Tuple[float, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.edges) < 2 or len(self.weights) != len(self.edges) - 1:
            raise DomainError("piecewise distribution needs n+1 edges for n weights")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise DomainError("piecewise distribution edges must be strictly increasing")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise DomainError("piecewise distribution weights must be non-negative and not all zero")

    @property
    def support(self) -> Interval:
        return Interval.make(self.edges[0], self.edges[-1])

    def _normalised_weights(self) -> np.ndarray:
        weights = np.asarray(self.weights, dtype=float)
        return weights / weights.sum()

    def measure(self, interval: Interval) -> float:
        clipped = interval.intersect(self.support)
        if clipped.is_empty():
            return 0.0
        weights = self._normalised_weights()
        mass = 0.0
        for index, weight in enumerate(weights):
            bin_interval = Interval.make(self.edges[index], self.edges[index + 1])
            overlap = clipped.intersect(bin_interval)
            if not overlap.is_empty() and bin_interval.width() > 0:
                mass += weight * overlap.width() / bin_interval.width()
        return mass

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        target = self._clip(interval)
        if target.is_point():
            return np.full(count, target.lo)
        weights = self._normalised_weights()
        bin_masses = []
        bin_intervals = []
        for index, weight in enumerate(weights):
            bin_interval = Interval.make(self.edges[index], self.edges[index + 1])
            overlap = target.intersect(bin_interval)
            if overlap.is_empty() or overlap.width() == 0.0:
                continue
            bin_intervals.append(overlap)
            bin_masses.append(weight * overlap.width() / bin_interval.width())
        masses = np.asarray(bin_masses, dtype=float)
        if masses.sum() <= 0.0:
            return np.full(count, target.midpoint())
        masses /= masses.sum()
        choices = rng.choice(len(bin_intervals), size=count, p=masses)
        samples = np.empty(count)
        for index, overlap in enumerate(bin_intervals):
            mask = choices == index
            samples[mask] = rng.uniform(overlap.lo, overlap.hi, size=int(mask.sum()))
        return samples


class DiscreteDistribution(Distribution):
    """Base of integer-supported distributions on a bounded range.

    A subclass provides the lowest support integer (:meth:`_support_low`) and
    the unnormalised probability weights of the consecutive support atoms
    (:meth:`_raw_weights`); everything else — exact interval mass via a cached
    CDF table, inverse-CDF conditioned sampling, mass-median split points on
    half-integer boundaries — is shared here.

    ``measure`` counts the atoms inside the closed query interval, so interval
    masses are *exact* (no quadrature).  Sibling boxes produced by the ICP
    solver or the mass refiner meet on half-integer boundaries for discrete
    variables (see :meth:`split_point`), so no atom is ever double-counted
    across strata.  Samples are returned as floats (the constraint evaluator
    works on float arrays) but always carry exact integer values.
    """

    is_discrete = True

    def _support_low(self) -> int:
        """Smallest integer of the support."""
        raise NotImplementedError

    def _raw_weights(self) -> np.ndarray:
        """Unnormalised weights of the atoms ``low, low+1, ...`` (length ≥ 1)."""
        raise NotImplementedError

    @cached_property
    def _pmf(self) -> np.ndarray:
        weights = np.asarray(self._raw_weights(), dtype=float)
        total = float(weights.sum())
        if not math.isfinite(total) or total <= 0.0:
            # The truncation window sits in the far tail of the parent
            # distribution and the pmf underflowed to zero everywhere; fall
            # back to uniform atoms (mirrors the truncated-normal fallback).
            weights = np.ones_like(weights)
            total = float(weights.sum())
        return weights / total

    @cached_property
    def _cdf(self) -> np.ndarray:
        cdf = np.cumsum(self._pmf)
        cdf[-1] = 1.0
        return cdf

    @property
    def support(self) -> Interval:
        return Interval.make(self._support_low(), self._support_low() + len(self._pmf) - 1)

    def _atom_range(self, interval: Interval) -> Tuple[int, int]:
        """Pmf-index range ``[first, last]`` of atoms in ``interval`` (empty when first > last)."""
        low = self._support_low()
        first = max(0, math.ceil(interval.lo) - low)
        last = min(len(self._pmf) - 1, math.floor(interval.hi) - low)
        return first, last

    def measure(self, interval: Interval) -> float:
        clipped = interval.intersect(self.support)
        if clipped.is_empty():
            return 0.0
        first, last = self._atom_range(clipped)
        if first > last:
            return 0.0
        below = self._cdf[first - 1] if first > 0 else 0.0
        return float(min(1.0, max(0.0, self._cdf[last] - below)))

    def sample(self, rng: np.random.Generator, count: int, interval: Optional[Interval] = None) -> np.ndarray:
        target = self._clip(interval)
        first, last = self._atom_range(target)
        if first > last:
            raise DomainError(f"sampling interval {interval} contains no atom of {self!r}")
        low = self._support_low()
        if first == last:
            return np.full(count, float(low + first))
        conditional = self._pmf[first : last + 1]
        total = float(conditional.sum())
        if total <= 0.0:
            # Conditioning wiped out all mass (far-tail window): uniform atoms.
            conditional = np.full(last - first + 1, 1.0 / (last - first + 1))
        else:
            conditional = conditional / total
        cumulative = np.cumsum(conditional)
        cumulative[-1] = 1.0
        # Inverse-CDF transform: exactly ``count`` uniforms per call, so
        # sharded draws stay bit-identical at any chunking.
        quantiles = rng.random(count)
        indices = np.searchsorted(cumulative, quantiles, side="right")
        return (low + first + indices).astype(float)

    def split_point(self, interval: Optional[Interval] = None) -> Optional[float]:
        """Half-integer mass-median split: atoms ≤ the median go left, the rest right.

        Returning ``k + 0.5`` guarantees the two children partition the atoms
        exactly — a split at an integer coordinate would put the atom in both
        closed sibling intervals and double-count its mass.
        """
        target = self.support if interval is None else interval.intersect(self.support)
        if target.is_empty():
            return None
        first, last = self._atom_range(target)
        if last - first < 1:
            return None
        below = self._cdf[first - 1] if first > 0 else 0.0
        mass = float(self._cdf[last] - below)
        if mass <= 0.0:
            cut = first + (last - first) // 2
        else:
            target_mass = below + mass / 2.0
            cut = int(np.searchsorted(self._cdf[first : last + 1], target_mass, side="left")) + first
            cut = min(cut, last - 1)
        return float(self._support_low() + cut) + 0.5


def _require_int(label: str, value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise DomainError(f"{label} must be an integer, got {value!r}")


@dataclass(frozen=True)
class BinomialDistribution(DiscreteDistribution):
    """Binomial(n, p): successes in ``n`` trials — support ``{0, ..., n}``."""

    trials: int
    success: float

    def __post_init__(self) -> None:
        _require_int("binomial trial count", self.trials)
        if self.trials < 1:
            raise DomainError("binomial distribution needs at least one trial")
        if not 0.0 <= self.success <= 1.0 or math.isnan(self.success):
            raise DomainError(f"binomial success probability {self.success!r} outside [0, 1]")

    def _support_low(self) -> int:
        return 0

    def _raw_weights(self) -> np.ndarray:
        return stats.binom.pmf(np.arange(self.trials + 1), self.trials, self.success)


@dataclass(frozen=True)
class TruncatedPoissonDistribution(DiscreteDistribution):
    """Poisson(rate) conditioned on the bounded window ``{low, ..., high}``."""

    rate: float
    low: int
    high: int

    def __post_init__(self) -> None:
        _require_int("truncated Poisson low bound", self.low)
        _require_int("truncated Poisson high bound", self.high)
        if not (math.isfinite(self.rate) and self.rate > 0.0):
            raise DomainError(f"Poisson rate must be positive, got {self.rate!r}")
        if self.low < 0 or self.low > self.high:
            raise DomainError(f"invalid truncation window [{self.low}, {self.high}]")

    def _support_low(self) -> int:
        return self.low

    def _raw_weights(self) -> np.ndarray:
        return stats.poisson.pmf(np.arange(self.low, self.high + 1), self.rate)


@dataclass(frozen=True)
class TruncatedGeometricDistribution(DiscreteDistribution):
    """Geometric decay ``(1-p)^(k-low)`` conditioned on ``{low, ..., high}``."""

    success: float
    low: int
    high: int

    def __post_init__(self) -> None:
        _require_int("truncated geometric low bound", self.low)
        _require_int("truncated geometric high bound", self.high)
        if not 0.0 < self.success <= 1.0 or math.isnan(self.success):
            raise DomainError(f"geometric success probability {self.success!r} outside (0, 1]")
        if self.low > self.high:
            raise DomainError(f"invalid truncation window [{self.low}, {self.high}]")

    def _support_low(self) -> int:
        return self.low

    def _raw_weights(self) -> np.ndarray:
        if self.success == 1.0:
            weights = np.zeros(self.high - self.low + 1)
            weights[0] = 1.0
            return weights
        return self.success * np.power(1.0 - self.success, np.arange(self.high - self.low + 1))


@dataclass(frozen=True)
class CategoricalDistribution(DiscreteDistribution):
    """Explicit weights over the consecutive integers ``low, ..., low+k-1``."""

    low: int
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        _require_int("categorical low bound", self.low)
        if not self.weights:
            raise DomainError("categorical distribution needs at least one weight")
        if any(w < 0 or math.isnan(w) for w in self.weights) or sum(self.weights) <= 0:
            raise DomainError("categorical weights must be non-negative and not all zero")

    @staticmethod
    def uniform_integers(low: int, high: int) -> "CategoricalDistribution":
        """Uniform distribution over the integers ``low, ..., high``."""
        _require_int("integer range low bound", low)
        _require_int("integer range high bound", high)
        if low > high:
            raise DomainError(f"invalid integer range [{low}, {high}]")
        return CategoricalDistribution(low, (1.0,) * (high - low + 1))

    def _support_low(self) -> int:
        return self.low

    def _raw_weights(self) -> np.ndarray:
        return np.asarray(self.weights, dtype=float)


# --------------------------------------------------------------------------- #
# Command-line distribution specifications
# --------------------------------------------------------------------------- #
def parse_distribution_spec(spec: str) -> Distribution:
    """Parse a command-line domain spec into a :class:`Distribution`.

    Accepted forms (the bare ``lo:hi`` form is the historical uniform one)::

        lo:hi                       uniform over [lo, hi]
        uniform:lo:hi               same, explicit
        int:lo:hi                   uniform over the integers lo..hi
        binomial:n:p                Binomial(n, p) on {0..n}
        poisson:rate:lo:hi          Poisson(rate) truncated to {lo..hi}
        geometric:p:lo:hi           geometric decay truncated to {lo..hi}
        categorical:lo:w1,w2,...    weights over lo, lo+1, ...
        normal:mean:std:lo:hi       normal truncated to [lo, hi]
    """
    parts = [part.strip() for part in spec.split(":")]
    head = parts[0].lower()
    try:
        if head in ("int", "integer") and len(parts) == 3:
            return CategoricalDistribution.uniform_integers(int(parts[1]), int(parts[2]))
        if head in ("binomial", "binom") and len(parts) == 3:
            return BinomialDistribution(int(parts[1]), float(parts[2]))
        if head == "poisson" and len(parts) == 4:
            return TruncatedPoissonDistribution(float(parts[1]), int(parts[2]), int(parts[3]))
        if head in ("geometric", "geom") and len(parts) == 4:
            return TruncatedGeometricDistribution(float(parts[1]), int(parts[2]), int(parts[3]))
        if head in ("categorical", "cat") and len(parts) == 3:
            weights = tuple(float(w) for w in parts[2].split(","))
            return CategoricalDistribution(int(parts[1]), weights)
        if head in ("normal", "truncnormal") and len(parts) == 5:
            return TruncatedNormalDistribution(float(parts[1]), float(parts[2]), float(parts[3]), float(parts[4]))
        if head == "uniform" and len(parts) == 3:
            return UniformDistribution(float(parts[1]), float(parts[2]))
        if len(parts) == 2:
            return UniformDistribution(float(parts[0]), float(parts[1]))
    except ValueError as exc:
        raise DomainError(f"invalid distribution spec {spec!r}: {exc}") from exc
    raise DomainError(
        f"invalid distribution spec {spec!r}; expected lo:hi, int:lo:hi, binomial:n:p, "
        f"poisson:rate:lo:hi, geometric:p:lo:hi, categorical:lo:w1,w2,..., or normal:mean:std:lo:hi"
    )


class UsageProfile:
    """A usage profile: one bounded distribution per input variable."""

    def __init__(self, distributions: Mapping[str, Distribution]) -> None:
        if not distributions:
            raise DomainError("a usage profile needs at least one variable")
        self._distributions: Dict[str, Distribution] = dict(distributions)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def uniform(bounds: Mapping[str, Tuple[float, float]]) -> "UsageProfile":
        """Uniform profile from a mapping of variable name to ``(lo, hi)``."""
        return UsageProfile({name: UniformDistribution(lo, hi) for name, (lo, hi) in bounds.items()})

    @staticmethod
    def from_specs(specs: Mapping[str, str]) -> "UsageProfile":
        """Profile from command-line specs (see :func:`parse_distribution_spec`)."""
        return UsageProfile({name: parse_distribution_spec(spec) for name, spec in specs.items()})

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[str, ...]:
        """Variable names covered by the profile, in insertion order."""
        return tuple(self._distributions)

    def distribution(self, name: str) -> Distribution:
        """Distribution of variable ``name``."""
        try:
            return self._distributions[name]
        except KeyError as exc:
            raise DomainError(f"profile has no variable {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._distributions

    def domain(self) -> Box:
        """The input domain D: the Cartesian product of all supports."""
        return Box({name: dist.support for name, dist in self._distributions.items()})

    def restrict(self, variables: Iterable[str]) -> "UsageProfile":
        """Profile over a subset of the variables (order follows ``variables``)."""
        names = list(variables)
        missing = [name for name in names if name not in self._distributions]
        if missing:
            raise DomainError(f"profile has no variables {missing}")
        return UsageProfile({name: self._distributions[name] for name in names})

    def discrete_variables(self) -> Tuple[str, ...]:
        """Names of the integer-supported variables, in insertion order."""
        return tuple(name for name, dist in self._distributions.items() if dist.is_discrete)

    # ------------------------------------------------------------------ #
    # Probability measure and sampling
    # ------------------------------------------------------------------ #
    def mass(self, box: Box) -> float:
        """Probability mass of ``box`` under the profile.

        For uniform profiles this is exactly the ``size(R)/size(D)`` stratum
        weight of the paper's Equation (3); for other profiles it is the
        probability of an input falling into the box, which is the correct
        generalisation of the weight.  The product short-circuits on the
        first mass-free dimension — the fast path every stratum-weight
        computation in the stack goes through.
        """
        total = 1.0
        for name, interval in box.items():
            total *= self.distribution(name).mass(interval)
            if total == 0.0:
                return 0.0
        return total

    def log_mass(self, box: Box) -> float:
        """Natural log of :meth:`mass` (``-inf`` for mass-free boxes).

        Summing per-variable log masses never underflows, so box weights in
        high-dimensional peaked profiles stay comparable even when the linear
        product would round to zero.
        """
        total = 0.0
        for name, interval in box.items():
            term = self.distribution(name).log_mass(interval)
            if term == -math.inf:
                return -math.inf
            total += term
        return total

    def weight(self, box: Box) -> float:
        """Historical name of :meth:`mass`, kept for API compatibility."""
        return self.mass(box)

    def sample(
        self,
        rng: np.random.Generator,
        count: int,
        variables: Optional[Sequence[str]] = None,
        box: Optional[Box] = None,
    ) -> Dict[str, np.ndarray]:
        """Draw ``count`` independent samples for ``variables`` (default: all).

        When ``box`` is given, each variable present in the box is sampled
        conditioned on its box interval (used to sample within ICP strata).
        """
        names = list(variables) if variables is not None else list(self._distributions)
        batch: Dict[str, np.ndarray] = {}
        for name in names:
            interval = box.interval(name) if box is not None and name in box else None
            batch[name] = self.distribution(name).sample(rng, count, interval)
        return batch

    def check_covers(self, variables: Iterable[str]) -> None:
        """Raise :class:`DomainError` unless every variable has a distribution."""
        missing = sorted(set(variables) - set(self._distributions))
        if missing:
            raise DomainError(f"usage profile does not cover variables {missing}")
