"""Composition of estimators across the structure of the constraint set.

This module packages the two composition rules of Section 4 behind names that
match the paper's presentation:

* :func:`compose_disjoint_path_conditions` — Section 4.1, Equations (4)–(6):
  path conditions produced by symbolic execution are pairwise disjoint, so
  their estimators add and the summed variance is an upper bound (Theorem 1).
* :func:`compose_independent_factors` — Section 4.2, Equations (7)–(8): the
  factors of one path condition obtained from the dependency partition are
  statistically independent, so their estimators multiply.

Both functions simply fold the corresponding :class:`Estimate` methods; they
exist so the qCORAL analyzer and the tests can refer to the rules by name.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.estimate import Estimate, product_independent, sum_disjoint


def compose_disjoint_path_conditions(estimates: Iterable[Estimate]) -> Estimate:
    """Estimator of the disjunction of pairwise-disjoint path conditions.

    The mean is the exact sum of the member means (Equation 5); the variance is
    the sum of the member variances, which Theorem 1 shows is an upper bound on
    the true variance of the summed estimator.
    """
    return sum_disjoint(estimates)


def compose_independent_factors(estimates: Iterable[Estimate]) -> Estimate:
    """Estimator of the conjunction of independent factors (Equations 7–8)."""
    return product_independent(estimates)


def variance_upper_bound_holds(
    member_variances: Sequence[float], combined_variance: float, tolerance: float = 1e-12
) -> bool:
    """Check the Theorem 1 inequality ``Var[X] <= Σ Var[X_i]`` up to ``tolerance``.

    Used by the property-based tests to validate that empirical variances of
    summed estimators never exceed the bound reported by the analyzer.
    """
    return combined_variance <= sum(member_variances) + tolerance
