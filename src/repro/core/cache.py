"""Two-tier cache of per-factor estimates (the PARTCACHE feature, persisted).

Algorithm 2 stores the estimate computed for each independent factor (the
projection of a path condition onto one block of the variable partition) and
reuses it whenever the same factor reappears — either in another path
condition or in the same one after simplification.

The cache has two tiers:

* **L1** — the in-memory, in-run map of the paper: canonical text of the
  simplified factor → finished :class:`Estimate`.  Dies with the analyzer.
* **L2** — an optional persistent :class:`~repro.store.backends.EstimateStore`
  shared across runs and processes.  L2 keys are stronger than L1 keys
  (alpha-renamed text plus a profile/estimator fingerprint, see
  :mod:`repro.store.keys`) and L2 values are raw mergeable counts rather
  than finished estimates, so a re-run can *continue* sampling where a
  previous run stopped and independent runs pool their budgets.

The cache is thread-safe: lookups, inserts, and the counters are guarded by
one reentrant lock, so a :class:`~repro.core.qcoral.QCoralAnalyzer` (or
several) may share an instance under the thread executor backend without
corrupting entries or statistics.  L2 handles carry their own lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.estimate import Estimate
from repro.lang import ast
from repro.lang.simplify import simplify_path_condition
from repro.obs import Observability, ensure_observability
from repro.store.backends import EstimateStore
from repro.store.entry import StoreEntry
from repro.store.keys import FactorKey, StoreContext


@dataclass
class CacheStatistics:
    """Hit/miss counters of both tiers, exposed in analysis reports.

    ``hits``/``misses`` count L1 lookups exactly as before the store existed;
    the ``store_*`` counters record this run's traffic against the persistent
    tier (they stay zero when no store is configured).
    """

    hits: int = 0
    misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    warm_starts: int = 0
    store_publishes: int = 0
    store_merges: int = 0

    @property
    def lookups(self) -> int:
        """Total number of L1 lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of L1 lookups served from the cache (0 when never used)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def store_lookups(self) -> int:
        """Total number of persistent-store lookups."""
        return self.store_hits + self.store_misses

    @property
    def reused_factors(self) -> int:
        """Factors this run did not have to sample from scratch."""
        return self.hits + self.store_hits


class EstimateCache:
    """Maps canonical factor text to a previously computed :class:`Estimate`.

    Built without a store, this is exactly the paper's in-run cache.  With a
    store and a :class:`~repro.store.keys.StoreContext` it becomes the L1 of
    a two-tier hierarchy: :meth:`fetch_entry` consults the persistent tier on
    an L1 miss, and :meth:`publish` folds a run's freshly drawn counts back
    with merge-on-write semantics.
    """

    def __init__(
        self,
        store: Optional[EstimateStore] = None,
        context: Optional[StoreContext] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        if (store is None) != (context is None):
            raise ValueError("a store and its key context must be provided together")
        self._entries: Dict[str, Estimate] = {}
        self._statistics = CacheStatistics()
        self._store = store
        self._context = context
        self._obs = ensure_observability(observability)
        # Reentrant so get_or_compute may call get/put while holding it.
        self._lock = threading.RLock()

    @property
    def statistics(self) -> CacheStatistics:
        """Hit/miss counters accumulated so far."""
        return self._statistics

    @property
    def store(self) -> Optional[EstimateStore]:
        """The persistent tier, when one is attached."""
        return self._store

    @property
    def has_store(self) -> bool:
        """True when a persistent tier is attached."""
        return self._store is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, factor: ast.PathCondition) -> bool:
        key = self.key_for(factor)
        with self._lock:
            return key in self._entries

    @staticmethod
    def key_for(factor: ast.PathCondition) -> str:
        """Canonical L1 cache key of a factor (order-insensitive, simplified)."""
        return simplify_path_condition(factor).canonical()

    # ------------------------------------------------------------------ #
    # L1: the in-run tier
    # ------------------------------------------------------------------ #
    def get(self, factor: ast.PathCondition) -> Optional[Estimate]:
        """Cached estimate for ``factor`` or None, updating the counters."""
        key = self.key_for(factor)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._statistics.misses += 1
            else:
                self._statistics.hits += 1
            return entry

    def put(self, factor: ast.PathCondition, estimate: Estimate) -> None:
        """Store the estimate for ``factor``."""
        key = self.key_for(factor)
        with self._lock:
            self._entries[key] = estimate

    def record_shared_hit(self) -> None:
        """Count a reuse that bypassed the cache (an in-run shared factor).

        The incremental analyzer deduplicates factors before sampling starts,
        so a factor shared by several path conditions is looked up only once;
        this keeps the hit/miss statistics equivalent to per-occurrence
        lookups.
        """
        with self._lock:
            self._statistics.hits += 1

    def record_warm_start(self) -> None:
        """Count a factor that resumed sampling from stored counts."""
        with self._lock:
            self._statistics.warm_starts += 1
        self._obs.count("store_warm_starts_total")

    def get_or_compute(self, factor: ast.PathCondition, compute: Callable[[], Estimate]) -> Estimate:
        """Return the cached estimate or compute, store, and return a new one.

        ``compute`` runs outside the lock (it may sample for a long time), so
        two threads racing on the same missing factor may both compute it;
        the last store wins, which is safe because both computed the same
        factor.
        """
        cached = self.get(factor)
        if cached is not None:
            return cached
        estimate = compute()
        self.put(factor, estimate)
        return estimate

    # ------------------------------------------------------------------ #
    # L2: the persistent tier
    # ------------------------------------------------------------------ #
    def store_key(self, factor: ast.PathCondition) -> Optional[FactorKey]:
        """Canonical persistent-store key of ``factor`` (None without a store)."""
        if self._context is None:
            return None
        return self._context.key_for(factor)

    def fetch_entry(self, key: FactorKey) -> Optional[StoreEntry]:
        """Stored raw counts for ``key``, updating the store counters."""
        if self._store is None:
            return None
        if self._obs.enabled:
            started = time.perf_counter()
            entry = self._store.get(key.digest)
            self._obs.observe("store_get_seconds", time.perf_counter() - started)
            self._obs.count("store_gets_total")
            if entry is not None:
                self._obs.count("store_hits_total")
        else:
            entry = self._store.get(key.digest)
        with self._lock:
            if entry is None:
                self._statistics.store_misses += 1
            else:
                self._statistics.store_hits += 1
        return entry

    def publish(self, key: FactorKey, delta: StoreEntry, merged_into_prior: bool = False) -> None:
        """Fold one run's delta counts for ``key`` into the persistent tier.

        ``delta`` must contain only the samples this run drew itself — never
        counts loaded from the store — so concurrent and sequential runs pool
        correctly.  ``merged_into_prior`` marks publishes that extend an entry
        this run loaded (warm starts), which the statistics report as merges.
        """
        if self._store is None:
            return
        if self._obs.enabled:
            started = time.perf_counter()
            self._store.merge(key.digest, delta.described(key.pc_text, key.fingerprint))
            self._obs.observe("store_merge_seconds", time.perf_counter() - started)
            self._obs.count("store_publishes_total")
        else:
            self._store.merge(key.digest, delta.described(key.pc_text, key.fingerprint))
        if self._store.readonly:
            # The backend skipped the write (counted in its own statistics);
            # reporting it as published here would misstate what persisted.
            return
        with self._lock:
            self._statistics.store_publishes += 1
            if merged_into_prior:
                self._statistics.store_merges += 1

    def clear(self) -> None:
        """Drop all L1 entries and reset the counters (the store is untouched)."""
        with self._lock:
            self._entries.clear()
            self._statistics = CacheStatistics()
