"""Cache of per-factor estimates (the PARTCACHE feature).

Algorithm 2 stores the estimate computed for each independent factor (the
projection of a path condition onto one block of the variable partition) and
reuses it whenever the same factor reappears — either in another path
condition or in the same one after simplification.  The cache key is the
canonical text of the simplified factor, so syntactic duplicates share an
entry regardless of conjunct order.

The cache is thread-safe: lookups, inserts, and the hit/miss counters are
guarded by one reentrant lock, so a :class:`~repro.core.qcoral.QCoralAnalyzer`
(or several) may share an instance under the thread executor backend without
corrupting entries or statistics.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.estimate import Estimate
from repro.lang import ast
from repro.lang.simplify import simplify_path_condition


@dataclass
class CacheStatistics:
    """Hit/miss counters exposed in analysis reports."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class EstimateCache:
    """Maps canonical factor text to a previously computed :class:`Estimate`."""

    def __init__(self) -> None:
        self._entries: Dict[str, Estimate] = {}
        self._statistics = CacheStatistics()
        # Reentrant so get_or_compute may call get/put while holding it.
        self._lock = threading.RLock()

    @property
    def statistics(self) -> CacheStatistics:
        """Hit/miss counters accumulated so far."""
        return self._statistics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, factor: ast.PathCondition) -> bool:
        key = self.key_for(factor)
        with self._lock:
            return key in self._entries

    @staticmethod
    def key_for(factor: ast.PathCondition) -> str:
        """Canonical cache key of a factor (order-insensitive, simplified)."""
        return simplify_path_condition(factor).canonical()

    def get(self, factor: ast.PathCondition) -> Optional[Estimate]:
        """Cached estimate for ``factor`` or None, updating the counters."""
        key = self.key_for(factor)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._statistics.misses += 1
            else:
                self._statistics.hits += 1
            return entry

    def put(self, factor: ast.PathCondition, estimate: Estimate) -> None:
        """Store the estimate for ``factor``."""
        key = self.key_for(factor)
        with self._lock:
            self._entries[key] = estimate

    def record_shared_hit(self) -> None:
        """Count a reuse that bypassed the store (an in-run shared factor).

        The incremental analyzer deduplicates factors before sampling starts,
        so a factor shared by several path conditions is looked up only once;
        this keeps the hit/miss statistics equivalent to per-occurrence
        lookups.
        """
        with self._lock:
            self._statistics.hits += 1

    def get_or_compute(
        self, factor: ast.PathCondition, compute: Callable[[], Estimate]
    ) -> Estimate:
        """Return the cached estimate or compute, store, and return a new one.

        ``compute`` runs outside the lock (it may sample for a long time), so
        two threads racing on the same missing factor may both compute it;
        the last store wins, which is safe because both computed the same
        factor.
        """
        cached = self.get(factor)
        if cached is not None:
            return cached
        estimate = compute()
        self.put(factor, estimate)
        return estimate

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._statistics = CacheStatistics()
