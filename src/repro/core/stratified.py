"""ICP-driven stratified sampling (paper Section 3.3 and Algorithm 3).

The sampler asks the ICP solver for a paving of the constraint's solution set,
treats each paved box as a stratum, runs hit-or-miss Monte Carlo inside each
stratum, and combines the per-stratum estimators with the stratified-sampling
formulas of Equation (3):

    E[X] = Σ w_i · E[X_i]          Var[X] = Σ w_i² · Var[X_i]

The region of the domain not covered by any box is known to contain no
solution, so it contributes a stratum with mean 0 and variance 0 for free —
this is exactly the variance-reduction mechanism the paper describes.

Two refinements the ICP output enables:

* *inner* boxes (every point satisfies the constraints) contribute mean 1 and
  variance 0 without any sampling — this is why the paper's Cube
  microbenchmark has σ = 0;
* degenerate empty pavings prove the constraint unsatisfiable, yielding the
  exact estimate 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.estimate import Estimate
from repro.core.montecarlo import hit_or_miss
from repro.core.profiles import UsageProfile
from repro.errors import AnalysisError
from repro.icp.config import ICPConfig, PAPER_CONFIG
from repro.icp.solver import ICPSolver, Paving
from repro.intervals.box import Box
from repro.lang import ast
from repro.lang.compiler import compile_path_condition


@dataclass(frozen=True)
class StratumReport:
    """Per-stratum record kept for reporting and debugging."""

    box: Box
    weight: float
    inner: bool
    estimate: Estimate
    samples: int


@dataclass(frozen=True)
class StratifiedResult:
    """Combined stratified estimate plus per-stratum details."""

    estimate: Estimate
    strata: Tuple[StratumReport, ...]
    total_samples: int

    @property
    def box_count(self) -> int:
        """Number of strata (ICP boxes) used."""
        return len(self.strata)


def stratified_sampling(
    pc: ast.PathCondition,
    profile: UsageProfile,
    samples: int,
    rng: np.random.Generator,
    variables: Optional[Sequence[str]] = None,
    icp_config: ICPConfig = PAPER_CONFIG,
    solver: Optional[ICPSolver] = None,
) -> StratifiedResult:
    """Estimate the probability of ``pc`` with ICP-stratified sampling.

    Args:
        pc: Conjunction of constraints to estimate (one independent factor).
        profile: Usage profile covering the free variables of ``pc``.
        samples: Total sampling budget; split evenly across the strata, as the
            paper assumes for the combination formula of Equation (3).
        rng: NumPy random generator.
        variables: Variables to quantify over; defaults to the free variables
            of ``pc``.
        icp_config: Configuration for a solver created on the fly.
        solver: Optional pre-built ICP solver (overrides ``icp_config``).

    Returns:
        A :class:`StratifiedResult` with the combined estimate.
    """
    if samples <= 0:
        raise AnalysisError("stratified sampling needs a positive sample budget")

    names: Tuple[str, ...] = tuple(variables) if variables is not None else tuple(sorted(pc.free_variables()))
    profile.check_covers(names)

    if not names:
        from repro.lang.evaluator import holds_path_condition

        mean = 1.0 if holds_path_condition(pc, {}) else 0.0
        return StratifiedResult(Estimate.exact(mean), (), 0)

    domain = profile.restrict(names).domain()
    icp_solver = solver if solver is not None else ICPSolver(icp_config)
    paving = icp_solver.pave(pc, domain)

    if paving.is_unsatisfiable():
        return StratifiedResult(Estimate.zero(), (), 0)

    return combine_strata(pc, paving, profile, samples, rng, names)


def combine_strata(
    pc: ast.PathCondition,
    paving: Paving,
    profile: UsageProfile,
    samples: int,
    rng: np.random.Generator,
    variables: Sequence[str],
) -> StratifiedResult:
    """Sample each paving box and combine the estimators per Equation (3)."""
    boxes = list(paving.boxes)
    sampled_boxes = [paved for paved in boxes if not paved.inner]
    per_box_samples = max(1, samples // len(boxes)) if boxes else samples

    predicate = compile_path_condition(pc)
    total = Estimate.zero()
    reports = []
    total_samples = 0

    for paved in boxes:
        weight = profile.weight(paved.box)
        if weight == 0.0:
            reports.append(StratumReport(paved.box, 0.0, paved.inner, Estimate.zero(), 0))
            continue
        if paved.inner:
            stratum_estimate = Estimate.one()
            used_samples = 0
        else:
            result = hit_or_miss(
                pc,
                profile,
                per_box_samples,
                rng,
                box=paved.box,
                variables=variables,
                predicate=predicate,
            )
            stratum_estimate = result.estimate
            used_samples = result.samples
            total_samples += used_samples
        total = Estimate(
            total.mean + weight * stratum_estimate.mean,
            total.variance + weight * weight * stratum_estimate.variance,
        )
        reports.append(StratumReport(paved.box, weight, paved.inner, stratum_estimate, used_samples))

    # The uncovered remainder of the domain is solution-free: mean 0, variance 0.
    return StratifiedResult(total, tuple(reports), total_samples)
