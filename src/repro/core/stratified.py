"""ICP-driven stratified sampling (paper Section 3.3 and Algorithm 3).

The sampler asks the ICP solver for a paving of the constraint's solution set,
treats each paved box as a stratum, runs hit-or-miss Monte Carlo inside each
stratum, and combines the per-stratum estimators with the stratified-sampling
formulas of Equation (3):

    E[X] = Σ w_i · E[X_i]          Var[X] = Σ w_i² · Var[X_i]

The region of the domain not covered by any box is known to contain no
solution, so it contributes a stratum with mean 0 and variance 0 for free —
this is exactly the variance-reduction mechanism the paper describes.

Two refinements the ICP output enables:

* *inner* boxes (every point satisfies the constraints) contribute mean 1 and
  variance 0 without any sampling — this is why the paper's Cube
  microbenchmark has σ = 0;
* degenerate empty pavings prove the constraint unsatisfiable, yielding the
  exact estimate 0.

Beyond the paper's one-shot scheme, strata are *persistent*: a
:class:`StratifiedSampler` keeps a mergeable accumulator per stratum and can
receive additional budget round after round via :meth:`StratifiedSampler.extend`.
Each round's budget is split either evenly across the sampleable strata (the
paper's choice) or by **Neyman allocation** — proportional to each stratum's
weighted standard deviation ``w_i · σ_i``, which minimises the combined
variance ``Σ w_i² σ_i² / n_i`` for a fixed total budget.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exec depends on us)
    from repro.exec.executor import Executor
    from repro.exec.scheduler import SamplingTask
    from repro.exec.seeds import SeedStream

from repro.core.estimate import Estimate, RunningEstimate
from repro.core.montecarlo import hit_or_miss
from repro.core.profiles import UsageProfile
from repro.errors import AnalysisError, ConfigurationError
from repro.icp.config import ICPConfig, PAPER_CONFIG
from repro.icp.solver import ICPSolver, PavedBox, Paving
from repro.intervals.box import Box
from repro.lang import ast
from repro.lang.kernel import get_kernel
from repro.obs import Observability, ensure_observability

#: Allocation policy names accepted throughout the stack.  ``"even"`` is the
#: paper's equal split, ``"neyman"`` the variance-minimising ``w·σ`` split,
#: and ``"mass"`` the pure mass-proportional split (draws distributed like the
#: profile restricted to the union of the sampleable boxes — the importance
#: sampler's proposal before any variance information exists).
ALLOCATION_POLICIES = ("even", "neyman", "mass")

#: σ assumed for a stratum that has not been sampled yet: the Bernoulli
#: ceiling, so unexplored strata are prioritised by their weight alone.
_PRIOR_SIGMA = 0.5


def laplace_sigma_floor(hits: int, samples: int) -> float:
    """Smoothed Bernoulli σ from raw counts: ``√(p̃ (1 − p̃))``, ``p̃ = (h+1)/(n+2)``.

    Add-one (Laplace) smoothing keeps the σ estimate strictly positive on any
    finite sample, so an all-miss (or all-hit) pilot cannot zero a stratum's
    or factor's allocation priority forever; as ``n`` grows the floor decays
    to the true σ like ``1/√n``.
    """
    if samples < 0:
        raise AnalysisError("sample count may not be negative")
    smoothed = (hits + 1.0) / (samples + 2.0)
    return math.sqrt(smoothed * (1.0 - smoothed))


@dataclass(frozen=True)
class StratumReport:
    """Per-stratum record kept for reporting and debugging."""

    box: Box
    weight: float
    inner: bool
    estimate: Estimate
    samples: int


@dataclass(frozen=True)
class StratifiedResult:
    """Combined stratified estimate plus per-stratum details."""

    estimate: Estimate
    strata: Tuple[StratumReport, ...]
    total_samples: int

    @property
    def box_count(self) -> int:
        """Number of strata (ICP boxes) used."""
        return len(self.strata)


class Stratum:
    """One persistent stratum: an ICP box plus a resumable accumulator.

    Alongside the moment accumulator the stratum keeps exact integer hit and
    draw counts; the persistent store serialises those (integers merge across
    runs without floating-point drift).
    """

    __slots__ = (
        "box",
        "weight",
        "inner",
        "accumulator",
        "hit_count",
        "draw_count",
        "zero_allocation_streak",
        "max_zero_allocation_streak",
    )

    def __init__(self, box: Box, weight: float, inner: bool) -> None:
        self.box = box
        self.weight = weight
        self.inner = inner
        self.accumulator = RunningEstimate()
        self.hit_count = 0
        self.draw_count = 0
        # Starvation counters for the run-health diagnostics: consecutive
        # allocation rounds in which this sampleable stratum received zero
        # samples, and the worst such streak over the stratum's lifetime.
        self.zero_allocation_streak = 0
        self.max_zero_allocation_streak = 0

    @property
    def sampleable(self) -> bool:
        """True when this stratum consumes budget (boundary box with mass)."""
        return not self.inner and self.weight > 0.0

    @property
    def samples(self) -> int:
        """Samples spent inside this stratum so far."""
        return self.accumulator.samples

    def absorb(self, hits: int, samples: int) -> None:
        """Fold a batch of raw counts into the accumulator and the counters."""
        self.accumulator.absorb_counts(hits, samples)
        self.hit_count += hits
        self.draw_count += samples

    def sigma(self) -> float:
        """Per-sample standard deviation, with the Bernoulli prior when unsampled.

        The observed σ is floored by its Laplace-smoothed counterpart
        (``p̃ = (h + 1) / (n + 2)``): a stratum whose pilot saw 0 hits (or
        only hits) has an observed σ̂ of exactly 0, which under Neyman
        allocation would starve it of budget *permanently* no matter how
        little evidence the pilot carried.  The smoothed floor decays like
        ``1/√n``, so genuinely resolved strata still fade out of the
        allocation — they are just never hard-zeroed on finite evidence.
        """
        if not self.sampleable:
            return 0.0
        if self.accumulator.samples == 0:
            return _PRIOR_SIGMA
        return max(
            self.accumulator.per_sample_std,
            laplace_sigma_floor(self.hit_count, self.draw_count),
        )

    def estimate(self) -> Estimate:
        """Current estimate of the conditional probability within the box."""
        if self.inner:
            return Estimate.one()
        if self.weight == 0.0:
            return Estimate.zero()
        return self.accumulator.to_estimate()

    def report(self) -> StratumReport:
        """Immutable snapshot for :class:`StratifiedResult`."""
        return StratumReport(self.box, self.weight, self.inner, self.estimate(), self.samples)


# --------------------------------------------------------------------------- #
# Budget allocation
# --------------------------------------------------------------------------- #
def allocate_budget(priorities: Sequence[float], budget: int) -> List[int]:
    """Split ``budget`` samples proportionally to ``priorities``.

    Largest-remainder rounding guarantees the shares sum to exactly ``budget``
    — no sample of the budget is ever silently dropped.  Every entry with a
    positive priority receives at least one sample whenever the budget is
    large enough to afford it.  Entries with zero priority receive nothing;
    when *all* priorities are zero the budget is split evenly instead.
    """
    if budget < 0:
        raise ConfigurationError("allocation budget may not be negative")
    count = len(priorities)
    if count == 0 or budget == 0:
        return [0] * count
    if any(p < 0 or math.isnan(p) for p in priorities):
        raise ConfigurationError("allocation priorities must be non-negative")

    total = float(sum(priorities))
    if total <= 0.0:
        effective = [1.0] * count
        total = float(count)
    else:
        effective = [float(p) for p in priorities]

    shares = [p / total * budget for p in effective]
    allocation = [int(share) for share in shares]
    remainders = [share - base for share, base in zip(shares, allocation)]
    leftover = budget - sum(allocation)
    for index in sorted(range(count), key=lambda i: remainders[i], reverse=True)[:leftover]:
        allocation[index] += 1

    # Guarantee a minimum of one sample per active entry so every stratum's σ
    # stays estimable, stealing from the largest shares when necessary.
    active = [index for index, p in enumerate(effective) if p > 0.0]
    if budget >= len(active):
        starved = [index for index in active if allocation[index] == 0]
        donors = sorted(active, key=lambda i: allocation[i], reverse=True)
        for index in starved:
            for donor in donors:
                if allocation[donor] > 1:
                    allocation[donor] -= 1
                    allocation[index] += 1
                    break
    return allocation


def allocation_priorities(strata: Sequence[Stratum], policy: str) -> List[float]:
    """Per-stratum allocation priorities under ``policy``.

    ``"even"`` gives every sampleable stratum the same priority (the paper's
    equal split); ``"neyman"`` weights each sampleable stratum by
    ``w_i · σ_i`` — the allocation that minimises the combined variance of
    Equation (3) — using the running per-stratum σ (unsampled strata assume
    the Bernoulli ceiling); ``"mass"`` weights by ``w_i`` alone, i.e. draws
    land mass-proportionally, as if sampling the profile restricted to the
    union of the sampleable boxes.
    """
    if policy not in ALLOCATION_POLICIES:
        raise ConfigurationError(f"unknown allocation policy {policy!r}; expected one of {ALLOCATION_POLICIES}")
    if policy == "even":
        return [1.0 if stratum.sampleable else 0.0 for stratum in strata]
    if policy == "mass":
        return [stratum.weight if stratum.sampleable else 0.0 for stratum in strata]
    return [stratum.weight * stratum.sigma() if stratum.sampleable else 0.0 for stratum in strata]


# --------------------------------------------------------------------------- #
# The persistent sampler
# --------------------------------------------------------------------------- #
class StratifiedSampler:
    """Resumable ICP-stratified estimator of one path condition.

    The paving is computed once at construction; every call to :meth:`extend`
    then distributes an additional sample budget over the persistent strata
    and folds the new counts into the per-stratum accumulators.  The current
    combined estimate is available at any time through :meth:`estimate` /
    :meth:`result`, so callers can interleave sampling with convergence
    checks.

    When built with a :class:`~repro.exec.seeds.SeedStream` (and optionally
    an :class:`~repro.exec.executor.Executor`), each round is planned as
    seeded per-stratum chunks (:meth:`plan_extension`) that can run on any
    backend and merge back deterministically (:meth:`absorb_chunk`).
    """

    #: Label the sampler reports its draws/hits under (importance overrides).
    method_label = "stratified"

    def __init__(
        self,
        pc: ast.PathCondition,
        profile: UsageProfile,
        rng: Optional[np.random.Generator],
        variables: Optional[Sequence[str]] = None,
        icp_config: ICPConfig = PAPER_CONFIG,
        solver: Optional[ICPSolver] = None,
        executor: Optional["Executor"] = None,
        seed_stream: Optional["SeedStream"] = None,
        chunk_size: Optional[int] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        if rng is None and seed_stream is None:
            raise ConfigurationError(
                "a stratified sampler needs either an rng (serial path) or a seed_stream (sharded path)"
            )
        self._pc = pc
        self._profile = profile
        self._rng = rng
        self._executor = executor
        self._seed_stream = seed_stream
        self._chunk_size = chunk_size
        self._obs = ensure_observability(observability)
        self._names: Tuple[str, ...] = (
            tuple(variables) if variables is not None else tuple(sorted(pc.free_variables()))
        )
        profile.check_covers(self._names)

        self._strata: List[Stratum] = []
        self._exact: Optional[Estimate] = None
        self._predicate = None

        if not self._names:
            from repro.lang.evaluator import holds_path_condition

            self._exact = Estimate.exact(1.0 if holds_path_condition(pc, {}) else 0.0)
            return

        restricted = profile.restrict(self._names)
        domain = restricted.domain()
        icp_solver = solver if solver is not None else ICPSolver(icp_config)
        self._icp_config = icp_solver.config
        self._integer_names = restricted.discrete_variables()
        if self._obs.enabled:
            with self._obs.span("icp.pave", variables=len(self._names)):
                pave_started = time.perf_counter()
                paving: Paving = icp_solver.pave(pc, domain, integer_variables=self._integer_names)
                self._obs.observe("icp_pave_seconds", time.perf_counter() - pave_started)
            self._obs.count("icp_boxes_explored_total", paving.boxes_explored)
            self._obs.count("icp_contraction_passes_total", paving.contraction_passes)
        else:
            paving = icp_solver.pave(pc, domain, integer_variables=self._integer_names)

        if paving.is_unsatisfiable():
            self._exact = Estimate.zero()
            return

        for paved in self._refined_boxes(paving):
            self._strata.append(Stratum(paved.box, profile.mass(paved.box), paved.inner))

        if not any(stratum.sampleable for stratum in self._strata):
            # Every box is inner or mass-free: the paving resolves the
            # probability exactly and no budget will ever be consumed.
            self._exact = Estimate.exact(sum(stratum.weight for stratum in self._strata if stratum.inner))
            return

        # On the sharded path (seed_stream set) workers compile and cache
        # their own predicate; compiling here would be wasted work.
        self._predicate = get_kernel(pc) if self._seed_stream is None else None

    def _refined_boxes(self, paving: "Paving") -> Sequence["PavedBox"]:
        """Hook mapping the ICP paving to the stratum boxes (identity here).

        The importance sampler overrides this to refine the paving further by
        splitting the highest-mass boxes before any budget is spent.
        """
        return paving.boxes

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def strata(self) -> Tuple[Stratum, ...]:
        """The persistent strata (empty when the estimate is exact)."""
        return tuple(self._strata)

    @property
    def is_exact(self) -> bool:
        """True when ICP resolved the probability without any sampling."""
        return self._exact is not None

    @property
    def total_samples(self) -> int:
        """Samples consumed across all strata so far."""
        return sum(stratum.samples for stratum in self._strata)

    def effective_sample_size(self) -> Optional[float]:
        """Cross-strata effective sample size of the self-normalised form.

        With per-stratum importance weights constant inside a stratum
        (``w_i = m_i · N / n_i``), the standard ``(Σw)² / Σw²`` ESS reduces to
        ``M² / Σ m_i²/n_i`` over the sampled sampleable strata of total mass
        ``M``.  Equals ``N`` exactly when allocation is proportional to mass
        and collapses as allocation diverges from the mass profile — the
        degeneracy signal the run-health diagnostics act on.  ``None`` before
        any sampleable stratum has been drawn from.
        """
        mass = 0.0
        denominator = 0.0
        for stratum in self._strata:
            if not stratum.sampleable or stratum.draw_count == 0:
                continue
            mass += stratum.weight
            denominator += stratum.weight * stratum.weight / stratum.draw_count
        if denominator <= 0.0:
            return None
        return mass * mass / denominator

    def _record_allocation(self, shares: Sequence[int]) -> None:
        """Update per-stratum zero-allocation streaks after one budget split.

        Called exactly once per allocation round on both the serial and the
        sharded paths, so the streak counters — inputs to the deterministic
        run-health diagnostics — are identical across executors.
        """
        for stratum, share in zip(self._strata, shares):
            if not stratum.sampleable:
                continue
            if share > 0:
                stratum.zero_allocation_streak = 0
            else:
                stratum.zero_allocation_streak += 1
                if stratum.zero_allocation_streak > stratum.max_zero_allocation_streak:
                    stratum.max_zero_allocation_streak = stratum.zero_allocation_streak

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def extend(self, budget: int, allocation: str = "even") -> int:
        """Spend ``budget`` more samples across the strata; returns samples used.

        The whole budget is divided across the *sampleable* strata only —
        inner and mass-free boxes consume nothing — so the returned count
        equals ``budget`` whenever at least one stratum is sampleable.

        With an executor and seed stream configured, the round is sharded
        into per-stratum seeded tasks and run on the backend; otherwise the
        strata are sampled in-thread from the sampler's generator.
        """
        if budget < 0:
            raise AnalysisError("stratified budget may not be negative")
        if self._exact is not None or budget == 0:
            return 0
        if self._seed_stream is not None:
            return self._extend_sharded(budget, allocation)
        return self._extend_serial(budget, allocation)

    def _extend_serial(self, budget: int, allocation: str) -> int:
        shares = allocate_budget(allocation_priorities(self._strata, allocation), budget)
        self._record_allocation(shares)
        used = 0
        hits = 0
        for stratum, share in zip(self._strata, shares):
            if share == 0:
                continue
            result = hit_or_miss(
                self._pc,
                self._profile,
                share,
                self._rng,
                box=stratum.box,
                variables=self._names,
                predicate=self._predicate,
            )
            stratum.absorb(result.hits, result.samples)
            used += result.samples
            hits += result.hits
        if used and self._obs.enabled:
            self._obs.count("sampler_draws_total", used, method=self.method_label)
            self._obs.count("sampler_hits_total", hits, method=self.method_label)
        return used

    def _extend_sharded(self, budget: int, allocation: str) -> int:
        from repro.exec.scheduler import run_sampling_tasks

        planned = self.plan_extension(budget, allocation)
        outcomes = run_sampling_tasks(self._executor, [task for _, task in planned], observability=self._obs)
        used = 0
        for (stratum_index, _), (hits, samples) in zip(planned, outcomes):
            self.absorb_chunk(stratum_index, hits, samples)
            used += samples
        return used

    # ------------------------------------------------------------------ #
    # Sharded planning (used directly by the analyzer's cross-factor rounds)
    # ------------------------------------------------------------------ #
    def plan_extension(self, budget: int, allocation: str = "even") -> List[Tuple[int, "SamplingTask"]]:
        """Plan ``budget`` samples as seeded ``(stratum_index, task)`` chunks.

        The plan is a pure function of the sampler's state and the spawn
        order of its seed stream: shares follow the allocation policy, each
        share is cut into worker-count-independent chunks, and seeds are
        spawned in (stratum, chunk) order.  Running the tasks anywhere and
        feeding the counts back through :meth:`absorb_chunk` therefore gives
        the same accumulator state on any backend.
        """
        from repro.exec.scheduler import DEFAULT_CHUNK_SIZE, SamplingTask, shard_budget

        if self._seed_stream is None:
            raise ConfigurationError("plan_extension needs a sampler built with a seed_stream")
        if budget < 0:
            raise AnalysisError("stratified budget may not be negative")
        if self._exact is not None or budget == 0:
            return []
        chunk_size = self._chunk_size if self._chunk_size is not None else DEFAULT_CHUNK_SIZE
        shares = allocate_budget(allocation_priorities(self._strata, allocation), budget)
        self._record_allocation(shares)
        planned: List[Tuple[int, SamplingTask]] = []
        for index, (stratum, share) in enumerate(zip(self._strata, shares)):
            for chunk in shard_budget(share, chunk_size):
                planned.append(
                    (
                        index,
                        SamplingTask(
                            pc=self._pc,
                            profile=self._profile,
                            samples=chunk,
                            seed=self._seed_stream.spawn_sequence(),
                            box=stratum.box,
                            variables=self._names,
                        ),
                    )
                )
        return planned

    def absorb_chunk(self, stratum_index: int, hits: int, samples: int) -> None:
        """Fold one executed chunk's raw counts into its stratum."""
        self._strata[stratum_index].absorb(hits, samples)
        if self._obs.enabled:
            self._obs.count("sampler_draws_total", samples, method=self.method_label)
            self._obs.count("sampler_hits_total", hits, method=self.method_label)

    def reseed(self, rng: np.random.Generator) -> None:
        """Replace the serial-path generator.

        Used when warm-starting from stored counts: a run re-using the master
        seed that produced the prior would otherwise replay the exact sample
        stream already pooled in the store, and pooling duplicates is not
        pooling.  The caller hands a continuation-indexed generator instead.
        """
        if self._seed_stream is not None:
            raise ConfigurationError("reseed applies to the serial path only")
        self._rng = rng

    # ------------------------------------------------------------------ #
    # Persistent-store integration (raw counts in paving order)
    # ------------------------------------------------------------------ #
    def counts(self) -> Tuple[Tuple[int, int], ...]:
        """Exact per-stratum ``(hits, samples)`` counts, in paving order."""
        return tuple((stratum.hit_count, stratum.draw_count) for stratum in self._strata)

    def preload_counts(self, counts: Sequence[Tuple[int, int]]) -> None:
        """Warm-start the strata from counts a previous run stored.

        ``counts`` must line up with this sampler's paving (same length, same
        order) — the caller checks that via :meth:`paving_fingerprint` before
        preloading, because pavings are not perfectly reproducible (the ICP
        solver has a wall-clock budget).
        """
        if len(counts) != len(self._strata):
            raise AnalysisError(f"cannot preload {len(counts)} strata into a paving of {len(self._strata)}")
        for stratum, (hits, samples) in zip(self._strata, counts):
            if samples:
                stratum.absorb(int(hits), int(samples))

    def paving_fingerprint(self, canonical_order: Sequence[str]) -> str:
        """Deterministic, renaming-invariant text identifying the paving.

        ``canonical_order`` maps store positions to this sampler's variable
        names (position ``i`` is the variable the store calls ``$v{i}``), so
        two alpha-equivalent factors produce the same fingerprint exactly
        when their pavings are structurally identical — the condition under
        which stored per-stratum counts line up with local strata.
        """
        rendered = []
        for stratum in self._strata:
            cells = ",".join(
                f"[{stratum.box.interval(name).lo!r},{stratum.box.interval(name).hi!r}]"
                for name in canonical_order
                if name in stratum.box
            )
            rendered.append(("I" if stratum.inner else "B") + cells)
        return "|".join(rendered)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def estimate(self) -> Estimate:
        """Combined stratified estimate per Equation (3)."""
        if self._exact is not None:
            return self._exact
        total = Estimate.zero()
        for stratum in self._strata:
            if stratum.weight == 0.0:
                continue
            total = total.add_disjoint(stratum.estimate().scale(stratum.weight))
        return total

    def result(self) -> StratifiedResult:
        """Snapshot of the combined estimate plus per-stratum details."""
        if self._exact is not None:
            return StratifiedResult(self._exact, tuple(s.report() for s in self._strata), 0)
        return StratifiedResult(
            self.estimate(),
            tuple(stratum.report() for stratum in self._strata),
            self.total_samples,
        )


def stratified_sampling(
    pc: ast.PathCondition,
    profile: UsageProfile,
    samples: int,
    rng: Optional[np.random.Generator],
    variables: Optional[Sequence[str]] = None,
    icp_config: ICPConfig = PAPER_CONFIG,
    solver: Optional[ICPSolver] = None,
    allocation: str = "even",
    executor: Optional["Executor"] = None,
    seed_stream: Optional["SeedStream"] = None,
    chunk_size: Optional[int] = None,
) -> StratifiedResult:
    """Estimate the probability of ``pc`` with ICP-stratified sampling.

    One-shot convenience wrapper around :class:`StratifiedSampler`: pave,
    spend the whole budget in a single round, and return the snapshot.

    Args:
        pc: Conjunction of constraints to estimate (one independent factor).
        profile: Usage profile covering the free variables of ``pc``.
        samples: Total sampling budget, split across the sampleable strata
            according to ``allocation`` (inner and mass-free boxes consume no
            budget, so the full budget lands on boxes that need it).
        rng: NumPy random generator.
        variables: Variables to quantify over; defaults to the free variables
            of ``pc``.
        icp_config: Configuration for a solver created on the fly.
        solver: Optional pre-built ICP solver (overrides ``icp_config``).
        allocation: ``"even"`` (the paper's equal split) or ``"neyman"``.
        executor: Optional backend to run seeded sampling chunks on
            (requires ``seed_stream``).
        seed_stream: Seed stream for the sharded deterministic path; when
            given, ``rng`` may be None.
        chunk_size: Samples per sharded task.

    Returns:
        A :class:`StratifiedResult` with the combined estimate.
    """
    if samples <= 0:
        raise AnalysisError("stratified sampling needs a positive sample budget")
    sampler = StratifiedSampler(
        pc,
        profile,
        rng,
        variables=variables,
        icp_config=icp_config,
        solver=solver,
        executor=executor,
        seed_stream=seed_stream,
        chunk_size=chunk_size,
    )
    sampler.extend(samples, allocation=allocation)
    return sampler.result()
