"""The dependency relation over input variables (paper Definition 1).

Two input variables depend on each other when they occur together in at least
one atomic constraint of any path condition; the relation is closed reflexively
and transitively, so it is an equivalence relation and induces a partition of
the variables.  Each block of the partition can be quantified independently of
the others, which is what makes the conjunction rule of Equations (7)–(8)
applicable.

The paper computes the partition as the weakly connected components of an
undirected graph (using the JUNG library); here a union-find structure gives
the same partition in near-linear time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.lang import ast


class UnionFind:
    """Disjoint-set forest with union by rank and path compression."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}
        self._rank: Dict[str, int] = {}

    def add(self, item: str) -> None:
        """Register ``item`` as a singleton set if it is new."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: str) -> str:
        """Representative of the set containing ``item`` (with path compression)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: str, second: str) -> None:
        """Merge the sets containing the two items."""
        root_first = self.find(first)
        root_second = self.find(second)
        if root_first == root_second:
            return
        if self._rank[root_first] < self._rank[root_second]:
            root_first, root_second = root_second, root_first
        self._parent[root_second] = root_first
        if self._rank[root_first] == self._rank[root_second]:
            self._rank[root_first] += 1

    def groups(self) -> List[FrozenSet[str]]:
        """All sets, each as a frozenset, ordered by their smallest member."""
        members: Dict[str, Set[str]] = {}
        for item in self._parent:
            members.setdefault(self.find(item), set()).add(item)
        return sorted((frozenset(group) for group in members.values()), key=min)

    def __contains__(self, item: str) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)


@dataclass(frozen=True)
class DependencyPartition:
    """The partition of the input variables induced by the Dep relation."""

    blocks: Tuple[FrozenSet[str], ...]

    def block_of(self, variable: str) -> FrozenSet[str]:
        """The block containing ``variable`` (a singleton if it never occurs)."""
        for block in self.blocks:
            if variable in block:
                return block
        return frozenset({variable})

    def depends(self, first: str, second: str) -> bool:
        """True when the two variables are in the same block (Dep holds)."""
        return second in self.block_of(first)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)


def compute_dependency_partition(
    path_conditions: Iterable[ast.PathCondition],
    extra_variables: Iterable[str] = (),
) -> DependencyPartition:
    """Compute the variable partition for a set of path conditions.

    This is the paper's ``computeDependencyRelation``: every pair of variables
    occurring in the same atomic constraint (of *any* path condition) is merged
    into the same block.  ``extra_variables`` adds singleton blocks for
    variables that have a domain but never occur in a constraint.
    """
    union_find = UnionFind()
    for variable in extra_variables:
        union_find.add(variable)
    for pc in path_conditions:
        for constraint in pc.constraints:
            names = sorted(constraint.free_variables())
            for name in names:
                union_find.add(name)
            for first, second in zip(names, names[1:]):
                union_find.union(first, second)
    return DependencyPartition(tuple(union_find.groups()))


def partition_for_constraint_set(constraint_set: ast.ConstraintSet) -> DependencyPartition:
    """Dependency partition of all path conditions in a constraint set."""
    return compute_dependency_partition(constraint_set.path_conditions)
