"""The qCORAL analyzer: Algorithms 1 and 2 of the paper, made incremental.

:class:`QCoralAnalyzer` quantifies the probability that an input drawn from a
usage profile satisfies *any* path condition of a constraint set.  The two
optional features evaluated in the paper (Table 4) are exposed as configuration
flags:

* ``stratified`` (STRAT) — estimate each factor with ICP-driven stratified
  sampling instead of whole-domain hit-or-miss Monte Carlo;
* ``partition_and_cache`` (PARTCACHE) — split each path condition into
  independent factors along the dependency partition of the input variables,
  estimate factors separately, compose with the product rule, and cache factor
  estimates for reuse across path conditions.

Beyond the paper, the estimation loop is **iterative and adaptive**: every
factor is backed by a resumable sampler, and the total budget is spent over
one or more rounds.  After a pilot round the remaining budget flows to the
factors (and, within a stratified factor, the strata) with the largest
variance contribution — a generalised Neyman allocation — until either the
combined standard deviation drops below ``QCoralConfig.target_std`` or the
budget is exhausted.  Per-round convergence is recorded in
:attr:`QCoralResult.round_reports`.

Typical use::

    profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
    result = QCoralAnalyzer(profile).analyze(parse_constraint_set("x <= 0 - y && y <= x"))
    print(result.mean, result.std)

    # Adaptive: sample until σ <= 1e-4 (or the budget runs out).
    config = QCoralConfig(samples_per_query=100_000, target_std=1e-4)
    result = QCoralAnalyzer(profile, config).analyze(...)
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import CacheStatistics, EstimateCache
from repro.core.composition import (
    compose_disjoint_path_conditions,
    compose_independent_factors,
)
from repro.core.dependency import DependencyPartition, compute_dependency_partition
from repro.core.estimate import Estimate
from repro.core.importance import DEFAULT_MASS_SPLIT_BOXES
from repro.core.methods import ESTIMATION_METHODS, METHOD_REGISTRY
from repro.core.montecarlo import SamplingResult, hit_or_miss
from repro.core.profiles import UsageProfile
from repro.core.stratified import (
    ALLOCATION_POLICIES,
    StratifiedSampler,
    allocate_budget,
    laplace_sigma_floor,
)
from repro.errors import ConfigurationError
from repro.exec.executor import EXECUTOR_KINDS, Executor, resolve_executor
from repro.exec.scheduler import SamplingTask, run_sampling_tasks, shard_budget
from repro.exec.seeds import SeedStream
from repro.icp.config import ICPConfig, PAPER_CONFIG
from repro.icp.solver import ICPSolver
from repro.lang import ast
from repro.lang.analysis import group_constraints_by_block
from repro.lang.kernel import KernelCacheStats, get_kernel, kernel_cache_stats
from repro.lang.simplify import simplify_path_condition
from repro.obs import Observability, ensure_observability
from repro.obs.diagnostics import Diagnostic, FactorHealth, StratumHealth, diagnose_run
from repro.obs.ledger import config_fingerprint
from repro.obs.metrics import MetricsSnapshot
from repro.store.backends import STORE_BACKENDS, EstimateStore, StoreStatistics, open_store
from repro.store.entry import StoreEntry
from repro.store.keys import FactorKey, StoreContext, mc_method

#: Rounds used when an adaptive feature is requested without an explicit
#: ``max_rounds`` (pilot + re-allocation rounds).
DEFAULT_ADAPTIVE_ROUNDS = 6


@dataclass(frozen=True)
class QCoralConfig:
    """Configuration of a qCORAL analysis run.

    Attributes:
        samples_per_query: Sampling budget per estimated factor.  This mirrors
            the "maximum number of samples" knob of the paper's experiments;
            in adaptive runs the budget of all factors is pooled and
            re-allocated where the variance is.
        stratified: Enable the STRAT feature (ICP + stratified sampling).
        method: Estimation method for the sampled factors: ``"hit-or-miss"``
            (the paper's sampling inside the ICP paving) or ``"importance"``
            (distribution-aware importance sampling: the paving is refined by
            splitting the highest-mass×variance boxes, budget follows
            ``mass · σ̂``, and the combination is self-normalised — see
            :mod:`repro.core.importance`).  ``"importance"`` requires
            ``stratified``; it upgrades an ``"even"`` allocation to
            ``"neyman"`` and a single-round budget to the adaptive loop, since
            mass-aware allocation is the point of the method.
        mass_split_boxes: Stratum-count cap of the upfront mass-driven paving
            refinement (importance method only).  The refinement is a pure
            function of the paving, the profile, and this knob, so refined
            pavings — and persistent-store fingerprints — are reproducible.
        mass_split_adaptive: Extra splits the importance sampler may spend
            *during* sampling on the observed worst variance contributors
            (0 disables).  The split stratum's counts are written off and the
            final paving depends on the sample history, so cross-run store
            pooling is reduced for the affected factors.
        partition_and_cache: Enable the PARTCACHE feature (independent-factor
            decomposition with caching).
        seed: Seed for the NumPy random generator; None draws fresh entropy.
        icp: Configuration of the ICP paving solver.
        simplify: Simplify path conditions (constant folding, duplicate
            conjunct removal) before analysis.
        target_std: Convergence target — stop sampling once the combined
            standard deviation of the whole constraint set falls to or below
            this value.  None disables the criterion (the budget is then the
            only stop).
        max_rounds: Maximum number of sampling rounds.  1 reproduces the
            paper's one-shot behaviour; larger values enable the adaptive
            loop (pilot + variance-driven re-allocation).  Left at 1 while
            ``target_std`` is set or ``allocation="neyman"``, it is raised to
            :data:`DEFAULT_ADAPTIVE_ROUNDS` automatically.
        initial_fraction: Fraction of the total budget spent in the pilot
            round of an adaptive run (the rest is re-allocated adaptively).
        allocation: Budget split across strata and factors: ``"even"`` (the
            paper's equal split) or ``"neyman"`` (proportional to the weighted
            standard deviation ``w_i σ_i``).
        executor: Execution backend for sampling work: None (the in-thread
            single-stream path, left untouched by the executor subsystem) or
            one of ``"serial"``, ``"thread"``, ``"process"``.  Any non-None
            value switches to the sharded deterministic path: for a fixed
            ``seed`` all three backends produce bit-identical results at any
            worker count (the two paths consume different random streams, so
            their results differ from each other for the same seed).
        workers: Worker count for the thread/process backends (None = the
            machine's CPU count).
        chunk_size: Samples per sharded task on the executor path (None =
            :data:`repro.exec.scheduler.DEFAULT_CHUNK_SIZE`).
        store_path: Path of a persistent estimate store; stored per-factor
            counts are reused across runs (outright when they cover the
            budget, as warm-start priors otherwise) and this run's counts are
            merged back on completion.  Requires ``partition_and_cache`` (the
            store persists exactly what PARTCACHE caches); ignored without it.
        store_backend: Store backend (one of
            :data:`repro.store.backends.STORE_BACKENDS`); None infers it from
            the path (``.jsonl`` → jsonl, otherwise sqlite; no path → memory).
        store_readonly: Open the store read-only — stored estimates are still
            reused, but nothing this run computes is written back.
    """

    samples_per_query: int = 30_000
    stratified: bool = True
    method: str = "hit-or-miss"
    mass_split_boxes: int = DEFAULT_MASS_SPLIT_BOXES
    mass_split_adaptive: int = 0
    partition_and_cache: bool = True
    seed: Optional[int] = None
    icp: ICPConfig = PAPER_CONFIG
    simplify: bool = True
    target_std: Optional[float] = None
    max_rounds: int = 1
    initial_fraction: float = 0.25
    allocation: str = "even"
    executor: Optional[str] = None
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    store_path: Optional[str] = None
    store_backend: Optional[str] = None
    store_readonly: bool = False

    def __post_init__(self) -> None:
        if self.samples_per_query <= 0:
            raise ConfigurationError("samples_per_query must be positive")
        if self.target_std is not None and self.target_std <= 0.0:
            raise ConfigurationError("target_std must be positive when set")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be at least 1")
        if not 0.0 < self.initial_fraction <= 1.0:
            raise ConfigurationError("initial_fraction must be in (0, 1]")
        if self.allocation not in ALLOCATION_POLICIES:
            raise ConfigurationError(
                f"unknown allocation policy {self.allocation!r}; expected one of {ALLOCATION_POLICIES}"
            )
        if self.method not in ESTIMATION_METHODS:
            raise ConfigurationError(f"unknown estimation method {self.method!r}; expected one of {ESTIMATION_METHODS}")
        method_spec = METHOD_REGISTRY.get(self.method)
        if method_spec.requires_stratified and not self.stratified:
            raise ConfigurationError(f"the {self.method} method refines ICP pavings and requires stratified=True")
        if self.mass_split_boxes < 1:
            raise ConfigurationError("mass_split_boxes must be at least 1")
        if self.mass_split_adaptive < 0:
            raise ConfigurationError("mass_split_adaptive may not be negative")
        if method_spec.adaptive and self.allocation == "even":
            # Variance/mass-aware budget allocation is the point of adaptive
            # methods; the paper's equal split would waste the refined paving.
            object.__setattr__(self, "allocation", "neyman")
        if self.executor is not None and self.executor not in EXECUTOR_KINDS:
            raise ConfigurationError(f"unknown executor kind {self.executor!r}; expected one of {EXECUTOR_KINDS}")
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("workers must be positive when set")
        if self.workers is not None and self.executor is None:
            raise ConfigurationError("workers requires an executor backend to apply to")
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive when set")
        if self.store_backend is not None and self.store_backend not in STORE_BACKENDS:
            raise ConfigurationError(f"unknown store backend {self.store_backend!r}; expected one of {STORE_BACKENDS}")
        if self.store_readonly and not self.wants_store:
            raise ConfigurationError("store_readonly requires a store path or backend")
        if self.max_rounds == 1 and (
            self.target_std is not None or self.allocation == "neyman" or method_spec.adaptive
        ):
            # An adaptive feature without rounds cannot act; give it rounds.
            object.__setattr__(self, "max_rounds", DEFAULT_ADAPTIVE_ROUNDS)

    @property
    def is_adaptive(self) -> bool:
        """True when the iterative multi-round loop is active."""
        return self.max_rounds > 1

    @property
    def wants_store(self) -> bool:
        """True when the configuration names a persistent estimate store."""
        return self.store_path is not None or self.store_backend is not None

    def with_store(
        self,
        path: Optional[str],
        backend: Optional[str] = None,
        readonly: bool = False,
    ) -> "QCoralConfig":
        """Copy of this configuration backed by a persistent estimate store."""
        return replace(self, store_path=path, store_backend=backend, store_readonly=readonly)

    # ------------------------------------------------------------------ #
    # Presets matching the configurations named in the paper's Table 4
    # ------------------------------------------------------------------ #
    @staticmethod
    def plain(samples: int = 30_000, seed: Optional[int] = None) -> "QCoralConfig":
        """qCORAL{}: per-path hit-or-miss, no stratification, no caching."""
        return QCoralConfig(samples_per_query=samples, stratified=False, partition_and_cache=False, seed=seed)

    @staticmethod
    def strat(samples: int = 30_000, seed: Optional[int] = None) -> "QCoralConfig":
        """qCORAL{STRAT}: stratified sampling per path condition."""
        return QCoralConfig(samples_per_query=samples, stratified=True, partition_and_cache=False, seed=seed)

    @staticmethod
    def strat_partcache(samples: int = 30_000, seed: Optional[int] = None) -> "QCoralConfig":
        """qCORAL{STRAT, PARTCACHE}: the full approach evaluated in the paper."""
        return QCoralConfig(samples_per_query=samples, stratified=True, partition_and_cache=True, seed=seed)

    @staticmethod
    def adaptive(
        samples: int = 30_000,
        target_std: Optional[float] = None,
        seed: Optional[int] = None,
        max_rounds: int = DEFAULT_ADAPTIVE_ROUNDS,
        initial_fraction: float = 0.25,
    ) -> "QCoralConfig":
        """qCORAL{STRAT, PARTCACHE, ADAPT}: variance-driven iterative sampling."""
        return QCoralConfig(
            samples_per_query=samples,
            seed=seed,
            target_std=target_std,
            max_rounds=max_rounds,
            initial_fraction=initial_fraction,
            allocation="neyman",
        )

    @staticmethod
    def importance(
        samples: int = 30_000,
        seed: Optional[int] = None,
        target_std: Optional[float] = None,
        mass_split_boxes: int = DEFAULT_MASS_SPLIT_BOXES,
        mass_split_adaptive: int = 0,
    ) -> "QCoralConfig":
        """qCORAL{STRAT, PARTCACHE, IMP}: distribution-aware importance sampling."""
        return QCoralConfig(
            samples_per_query=samples,
            seed=seed,
            target_std=target_std,
            method="importance",
            mass_split_boxes=mass_split_boxes,
            mass_split_adaptive=mass_split_adaptive,
            allocation="neyman",
        )

    def feature_label(self) -> str:
        """Human-readable feature-set label, e.g. ``qCORAL{STRAT,PARTCACHE}``."""
        features = []
        if self.stratified:
            features.append("STRAT")
        if self.partition_and_cache:
            features.append("PARTCACHE")
        if self.is_adaptive:
            features.append("ADAPT")
        method_feature = METHOD_REGISTRY.get(self.method).feature
        if method_feature:
            features.append(method_feature)
        return "qCORAL{" + ",".join(features) + "}"

    def with_samples(self, samples: int) -> "QCoralConfig":
        """Copy of this configuration with a different sampling budget."""
        return replace(self, samples_per_query=samples)

    def with_seed(self, seed: Optional[int]) -> "QCoralConfig":
        """Copy of this configuration with a different random seed."""
        return replace(self, seed=seed)

    def with_executor(self, executor: Optional[str], workers: Optional[int] = None) -> "QCoralConfig":
        """Copy of this configuration running on the given executor backend."""
        return replace(self, executor=executor, workers=workers)


@dataclass(frozen=True)
class FactorReport:
    """Estimate of one independent factor of a path condition."""

    variables: FrozenSet[str]
    factor: ast.PathCondition
    estimate: Estimate
    from_cache: bool
    samples: int
    #: True when the factor resumed sampling from persistent-store counts.
    warm: bool = False


@dataclass(frozen=True)
class PathConditionReport:
    """Per-path-condition record of an analysis."""

    pc: ast.PathCondition
    estimate: Estimate
    factors: Tuple[FactorReport, ...]

    @property
    def factor_count(self) -> int:
        """Number of independent factors the path condition was split into."""
        return len(self.factors)


@dataclass(frozen=True)
class RoundReport:
    """Convergence record of one sampling round of the adaptive loop."""

    round_index: int
    allocated: int
    total_samples: int
    estimate: Estimate

    @property
    def mean(self) -> float:
        """Combined mean after this round."""
        return self.estimate.mean

    @property
    def std(self) -> float:
        """Combined standard deviation after this round."""
        return self.estimate.std


@dataclass(frozen=True)
class QCoralResult:
    """Result of quantifying a constraint set."""

    estimate: Estimate
    path_reports: Tuple[PathConditionReport, ...]
    cache_statistics: CacheStatistics
    total_samples: int
    analysis_time: float
    config: QCoralConfig
    round_reports: Tuple[RoundReport, ...] = ()
    #: Resolved backend label (``process×4``) the sampling actually ran on —
    #: taken from the analyzer's executor instance, so a borrowed pool is
    #: reported too; None on the in-thread single-stream path.
    executor: Optional[str] = None
    #: Label of the persistent estimate store consulted (``sqlite:est.db``),
    #: None when the run had no store.  Cross-run reuse shows up in
    #: :attr:`cache_statistics` (store hits, warm starts, merges).
    store: Optional[str] = None
    #: Metrics snapshot of the run, None when the analyzer had no enabled
    #: observability hub.  Deterministic counters (rounds, draws, hits) are
    #: bit-identical across backends and worker counts; timing histograms and
    #: per-worker-labelled series naturally vary.
    metrics: Optional[MetricsSnapshot] = None
    #: Activity counters of the persistent store *handle* (shared across every
    #: run using that handle), None when the run had no store.
    store_statistics: Optional[StoreStatistics] = None
    #: Run-health diagnostics emitted at finalize.  Records with
    #: ``timing=False`` are bit-identical for a fixed seed across executors
    #: and with observability on or off; wall-clock attribution records
    #: (``timing=True``) appear only when an enabled hub was attached.
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def mean(self) -> float:
        """Expected value of the probability estimator."""
        return self.estimate.mean

    @property
    def variance(self) -> float:
        """Variance upper bound of the probability estimator (Theorem 1)."""
        return self.estimate.variance

    @property
    def std(self) -> float:
        """Standard deviation (square root of the variance bound)."""
        return self.estimate.std

    @property
    def rounds(self) -> int:
        """Number of sampling rounds actually executed."""
        return len(self.round_reports)

    @property
    def met_target(self) -> bool:
        """True when a convergence target was set and reached."""
        target = self.config.target_std
        return target is not None and self.std <= target

    def _distinct_factors(self) -> Tuple[FactorReport, ...]:
        """Each distinct factor once (later occurrences are in-run shares)."""
        seen = set()
        distinct: List[FactorReport] = []
        for path_report in self.path_reports:
            for factor_report in path_report.factors:
                key = factor_report.factor.canonical()
                if key not in seen:
                    seen.add(key)
                    distinct.append(factor_report)
        return tuple(distinct)

    @property
    def reused_factor_count(self) -> int:
        """Distinct factors settled without drawing a sample this run.

        Counts warm store freezes, outright exact reuses, and ICP-exact
        resolutions alike — everything the incremental gate may claim as
        "paid for by a previous run or by the solver, not by this budget".
        """
        return sum(1 for factor in self._distinct_factors() if factor.samples == 0)

    @property
    def fresh_factor_count(self) -> int:
        """Distinct factors that drew at least one sample this run."""
        return sum(1 for factor in self._distinct_factors() if factor.samples > 0)

    def __repr__(self) -> str:
        suffix = f", exec={self.executor}" if self.executor is not None else ""
        return (
            f"QCoralResult(mean={self.mean:.6f}, std={self.std:.3e}, "
            f"paths={len(self.path_reports)}, rounds={self.rounds}, "
            f"time={self.analysis_time:.2f}s{suffix})"
        )


class _FactorState:
    """Resumable estimator of one unique factor during an analysis run."""

    __slots__ = (
        "key",
        "factor",
        "variables",
        "exact",
        "cached",
        "sampler",
        "mc_result",
        "predicate",
        "stream",
        "store_key",
        "prior_hits",
        "prior_samples",
        "prior_spawned",
        "prior_strata",
        "prior_fingerprint",
        "warm",
        "rng",
        "zero_share_streak",
        "max_zero_share_streak",
    )

    def __init__(self, key: str, factor: ast.PathCondition, variables: Tuple[str, ...]) -> None:
        self.key = key
        self.factor = factor
        self.variables = variables
        self.exact: Optional[Estimate] = None
        self.cached = False
        self.sampler: Optional[StratifiedSampler] = None
        self.mc_result: Optional[SamplingResult] = None
        self.predicate = None
        self.stream: Optional[SeedStream] = None
        # Persistent-store bookkeeping: the resolved key, how much of the
        # current accumulator state was *loaded* rather than drawn (so the
        # write-back publishes only this run's delta), and whether the factor
        # resumed from stored counts.
        self.store_key: Optional[FactorKey] = None
        self.prior_hits = 0
        self.prior_samples = 0
        self.prior_spawned = 0
        self.prior_strata: Optional[Tuple[Tuple[int, int], ...]] = None
        self.prior_fingerprint: Optional[str] = None
        self.warm = False
        # Serial-path override generator for warm-started factors (None on
        # the sharded path and for cold factors, which use the shared rng).
        self.rng: Optional[np.random.Generator] = None
        # Starvation counters for the run-health diagnostics: consecutive
        # rounds the cross-factor allocator granted this factor zero samples,
        # and the worst such streak over the run.
        self.zero_share_streak = 0
        self.max_zero_share_streak = 0

    @property
    def sampleable(self) -> bool:
        """True when this factor can absorb further sampling budget."""
        return self.exact is None

    @property
    def samples(self) -> int:
        """Samples backing this factor's estimate (warm-start prior included)."""
        if self.sampler is not None:
            return self.sampler.total_samples
        if self.mc_result is not None:
            return self.mc_result.samples
        return 0

    @property
    def fresh_samples(self) -> int:
        """Samples actually drawn during the current run."""
        return self.samples - self.prior_samples

    def estimate(self) -> Estimate:
        """Current estimate of the factor's probability."""
        if self.exact is not None:
            return self.exact
        if self.sampler is not None:
            return self.sampler.estimate()
        if self.mc_result is not None:
            return self.mc_result.estimate
        # No samples yet: the maximally uncertain Bernoulli prior.
        return Estimate(0.5, 0.25)


class QCoralAnalyzer:
    """Compositional statistical quantification of constraint solution spaces.

    When the configuration names an executor backend (or one is passed in),
    every sampling round is planned as seeded, worker-count-independent task
    chunks and dispatched through :mod:`repro.exec`; for a fixed seed the
    analysis is then bit-identical across the serial, thread, and process
    backends.  Without an executor the analyzer keeps the in-thread
    single-stream sampling path, untouched by the executor subsystem.
    """

    def __init__(
        self,
        profile: UsageProfile,
        config: QCoralConfig = QCoralConfig(),
        executor: Optional[Executor] = None,
        store: Optional[EstimateStore] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        self._profile = profile
        self._config = config
        self._solver = ICPSolver(config.icp)
        self._rng = np.random.default_rng(config.seed)
        self._seed_stream = SeedStream(config.seed)
        # Borrowed, like executors/stores: the hub outlives the analyzer and
        # accumulates across analyses.  ``None`` resolves to the disabled
        # singleton, whose operations are no-ops (the zero-overhead path).
        self._obs = ensure_observability(observability)
        if executor is not None:
            # A caller-supplied executor (e.g. a pool shared across
            # analyzers) is borrowed, never shut down here.
            self._executor: Optional[Executor] = executor
            self._owns_executor = False
        else:
            self._executor = resolve_executor(config.executor, config.workers)
            self._owns_executor = self._executor is not None
        if store is not None:
            # Same borrowing rule as executors: shared store handles (e.g.
            # one store across a pipeline's analyzers) are never closed here.
            self._store: Optional[EstimateStore] = store
            self._owns_store = False
        elif config.wants_store:
            self._store = open_store(config.store_path, config.store_backend, readonly=config.store_readonly)
            self._owns_store = True
        else:
            self._store = None
            self._owns_store = False
        if self._store is not None and config.partition_and_cache:
            if not config.stratified:
                method = mc_method()
            else:
                # Each registered estimation method supplies its own store
                # tag, keying its counts apart from every other method's (an
                # importance-sampled count over a mass-refined paving must
                # never pool with a hit-or-miss count, by construction).
                method = METHOD_REGISTRY.get(config.method).store_method(config)
            context = StoreContext(profile, method)
            self._cache = EstimateCache(self._store, context, observability=self._obs)
        else:
            # The store persists exactly what PARTCACHE caches; without the
            # feature there is no canonical factor to key, so the store — if
            # one was passed — stays idle.
            self._cache = EstimateCache(observability=self._obs)
        self._closed = False

    @property
    def profile(self) -> UsageProfile:
        """The usage profile this analyzer samples from."""
        return self._profile

    @property
    def config(self) -> QCoralConfig:
        """The analysis configuration."""
        return self._config

    @property
    def executor(self) -> Optional[Executor]:
        """The execution backend (None on the legacy in-thread path)."""
        return self._executor

    @property
    def store(self) -> Optional[EstimateStore]:
        """The persistent estimate store (None when the run has no store)."""
        return self._store

    @property
    def cache(self) -> EstimateCache:
        """The (possibly two-tier) factor estimate cache."""
        return self._cache

    @property
    def observability(self) -> Observability:
        """The observability hub (the shared disabled singleton when off)."""
        return self._obs

    def reset(self, seed: Optional[int] = None) -> None:
        """Clear the factor cache and re-seed the random streams."""
        self._cache.clear()
        effective = self._config.seed if seed is None else seed
        self._rng = np.random.default_rng(effective)
        self._seed_stream = SeedStream(effective)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Release executor/store resources this analyzer created.

        Idempotent: the second and later calls are no-ops, so nested
        context-manager entry (or an explicit ``close`` followed by ``with``)
        never double-closes a resource.  Borrowed executors and store handles
        stay open for their owner in every case.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_executor and self._executor is not None:
            self._executor.close()
        if self._owns_store and self._store is not None:
            self._store.close()

    def __enter__(self) -> "QCoralAnalyzer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Algorithm 1: main loop over the disjoint path conditions
    # ------------------------------------------------------------------ #
    def analyze(self, constraint_set: ast.ConstraintSet) -> QCoralResult:
        """Quantify the probability of satisfying any PC of ``constraint_set``.

        Blocking form of :meth:`analyze_stream` — it drains the same round
        generator, so the two are bit-identical for a fixed seed.
        """
        return _drain(self.analyze_stream(constraint_set))

    def analyze_stream(self, constraint_set: ast.ConstraintSet):
        """Incremental form of :meth:`analyze`: a generator over the rounds.

        Yields the :class:`RoundReport` of every sampling round as it
        completes, then returns the final :class:`QCoralResult` as the
        generator's return value (``StopIteration.value``, or ``yield from``).
        After any yield the consumer may ``send(True)`` to stop sampling
        early; the analysis then finalises with the rounds drawn so far —
        exactly as if the convergence target had been met there.  Cache
        inserts and persistent-store write-back happen in the finalisation,
        so early-stopped runs still publish what they drew — including runs
        whose stream is abandoned outright (closed or garbage-collected
        without reading a final result): those flush on ``GeneratorExit``.
        """
        started = time.perf_counter()
        kernel_before = kernel_cache_stats() if self._obs.enabled else None
        if self._obs.enabled:
            # Stamp the run identity on the hub so flushed JSONL traces carry
            # a self-describing header (no RNG, no clocks — zero perturbation).
            self._obs.set_run_context(
                seed=self._config.seed,
                method=self._config.method,
                config_fingerprint=config_fingerprint(self._config),
            )
        self._profile.check_covers(constraint_set.free_variables())

        path_conditions = [
            simplify_path_condition(pc) if self._config.simplify else pc
            for pc in constraint_set.path_conditions
        ]

        partition = self._partition_for(path_conditions)
        plan, states = self._build_plan(path_conditions, partition)

        try:
            rounds = yield from self._round_loop(plan, states)
        except GeneratorExit:
            # The consumer abandoned the stream without asking for a result;
            # still flush caches/stores with what was drawn (best-effort —
            # whoever closed us cannot handle errors raised from here).
            try:
                self._finalize(plan, states, (), started, kernel_before)
            except Exception:
                pass
            raise
        return self._finalize(plan, states, rounds, started, kernel_before)

    #: Kernel-cache counter fields mapped to the metric names they feed; the
    #: delta between the snapshots taken at analysis start and end lands in
    #: the run's metrics.  The counters are process-global, so on a process
    #: executor they cover the driver only (workers compile independently).
    _KERNEL_METRICS = (
        ("lookups", "kernel_lookups_total"),
        ("memory_hits", "kernel_memory_hits_total"),
        ("disk_hits", "kernel_disk_hits_total"),
        ("codegens", "kernel_codegens_total"),
        ("numba_fallbacks", "kernel_numba_fallbacks_total"),
        ("evictions", "kernel_evictions_total"),
        ("disk_regens", "kernel_disk_regens_total"),
        ("compile_seconds", "kernel_compile_seconds_total"),
    )

    def _record_kernel_delta(self, before: Optional[KernelCacheStats]) -> None:
        if before is None or not self._obs.enabled:
            return
        after = kernel_cache_stats()
        for field, metric in self._KERNEL_METRICS:
            delta = getattr(after, field) - getattr(before, field)
            if delta:
                self._obs.count(metric, delta)

    def _finalize(
        self,
        plan: Sequence[Tuple[ast.PathCondition, List[Tuple["_FactorState", bool]]]],
        states: Sequence["_FactorState"],
        round_reports: Tuple[RoundReport, ...],
        started: float,
        kernel_before: Optional[KernelCacheStats] = None,
    ) -> QCoralResult:
        """Assemble the result and flush caches/stores after the round loop."""
        reports = []
        total_samples = 0
        for pc, occurrences in plan:
            report = self._report_for(pc, occurrences)
            reports.append(report)
            total_samples += sum(factor.samples for factor in report.factors)

        if self._config.partition_and_cache:
            for state in states:
                if not state.cached:
                    self._cache.put(state.factor, state.estimate())
            self._publish_states(states)

        estimate = compose_disjoint_path_conditions(report.estimate for report in reports)
        elapsed = time.perf_counter() - started
        self._record_kernel_delta(kernel_before)
        diagnostics = self._diagnose(states, round_reports)
        return QCoralResult(
            estimate=estimate,
            path_reports=tuple(reports),
            cache_statistics=self._cache.statistics,
            total_samples=total_samples,
            analysis_time=elapsed,
            config=self._config,
            round_reports=round_reports,
            executor=self._executor.describe() if self._executor is not None else None,
            store=self._store.describe() if self._store is not None else None,
            metrics=self._obs.snapshot() if self._obs.enabled else None,
            store_statistics=self._store.statistics if self._store is not None else None,
            diagnostics=diagnostics,
        )

    def _diagnose(
        self,
        states: Sequence["_FactorState"],
        round_reports: Tuple[RoundReport, ...],
    ) -> Tuple[Diagnostic, ...]:
        """The run-health diagnostics pass over the finished run.

        Runs unconditionally — the non-timing checks are pure functions of
        deterministic state (round reports, sample counts, streak counters)
        and cost microseconds, so disabled-observability runs get the same
        verdicts.  The metrics snapshot (and with it the wall-clock
        attribution records) joins only when an enabled hub is attached.
        """
        healths: List[FactorHealth] = []
        # Indices match the round loop's `active` list (state.exact is never
        # set mid-loop), so `factor` evidence lines up with the run's
        # qcoral_factor_* metric labels.
        index = 0
        for state in states:
            if not state.sampleable:
                continue
            sampler = state.sampler
            estimate = state.estimate()
            strata: Tuple[StratumHealth, ...] = ()
            ess: Optional[float] = None
            method = "montecarlo"
            if sampler is not None:
                method = sampler.method_label
                ess = sampler.effective_sample_size()
                strata = tuple(
                    StratumHealth(
                        weight=stratum.weight,
                        samples=stratum.draw_count,
                        hits=stratum.hit_count,
                        sampleable=stratum.sampleable,
                        zero_allocation_streak=stratum.max_zero_allocation_streak,
                    )
                    for stratum in sampler.strata
                )
            healths.append(
                FactorHealth(
                    index=index,
                    method=method,
                    samples=state.samples,
                    mean=estimate.mean,
                    std=estimate.std,
                    zero_share_streak=state.max_zero_share_streak,
                    discarded_samples=getattr(sampler, "discarded_samples", 0),
                    effective_sample_size=ess,
                    strata=strata,
                )
            )
            index += 1
        return diagnose_run(
            round_reports,
            tuple(healths),
            target_std=self._config.target_std,
            metrics=self._obs.snapshot() if self._obs.enabled else None,
        )

    def analyze_path_condition(self, pc: ast.PathCondition) -> PathConditionReport:
        """Quantify a single path condition in isolation."""
        simplified = simplify_path_condition(pc) if self._config.simplify else pc
        partition = self._partition_for([simplified])
        plan, states = self._build_plan([simplified], partition)
        self._run_rounds(plan, states)
        (entry,) = plan
        report = self._report_for(*entry)
        if self._config.partition_and_cache:
            for state in states:
                if not state.cached:
                    self._cache.put(state.factor, state.estimate())
            self._publish_states(states)
        return report

    # ------------------------------------------------------------------ #
    # Algorithm 2: planning — split PCs into unique resumable factors
    # ------------------------------------------------------------------ #
    def _partition_for(self, path_conditions: Sequence[ast.PathCondition]) -> DependencyPartition:
        if self._config.partition_and_cache:
            return compute_dependency_partition(path_conditions)
        # Without PARTCACHE every path condition is analysed as one factor over
        # all of its variables, so the partition is the trivial one-block
        # partition of each PC (built lazily in _split_factors).
        return DependencyPartition(())

    def _split_factors(
        self, pc: ast.PathCondition, partition: DependencyPartition
    ) -> Sequence[Tuple[FrozenSet[str], ast.PathCondition]]:
        if self._config.partition_and_cache and len(partition) > 0:
            return group_constraints_by_block(pc, tuple(partition))
        return [(frozenset(pc.free_variables()), pc)]

    def _build_plan(
        self, path_conditions: Sequence[ast.PathCondition], partition: DependencyPartition
    ) -> Tuple[List[Tuple[ast.PathCondition, List[Tuple[_FactorState, bool]]]], List[_FactorState]]:
        """Deduplicate factors into resumable states; keep per-PC occurrence lists.

        Each plan entry pairs a path condition with its factors; an occurrence
        is ``(state, first)`` where ``first`` marks the occurrence that owns
        the state's samples (later occurrences are in-run cache shares).
        """
        states: Dict[str, _FactorState] = {}
        plan: List[Tuple[ast.PathCondition, List[Tuple[_FactorState, bool]]]] = []
        sharing = self._config.partition_and_cache
        for index, pc in enumerate(path_conditions):
            occurrences: List[Tuple[_FactorState, bool]] = []
            if pc.constraints:
                for variables, factor in self._split_factors(pc, partition):
                    ordered = tuple(sorted(variables & factor.free_variables())) or tuple(
                        sorted(factor.free_variables())
                    )
                    # Without caching, factors are never shared between PCs:
                    # a per-PC key keeps every occurrence independent.
                    key = EstimateCache.key_for(factor) if sharing else f"pc{index}:{factor.canonical()}"
                    state = states.get(key)
                    if state is None:
                        state = self._new_state(key, factor, ordered)
                        states[key] = state
                        occurrences.append((state, True))
                    else:
                        self._cache.record_shared_hit()
                        occurrences.append((state, False))
            plan.append((pc, occurrences))
        return plan, list(states.values())

    def _new_state(self, key: str, factor: ast.PathCondition, variables: Tuple[str, ...]) -> _FactorState:
        state = _FactorState(key, factor, variables)
        entry: Optional[StoreEntry] = None
        if self._config.partition_and_cache:
            cached = self._cache.get(factor)
            if cached is not None:
                state.exact = cached
                state.cached = True
                return state
            if self._cache.has_store and variables:
                state.store_key = self._cache.store_key(factor)
                entry = self._cache.fetch_entry(state.store_key)
                if entry is not None and entry.is_exact:
                    # A previous run resolved the factor without sampling
                    # (ICP-exact); reuse skips even the paving work.
                    state.exact = Estimate.exact(entry.exact_mean)
                    state.cached = True
                    self._cache.put(factor, state.exact)
                    self._obs.count("qcoral_store_outright_reuse_total")
                    return state
        parallel = self._executor is not None
        if parallel:
            # Each factor owns one child stream, spawned in factor-creation
            # order, so its chunk seeds are independent of every other
            # factor's — and of the backend executing them.
            state.stream = self._seed_stream.spawn(1)[0]
        if self._config.stratified:
            # The registered method spec owns sampler construction, so new
            # estimation methods plug in without edits here.  The hub is only
            # forwarded when enabled, so factories registered before the
            # observability layer (no ``observability`` kwarg) keep working
            # as long as no hub is attached.
            factory_kwargs = dict(
                variables=variables,
                solver=self._solver,
                seed_stream=state.stream,
                chunk_size=self._config.chunk_size,
                config=self._config,
            )
            if self._obs.enabled:
                factory_kwargs["observability"] = self._obs
            sampler: StratifiedSampler = METHOD_REGISTRY.get(self._config.method).make_sampler(
                factor,
                self._profile,
                None if parallel else self._rng,
                **factory_kwargs,
            )
            if sampler.is_exact:
                state.exact = sampler.estimate()
            else:
                state.sampler = sampler
                if entry is not None:
                    self._warm_start_stratified(state, entry)
        else:
            if not variables:
                from repro.lang.evaluator import holds_path_condition

                state.exact = Estimate.exact(1.0 if holds_path_condition(factor, {}) else 0.0)
            else:
                if not parallel:
                    # On the executor path workers compile (and cache) their
                    # own predicate; compiling here would be wasted work.
                    state.predicate = get_kernel(factor)
                if entry is not None:
                    self._warm_start_mc(state, entry)
        if state.warm and self._need(state) == 0:
            # The stored counts already cover this run's budget: the factor
            # is a finished cross-run reuse, frozen before any sampling.
            state.exact = state.estimate()
            state.cached = True
            self._cache.put(factor, state.exact)
            self._obs.count("qcoral_store_warm_freeze_total")
        return state

    # ------------------------------------------------------------------ #
    # Persistent-store integration: warm starts and write-back
    # ------------------------------------------------------------------ #
    def _need(self, state: _FactorState) -> int:
        """Samples still owed to this factor's nominal per-factor budget."""
        return max(0, self._config.samples_per_query - state.samples)

    def _fast_forward(self, state: _FactorState, spawned: int) -> None:
        """Skip the seed-stream children a stored prior already consumed.

        With the same master seed, a warm-started factor then draws exactly
        the chunks a single long run would have drawn after the prior's —
        which makes resumed sampling bit-identical to one long run whenever
        the prior budget ended on a chunk boundary.  Serial-path priors
        (``spawned == 0``) and foreign-seed priors fast-forward harmlessly.

        On the serial path (no per-factor stream) the danger runs the other
        way: re-using the master seed that produced the prior would *replay*
        the exact sample stream already pooled in the store, and pooling
        duplicates is not pooling.  Warm-started factors there switch to a
        continuation-indexed generator — seeded by the master seed, the
        factor's store key, and the prior's sample count — which is fresh
        for every continuation depth yet fully deterministic.
        """
        if state.stream is not None:
            if spawned > 0:
                state.stream.spawn(spawned)
            state.prior_spawned = state.stream.children_spawned
            return
        digest32 = int(state.store_key.digest[:8], 16)
        prior_low, prior_high = state.prior_samples % 2**32, state.prior_samples // 2**32
        sequence = np.random.SeedSequence(self._config.seed, spawn_key=(digest32, prior_low, prior_high))
        state.rng = np.random.default_rng(sequence)
        if state.sampler is not None:
            state.sampler.reseed(state.rng)

    def _warm_start_mc(self, state: _FactorState, entry: StoreEntry) -> None:
        if entry.kind != "mc" or entry.samples <= 0:
            return
        state.mc_result = SamplingResult(Estimate.from_hits(entry.hits, entry.samples), entry.hits, entry.samples)
        state.prior_hits = entry.hits
        state.prior_samples = entry.samples
        state.warm = True
        self._fast_forward(state, entry.spawned)
        self._cache.record_warm_start()

    def _warm_start_stratified(self, state: _FactorState, entry: StoreEntry) -> None:
        sampler = state.sampler
        if entry.kind != "stratified" or entry.samples <= 0 or sampler is None:
            return
        fingerprint = sampler.paving_fingerprint(state.store_key.variables)
        if entry.paving != fingerprint or len(entry.strata) != len(sampler.strata):
            # The stored counts refer to a different paving (the ICP solver
            # has a wall-clock budget, so pavings can drift); reusing them
            # would misattribute counts to boxes.  Treat as a miss.
            return
        sampler.preload_counts(entry.strata)
        state.prior_samples = entry.samples
        state.prior_strata = entry.strata
        state.prior_fingerprint = fingerprint
        state.warm = True
        self._fast_forward(state, entry.spawned)
        self._cache.record_warm_start()

    def _publish_states(self, states: Sequence[_FactorState]) -> None:
        """Fold this run's freshly drawn counts back into the store.

        Only deltas are published — the samples this run drew itself, never
        counts it loaded — so sequential continuations and concurrent runs
        pool without double counting.
        """
        if not self._cache.has_store:
            return
        for state in states:
            key = state.store_key
            if key is None or state.cached:
                continue
            delta = self._delta_entry(state)
            if delta is not None:
                self._cache.publish(key, delta, merged_into_prior=state.warm)

    def _delta_entry(self, state: _FactorState) -> Optional[StoreEntry]:
        spawned = 0
        if state.stream is not None:
            spawned = state.stream.children_spawned - state.prior_spawned
        if state.sampler is not None:
            if state.fresh_samples <= 0:
                return None
            counts = state.sampler.counts()
            fingerprint = state.sampler.paving_fingerprint(state.store_key.variables)
            if state.prior_strata is not None and fingerprint != state.prior_fingerprint:
                # Adaptive mass splits changed the paving after the stored
                # prior was preloaded (the fingerprint renders the boxes, so
                # this also catches in-place replacements that keep the
                # stratum count unchanged); the loaded counts can no longer
                # be subtracted per stratum, so this run publishes nothing
                # rather than corrupt the pooled entry.
                return None
            prior = state.prior_strata or tuple((0, 0) for _ in counts)
            delta = tuple(
                (hits - prior_hits, samples - prior_samples)
                for (hits, samples), (prior_hits, prior_samples) in zip(counts, prior)
            )
            if any(hits < 0 or samples < 0 or hits > samples for hits, samples in delta):
                # Belt to the fingerprint guard above: a delta that is not a
                # valid Bernoulli count pool must never reach the store.
                return None
            return StoreEntry.from_strata(delta, paving=fingerprint, spawned=spawned)
        if state.mc_result is not None:
            fresh = state.mc_result.samples - state.prior_samples
            if fresh <= 0:
                return None
            return StoreEntry.from_mc(state.mc_result.hits - state.prior_hits, fresh, spawned=spawned)
        if state.exact is not None and state.variables and not state.warm:
            # ICP resolved the factor without sampling this run; store the
            # exact probability so re-runs skip the paving too.
            return StoreEntry.from_exact(state.exact.mean)
        return None

    # ------------------------------------------------------------------ #
    # The iterative sampling loop
    # ------------------------------------------------------------------ #
    def _run_rounds(
        self,
        plan: Sequence[Tuple[ast.PathCondition, List[Tuple[_FactorState, bool]]]],
        states: Sequence[_FactorState],
    ) -> Tuple[RoundReport, ...]:
        """Drain :meth:`_round_loop` to completion (the blocking path)."""
        return _drain(self._round_loop(plan, states))

    def _round_loop(
        self,
        plan: Sequence[Tuple[ast.PathCondition, List[Tuple[_FactorState, bool]]]],
        states: Sequence[_FactorState],
    ):
        """Generator over the adaptive sampling rounds, yielding each report.

        ``send(True)`` after a yield stops the loop before the next round
        (the streaming early-stop); plain iteration runs to the budget or the
        convergence target, exactly as before the generator refactor.  The
        generator's return value is the tuple of all reports yielded.
        """
        active = [state for state in states if state.sampleable]
        if not active:
            return ()

        config = self._config
        # Warm-started factors only owe the store what their prior is short
        # of, so the pooled budget is the sum of per-factor residual needs
        # (identical to samples_per_query × factors on a cold run).
        total_budget = sum(self._need(state) for state in active)
        warm_run = any(state.prior_samples for state in active)
        max_rounds = config.max_rounds
        rounds: List[RoundReport] = []
        spent = 0

        obs = self._obs
        for round_index in range(1, max_rounds + 1):
            remaining = total_budget - spent
            if remaining <= 0:
                break
            if round_index == max_rounds:
                chunk = remaining
            elif round_index == 1:
                # Pilot: large enough for a σ estimate everywhere, small
                # enough to leave most of the budget for re-allocation.
                chunk = min(remaining, max(len(active), int(config.initial_fraction * total_budget)))
            else:
                chunk = max(1, remaining // (max_rounds - round_index + 1))

            round_started = time.perf_counter() if obs.enabled else 0.0
            with obs.span("qcoral.round", round=round_index, chunk=chunk):
                if round_index == 1 or self._config.allocation == "even":
                    # Pilot rounds — and every round under the paper's "even"
                    # policy — split the chunk equally across the factors;
                    # variance-driven re-allocation is the "neyman" policy.  On a
                    # warm run the split follows each factor's residual need
                    # instead, so factors whose stored prior already covers the
                    # budget are not re-sampled (on a cold run all needs are
                    # equal and the two rules coincide).
                    if warm_run:
                        priorities = [float(self._need(state)) for state in active]
                    else:
                        priorities = [1.0] * len(active)
                else:
                    priorities = self._factor_priorities(plan, active)
                shares = allocate_budget(priorities, chunk)
                for state, share in zip(active, shares):
                    if share > 0:
                        state.zero_share_streak = 0
                    else:
                        state.zero_share_streak += 1
                        if state.zero_share_streak > state.max_zero_share_streak:
                            state.max_zero_share_streak = state.zero_share_streak

                if self._executor is not None:
                    used = self._run_parallel_round(active, shares)
                else:
                    used = 0
                    for state, share in zip(active, shares):
                        used += self._extend_factor(state, share)
                spent += used

            combined = self._combined_estimate(plan)
            if obs.enabled:
                obs.count("qcoral_rounds_total")
                obs.count("qcoral_samples_total", used)
                obs.observe("qcoral_round_seconds", time.perf_counter() - round_started)
                obs.gauge("qcoral_estimate_std", combined.std)
                for factor_index, (state, share) in enumerate(zip(active, shares)):
                    if share:
                        obs.count("qcoral_factor_allocated_total", share, factor=factor_index)
                    obs.gauge("qcoral_factor_sigma", state.estimate().std, factor=factor_index)
            report = RoundReport(round_index, used, spent, combined)
            rounds.append(report)
            stop = yield report
            if stop:
                break
            if config.target_std is not None and combined.std <= config.target_std:
                break
            if used == 0:
                break

        return tuple(rounds)

    def _run_parallel_round(self, active: Sequence[_FactorState], shares: Sequence[int]) -> int:
        """Plan one round across *all* factors and run it as one task batch.

        Batching the whole round keeps every worker busy even when a single
        factor's share is small: the executor sees the union of all factors'
        chunks, not one factor at a time.  Plans (and their spawned seeds)
        depend only on allocation decisions, which are themselves functions
        of previously merged counts — so the round is deterministic for a
        fixed master seed on every backend and worker count.
        """
        planned: List[Tuple[_FactorState, Optional[int], SamplingTask]] = []
        for state, share in zip(active, shares):
            if share <= 0 or not state.sampleable:
                continue
            if state.sampler is not None:
                for stratum_index, task in state.sampler.plan_extension(share, allocation=self._config.allocation):
                    planned.append((state, stratum_index, task))
            else:
                planned.extend(self._plan_mc_factor(state, share))

        outcomes = run_sampling_tasks(self._executor, [task for _, _, task in planned], observability=self._obs)
        used = 0
        for (state, stratum_index, task), (hits, samples) in zip(planned, outcomes):
            if state.sampler is not None:
                state.sampler.absorb_chunk(stratum_index, hits, samples)
            else:
                addition = SamplingResult(Estimate.from_hits(hits, samples), hits, samples)
                state.mc_result = (addition if state.mc_result is None else state.mc_result.merge(addition))
                if self._obs.enabled:
                    self._obs.count("sampler_draws_total", samples, method="montecarlo")
                    self._obs.count("sampler_hits_total", hits, method="montecarlo")
            used += samples
        return used

    def _plan_mc_factor(
        self, state: _FactorState, share: int
    ) -> List[Tuple[_FactorState, Optional[int], SamplingTask]]:
        """Shard one plain hit-or-miss factor's share into seeded chunks."""
        from repro.exec.scheduler import DEFAULT_CHUNK_SIZE

        chunk_size = self._config.chunk_size if self._config.chunk_size is not None else DEFAULT_CHUNK_SIZE
        return [
            (
                state,
                None,
                SamplingTask(
                    pc=state.factor,
                    profile=self._profile,
                    samples=chunk,
                    seed=state.stream.spawn_sequence(),
                    variables=state.variables,
                ),
            )
            for chunk in shard_budget(share, chunk_size)
        ]

    def _extend_factor(self, state: _FactorState, budget: int) -> int:
        if budget <= 0 or not state.sampleable:
            return 0
        if state.sampler is not None:
            return state.sampler.extend(budget, allocation=self._config.allocation)
        prior_hits = state.mc_result.hits if state.mc_result is not None else 0
        result = hit_or_miss(
            state.factor,
            self._profile,
            budget,
            state.rng if state.rng is not None else self._rng,
            variables=state.variables,
            predicate=state.predicate,
            prior=state.mc_result,
        )
        drawn = result.samples - (state.mc_result.samples if state.mc_result is not None else 0)
        state.mc_result = result
        if drawn and self._obs.enabled:
            self._obs.count("sampler_draws_total", drawn, method="montecarlo")
            self._obs.count("sampler_hits_total", result.hits - prior_hits, method="montecarlo")
        return drawn

    def _factor_priorities(
        self,
        plan: Sequence[Tuple[ast.PathCondition, List[Tuple[_FactorState, bool]]]],
        active: Sequence[_FactorState],
    ) -> List[float]:
        """Generalised Neyman priorities for the active factors.

        The combined variance is ``Σ_pc Var(pc)`` with ``Var(pc)`` given by
        the product rule, so factor ``f`` contributes roughly
        ``c_f · Var_f`` where ``c_f = Σ_{pc ∋ f} (Π_{g ≠ f} mean_g)²``.
        Since ``Var_f`` shrinks like ``S_f² / n_f``, the variance-minimising
        split of the next chunk is ``n_f ∝ √c_f · S_f`` — the factor-level
        analogue of per-stratum Neyman allocation.
        """
        coefficients = {id(state): 0.0 for state in active}
        for _, occurrences in plan:
            unique = []
            seen = set()
            for state, _ in occurrences:
                if id(state) not in seen:
                    seen.add(id(state))
                    unique.append(state)
            means = [state.estimate().mean for state in unique]
            for position, state in enumerate(unique):
                if id(state) not in coefficients:
                    continue
                product = 1.0
                for other, mean in enumerate(means):
                    if other != position:
                        product *= mean
                coefficients[id(state)] += product * product

        priorities = []
        for state in active:
            samples = state.samples
            estimate = state.estimate()
            if samples == 0:
                per_sample_std = 0.5
            else:
                # Floor the observed σ with its Laplace-smoothed counterpart:
                # a factor whose samples so far all hit (or all missed) has
                # an observed σ̂ of 0, and a hard zero would starve it of
                # budget forever while spuriously reporting convergence.
                equivalent_hits = min(samples, max(0, round(estimate.mean * samples)))
                per_sample_std = max(
                    estimate.std * math.sqrt(samples),
                    laplace_sigma_floor(equivalent_hits, samples),
                )
            priorities.append(math.sqrt(coefficients[id(state)]) * per_sample_std)
        return priorities

    def _combined_estimate(self, plan: Sequence[Tuple[ast.PathCondition, List[Tuple[_FactorState, bool]]]]) -> Estimate:
        pc_estimates = []
        for pc, occurrences in plan:
            if not pc.constraints:
                pc_estimates.append(Estimate.one())
            else:
                pc_estimates.append(compose_independent_factors(state.estimate() for state, _ in occurrences))
        return compose_disjoint_path_conditions(pc_estimates)

    # ------------------------------------------------------------------ #
    # Report assembly
    # ------------------------------------------------------------------ #
    def _report_for(
        self, pc: ast.PathCondition, occurrences: Sequence[Tuple[_FactorState, bool]]
    ) -> PathConditionReport:
        if not pc.constraints:
            # A trivially true path condition covers the whole domain.
            return PathConditionReport(pc, Estimate.one(), ())
        factor_reports = []
        for state, first in occurrences:
            owns_samples = first and not state.cached
            factor_reports.append(
                FactorReport(
                    variables=frozenset(state.variables),
                    factor=state.factor,
                    estimate=state.estimate(),
                    from_cache=state.cached or not first,
                    samples=state.fresh_samples if owns_samples else 0,
                    warm=state.warm,
                )
            )
        estimate = compose_independent_factors(report.estimate for report in factor_reports)
        return PathConditionReport(pc, estimate, tuple(factor_reports))


def _drain(stream):
    """Run a generator to completion and return its ``StopIteration`` value."""
    while True:
        try:
            next(stream)
        except StopIteration as finished:
            return finished.value


def quantify(
    constraint_set: ast.ConstraintSet,
    profile: UsageProfile,
    config: QCoralConfig = QCoralConfig(),
) -> QCoralResult:
    """One-shot convenience wrapper around :class:`QCoralAnalyzer`.

    Deprecated entry point: prefer ``Session().quantify(...).run()`` from
    :mod:`repro.api`.  Any executor pool the configuration requests is shut
    down on return.
    """
    with QCoralAnalyzer(profile, config) as analyzer:
        return analyzer.analyze(constraint_set)
