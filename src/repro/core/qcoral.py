"""The qCORAL analyzer: Algorithms 1 and 2 of the paper.

:class:`QCoralAnalyzer` quantifies the probability that an input drawn from a
usage profile satisfies *any* path condition of a constraint set.  The two
optional features evaluated in the paper (Table 4) are exposed as configuration
flags:

* ``stratified`` (STRAT) — estimate each factor with ICP-driven stratified
  sampling instead of whole-domain hit-or-miss Monte Carlo;
* ``partition_and_cache`` (PARTCACHE) — split each path condition into
  independent factors along the dependency partition of the input variables,
  estimate factors separately, compose with the product rule, and cache factor
  estimates for reuse across path conditions.

Typical use::

    profile = UsageProfile.uniform({"x": (-1, 1), "y": (-1, 1)})
    result = QCoralAnalyzer(profile).analyze(parse_constraint_set("x <= 0 - y && y <= x"))
    print(result.mean, result.std)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import CacheStatistics, EstimateCache
from repro.core.composition import (
    compose_disjoint_path_conditions,
    compose_independent_factors,
)
from repro.core.dependency import DependencyPartition, compute_dependency_partition
from repro.core.estimate import Estimate
from repro.core.montecarlo import hit_or_miss
from repro.core.profiles import UsageProfile
from repro.core.stratified import stratified_sampling
from repro.errors import AnalysisError, ConfigurationError
from repro.icp.config import ICPConfig, PAPER_CONFIG
from repro.icp.solver import ICPSolver
from repro.lang import ast
from repro.lang.analysis import group_constraints_by_block
from repro.lang.simplify import simplify_path_condition


@dataclass(frozen=True)
class QCoralConfig:
    """Configuration of a qCORAL analysis run.

    Attributes:
        samples_per_query: Sampling budget per estimated factor (split across
            ICP strata when stratification is enabled).  This mirrors the
            "maximum number of samples" knob of the paper's experiments.
        stratified: Enable the STRAT feature (ICP + stratified sampling).
        partition_and_cache: Enable the PARTCACHE feature (independent-factor
            decomposition with caching).
        seed: Seed for the NumPy random generator; None draws fresh entropy.
        icp: Configuration of the ICP paving solver.
        simplify: Simplify path conditions (constant folding, duplicate
            conjunct removal) before analysis.
    """

    samples_per_query: int = 30_000
    stratified: bool = True
    partition_and_cache: bool = True
    seed: Optional[int] = None
    icp: ICPConfig = PAPER_CONFIG
    simplify: bool = True

    def __post_init__(self) -> None:
        if self.samples_per_query <= 0:
            raise ConfigurationError("samples_per_query must be positive")

    # ------------------------------------------------------------------ #
    # Presets matching the configurations named in the paper's Table 4
    # ------------------------------------------------------------------ #
    @staticmethod
    def plain(samples: int = 30_000, seed: Optional[int] = None) -> "QCoralConfig":
        """qCORAL{}: per-path hit-or-miss, no stratification, no caching."""
        return QCoralConfig(samples_per_query=samples, stratified=False, partition_and_cache=False, seed=seed)

    @staticmethod
    def strat(samples: int = 30_000, seed: Optional[int] = None) -> "QCoralConfig":
        """qCORAL{STRAT}: stratified sampling per path condition."""
        return QCoralConfig(samples_per_query=samples, stratified=True, partition_and_cache=False, seed=seed)

    @staticmethod
    def strat_partcache(samples: int = 30_000, seed: Optional[int] = None) -> "QCoralConfig":
        """qCORAL{STRAT, PARTCACHE}: the full approach evaluated in the paper."""
        return QCoralConfig(samples_per_query=samples, stratified=True, partition_and_cache=True, seed=seed)

    def feature_label(self) -> str:
        """Human-readable feature-set label, e.g. ``qCORAL{STRAT,PARTCACHE}``."""
        features = []
        if self.stratified:
            features.append("STRAT")
        if self.partition_and_cache:
            features.append("PARTCACHE")
        return "qCORAL{" + ",".join(features) + "}"

    def with_samples(self, samples: int) -> "QCoralConfig":
        """Copy of this configuration with a different sampling budget."""
        return replace(self, samples_per_query=samples)

    def with_seed(self, seed: Optional[int]) -> "QCoralConfig":
        """Copy of this configuration with a different random seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class FactorReport:
    """Estimate of one independent factor of a path condition."""

    variables: FrozenSet[str]
    factor: ast.PathCondition
    estimate: Estimate
    from_cache: bool
    samples: int


@dataclass(frozen=True)
class PathConditionReport:
    """Per-path-condition record of an analysis."""

    pc: ast.PathCondition
    estimate: Estimate
    factors: Tuple[FactorReport, ...]

    @property
    def factor_count(self) -> int:
        """Number of independent factors the path condition was split into."""
        return len(self.factors)


@dataclass(frozen=True)
class QCoralResult:
    """Result of quantifying a constraint set."""

    estimate: Estimate
    path_reports: Tuple[PathConditionReport, ...]
    cache_statistics: CacheStatistics
    total_samples: int
    analysis_time: float
    config: QCoralConfig

    @property
    def mean(self) -> float:
        """Expected value of the probability estimator."""
        return self.estimate.mean

    @property
    def variance(self) -> float:
        """Variance upper bound of the probability estimator (Theorem 1)."""
        return self.estimate.variance

    @property
    def std(self) -> float:
        """Standard deviation (square root of the variance bound)."""
        return self.estimate.std

    def __repr__(self) -> str:
        return (
            f"QCoralResult(mean={self.mean:.6f}, std={self.std:.3e}, "
            f"paths={len(self.path_reports)}, time={self.analysis_time:.2f}s)"
        )


class QCoralAnalyzer:
    """Compositional statistical quantification of constraint solution spaces."""

    def __init__(self, profile: UsageProfile, config: QCoralConfig = QCoralConfig()) -> None:
        self._profile = profile
        self._config = config
        self._cache = EstimateCache()
        self._solver = ICPSolver(config.icp)
        self._rng = np.random.default_rng(config.seed)

    @property
    def profile(self) -> UsageProfile:
        """The usage profile this analyzer samples from."""
        return self._profile

    @property
    def config(self) -> QCoralConfig:
        """The analysis configuration."""
        return self._config

    def reset(self, seed: Optional[int] = None) -> None:
        """Clear the factor cache and re-seed the random generator."""
        self._cache.clear()
        self._rng = np.random.default_rng(self._config.seed if seed is None else seed)

    # ------------------------------------------------------------------ #
    # Algorithm 1: main loop over the disjoint path conditions
    # ------------------------------------------------------------------ #
    def analyze(self, constraint_set: ast.ConstraintSet) -> QCoralResult:
        """Quantify the probability of satisfying any PC of ``constraint_set``."""
        started = time.perf_counter()
        self._profile.check_covers(constraint_set.free_variables())

        path_conditions = [
            simplify_path_condition(pc) if self._config.simplify else pc
            for pc in constraint_set.path_conditions
        ]

        partition = self._partition_for(path_conditions)

        reports = []
        total_samples = 0
        for pc in path_conditions:
            report = self._analyze_conjunction(pc, partition)
            reports.append(report)
            total_samples += sum(factor.samples for factor in report.factors)

        estimate = compose_disjoint_path_conditions(report.estimate for report in reports)
        elapsed = time.perf_counter() - started
        return QCoralResult(
            estimate=estimate,
            path_reports=tuple(reports),
            cache_statistics=self._cache.statistics,
            total_samples=total_samples,
            analysis_time=elapsed,
            config=self._config,
        )

    def analyze_path_condition(self, pc: ast.PathCondition) -> PathConditionReport:
        """Quantify a single path condition in isolation."""
        simplified = simplify_path_condition(pc) if self._config.simplify else pc
        partition = self._partition_for([simplified])
        return self._analyze_conjunction(simplified, partition)

    # ------------------------------------------------------------------ #
    # Algorithm 2: analysis of one conjunction
    # ------------------------------------------------------------------ #
    def _partition_for(self, path_conditions: Sequence[ast.PathCondition]) -> DependencyPartition:
        if self._config.partition_and_cache:
            return compute_dependency_partition(path_conditions)
        # Without PARTCACHE every path condition is analysed as one factor over
        # all of its variables, so the partition is the trivial one-block
        # partition of each PC (built lazily in _analyze_conjunction).
        return DependencyPartition(())

    def _analyze_conjunction(
        self, pc: ast.PathCondition, partition: DependencyPartition
    ) -> PathConditionReport:
        if not pc.constraints:
            # A trivially true path condition covers the whole domain.
            return PathConditionReport(pc, Estimate.one(), ())

        factors = self._split_factors(pc, partition)
        factor_reports = []
        for variables, factor in factors:
            factor_reports.append(self._estimate_factor(factor, variables))

        estimate = compose_independent_factors(report.estimate for report in factor_reports)
        return PathConditionReport(pc, estimate, tuple(factor_reports))

    def _split_factors(
        self, pc: ast.PathCondition, partition: DependencyPartition
    ) -> Sequence[Tuple[FrozenSet[str], ast.PathCondition]]:
        if self._config.partition_and_cache and len(partition) > 0:
            return group_constraints_by_block(pc, tuple(partition))
        return [(frozenset(pc.free_variables()), pc)]

    def _estimate_factor(
        self, factor: ast.PathCondition, variables: FrozenSet[str]
    ) -> FactorReport:
        ordered_variables = tuple(sorted(variables & factor.free_variables())) or tuple(
            sorted(factor.free_variables())
        )

        if self._config.partition_and_cache:
            cached = self._cache.get(factor)
            if cached is not None:
                return FactorReport(frozenset(ordered_variables), factor, cached, True, 0)

        estimate, samples = self._sample_factor(factor, ordered_variables)

        if self._config.partition_and_cache:
            self._cache.put(factor, estimate)
        return FactorReport(frozenset(ordered_variables), factor, estimate, False, samples)

    def _sample_factor(
        self, factor: ast.PathCondition, variables: Tuple[str, ...]
    ) -> Tuple[Estimate, int]:
        budget = self._config.samples_per_query
        if self._config.stratified:
            result = stratified_sampling(
                factor,
                self._profile,
                budget,
                self._rng,
                variables=variables,
                solver=self._solver,
            )
            return result.estimate, result.total_samples
        result = hit_or_miss(factor, self._profile, budget, self._rng, variables=variables)
        return result.estimate, result.samples


def quantify(
    constraint_set: ast.ConstraintSet,
    profile: UsageProfile,
    config: QCoralConfig = QCoralConfig(),
) -> QCoralResult:
    """One-shot convenience wrapper around :class:`QCoralAnalyzer`."""
    return QCoralAnalyzer(profile, config).analyze(constraint_set)
