"""Distribution-aware importance sampling: mass-refined stratification.

The paper's stratified sampler (Section 3.3) lets the ICP solver decide where
the strata are: boxes are bisected by *width* until the solver's budget runs
out, then hit-or-miss samples are drawn inside each box.  That is the right
refinement target when the usage profile is uniform — box volume is box mass —
but on *peaked* profiles (truncated normals, binomial/Poisson-style discrete
inputs) most of the probability mass concentrates in a few boxes, and the
per-box sampling variance there dominates the combined error no matter how
finely the low-mass rim is paved.

:class:`ImportanceSampler` makes the stratification itself distribution-aware:

* **Mass-driven refinement** — the ICP paving is refined further by repeatedly
  splitting the boundary box with the highest ``mass × σ̂²`` score (before any
  sampling the per-box σ̂ is the constant Bernoulli prior, so the heaviest box
  goes first).  Splits are placed at the *conditional mass median* of the most
  mass-balanced dimension (:meth:`~repro.core.profiles.Distribution.split_point`),
  on half-integer boundaries for discrete variables so no atom is ever shared
  between siblings; every child is re-contracted with HC4 and re-classified,
  so refinement can prove children inner (exact, free) or empty (excluded,
  free) on top of shrinking the sampled region.
* **Mass-proportional allocation** — each round's budget lands on the strata
  by ``mass · σ̂`` (the existing Neyman machinery, which degrades to pure
  mass-proportional sampling while σ̂ is still the uniform prior).  A pilot
  round therefore draws from the profile *restricted to the union of the
  undecided boxes* — the textbook importance-sampling proposal for this
  estimand.
* **Self-normalised combination** — per-sample importance weights are constant
  inside a stratum (``w = m_i / (n_i / N)``), and the normalising constant
  ``Σ_j w_j / N = Σ_i m_i`` is *known exactly* because box masses are exact
  under the profile.  The self-normalised estimator therefore coincides with
  the stratified combination ``Σ_i m_i p̂_i`` — with zero normalisation noise —
  and its delta-method variance is the stratified variance
  ``Σ_i m_i² p̂_i (1 - p̂_i) / n_i``.  :meth:`ImportanceSampler.estimate`
  computes it in the normalised form so the estimator's structure is explicit.

Optionally the sampler keeps refining *while sampling*: with a positive
``adaptive_splits`` budget, each extension round may split the stratum with
the largest observed variance contribution ``m_i² σ̂_i² / n_i``.  The parent's
accumulated counts cannot be attributed to the children (only counts are kept,
not coordinates), so they are written off — tracked in
:attr:`ImportanceSampler.discarded_samples` and still charged against the
sampling budget.  Adaptive refinement trades those samples for a finer paving
where the variance actually is; it also makes the final paving depend on the
run's sample history, so the persistent store only reuses/publishes
importance entries whose paving fingerprint still matches (the analyzer
guards this).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exec depends on core)
    from repro.exec.executor import Executor
    from repro.exec.scheduler import SamplingTask
    from repro.exec.seeds import SeedStream

from repro.core.estimate import Estimate
from repro.core.profiles import UsageProfile
from repro.core.stratified import StratifiedResult, StratifiedSampler, Stratum
from repro.errors import AnalysisError, ConfigurationError
from repro.icp.config import ICPConfig, PAPER_CONFIG
from repro.icp.contractor import contract
from repro.icp.hc4 import constraint_certainly_holds
from repro.icp.solver import ICPSolver, PavedBox, Paving
from repro.intervals.box import Box
from repro.intervals.interval import Interval
from repro.lang import ast
from repro.obs import Observability

#: Default cap on the number of strata after mass-driven refinement.
DEFAULT_MASS_SPLIT_BOXES = 64

#: Boxes with less profile mass than this are never worth refining.
MIN_SPLIT_MASS = 1e-12

#: The same threshold in log space (box ordering happens there; see
#: :meth:`ImportanceSampler._refined_boxes`).
_LOG_MIN_SPLIT_MASS = math.log(MIN_SPLIT_MASS)


class ImportanceSampler(StratifiedSampler):
    """Mass-refined, self-normalised stratified estimator of one path condition.

    Drop-in replacement for :class:`~repro.core.stratified.StratifiedSampler`:
    the persistent-strata machinery, the sharded deterministic execution path,
    and the store integration are all inherited.  What changes is *where the
    strata are* (mass-driven refinement on top of the ICP paving), *where the
    budget goes* (callers should extend with the ``"neyman"`` or ``"mass"``
    policy so draws follow ``mass · σ̂``), and *how the combination is formed*
    (the self-normalised estimator of the module docstring).

    Args:
        max_boxes: Stratum-count cap for the upfront mass-driven refinement;
            the ICP paving is refined until this many strata exist (or no
            splittable mass remains).  The refinement is a pure function of
            the paving, the profile, and this knob — never of the samples —
            so pavings (and store fingerprints) are reproducible across runs.
        adaptive_splits: Extra splits the sampler may spend *during* sampling
            on the strata with the largest observed variance contribution
            (0 disables; see the module docstring for the write-off cost).
    """

    method_label = "importance"

    def __init__(
        self,
        pc: ast.PathCondition,
        profile: UsageProfile,
        rng: Optional[np.random.Generator],
        variables: Optional[Sequence[str]] = None,
        icp_config: ICPConfig = PAPER_CONFIG,
        solver: Optional[ICPSolver] = None,
        executor: Optional["Executor"] = None,
        seed_stream: Optional["SeedStream"] = None,
        chunk_size: Optional[int] = None,
        max_boxes: int = DEFAULT_MASS_SPLIT_BOXES,
        adaptive_splits: int = 0,
        observability: Optional[Observability] = None,
    ) -> None:
        if max_boxes < 1:
            raise ConfigurationError("importance sampling needs a positive stratum cap")
        if adaptive_splits < 0:
            raise ConfigurationError("adaptive split budget may not be negative")
        self._max_boxes = max_boxes
        self._adaptive_remaining = adaptive_splits
        self._discarded_samples = 0
        super().__init__(
            pc,
            profile,
            rng,
            variables=variables,
            icp_config=icp_config,
            solver=solver,
            executor=executor,
            seed_stream=seed_stream,
            chunk_size=chunk_size,
            observability=observability,
        )

    # ------------------------------------------------------------------ #
    # Mass-driven refinement
    # ------------------------------------------------------------------ #
    def _refined_boxes(self, paving: Paving) -> Sequence[PavedBox]:
        """Refine the ICP paving by splitting the highest-mass boundary boxes.

        Before any sampling every undecided box carries the same prior σ̂, so
        the highest ``mass × σ̂²`` box is simply the heaviest one; a max-heap
        on mass pops it, :meth:`_split_paved` bisects it at the conditional
        mass median, and the (re-contracted, re-classified) children re-enter
        the heap.  Inner, mass-free, and unsplittable boxes retire to the
        ``finished`` list.  The returned order — retirees first, then the heap
        drained in mass order — is deterministic, which keeps seed spawning
        and store fingerprints reproducible.
        """
        finished: List[PavedBox] = []
        counter = itertools.count()
        heap: List[Tuple[float, int, PavedBox]] = []

        def admit(paved: PavedBox) -> None:
            # Heap priority in log space: a high-dimensional peaked profile
            # can underflow the linear mass product to 0.0, which would make
            # every heavy box tie at the top; log masses keep them ordered.
            log_mass = self._profile.log_mass(paved.box)
            if paved.inner or log_mass <= _LOG_MIN_SPLIT_MASS:
                finished.append(paved)
            else:
                heapq.heappush(heap, (-log_mass, next(counter), paved))

        for paved in paving.boxes:
            admit(paved)

        while heap and len(finished) + len(heap) < self._max_boxes:
            _, _, paved = heapq.heappop(heap)
            children = self._split_paved(paved)
            if children is None:
                finished.append(paved)
                continue
            self._obs.count("importance_refinement_splits_total")
            for child in children:
                admit(child)

        while heap:
            finished.append(heapq.heappop(heap)[2])
        return finished

    def _split_paved(self, paved: PavedBox) -> Optional[List[PavedBox]]:
        """Bisect one boundary box at the profile's mass median; None if unsplittable.

        Both halves are re-contracted with HC4 — a half proven solution-free
        vanishes (its mass is excluded exactly) — and re-classified, so a
        split can upgrade parts of the box to inner (exact, never sampled).
        """
        chosen = self._choose_split(paved.box)
        if chosen is None:
            return None
        name, at = chosen
        # Atoms on a strict-inequality boundary carry positive mass, so inner
        # certification over discrete variables must clear the boundary with
        # no floating-point slack (same rule the paving solver applies).
        strict = bool(self._integer_names)
        children: List[PavedBox] = []
        for half in paved.box.split(name, at):
            contracted = contract(self._pc, half, self._icp_config)
            if contracted is None:
                continue
            inner = all(
                constraint_certainly_holds(constraint, contracted, strict)
                for constraint in self._pc.constraints
            )
            children.append(PavedBox(contracted, inner=inner))
        return children

    def _choose_split(self, box: Box) -> Optional[Tuple[str, float]]:
        """Pick the dimension whose mass-median split is most balanced.

        Every dimension proposes its conditional mass median
        (:meth:`~repro.core.profiles.Distribution.split_point`); the one whose
        two halves carry the most equal mass wins, with ties broken towards
        the dimension with the most remaining resolution (atoms for discrete
        variables, relative width for continuous ones) so refinement cycles
        through the dimensions instead of slicing one forever.
        """
        best: Optional[Tuple[float, float, int, str, float]] = None
        for index, name in enumerate(box.variables):
            distribution = self._profile.distribution(name)
            interval = box.interval(name)
            at = distribution.split_point(interval)
            if at is None or not interval.lo < at < interval.hi:
                continue
            mass = distribution.mass(interval)
            if mass <= 0.0:
                continue
            left = distribution.mass(Interval.make(interval.lo, at))
            balance = abs(2.0 * left - mass) / mass
            if distribution.is_discrete:
                support = distribution.support
                resolution = min(interval.hi, support.hi) - max(interval.lo, support.lo)
            else:
                width = distribution.support.width()
                resolution = interval.width() / width if width > 0.0 else 0.0
            key = (round(balance, 9), -resolution, index)
            if best is None or key < best[:3]:
                best = key + (name, at)
        if best is None:
            return None
        return best[3], best[4]

    # ------------------------------------------------------------------ #
    # Adaptive refinement during sampling
    # ------------------------------------------------------------------ #
    @property
    def discarded_samples(self) -> int:
        """Samples written off by adaptive splits (still charged to the budget)."""
        return self._discarded_samples

    def ess_parts(self) -> Tuple[Tuple[float, int], ...]:
        """Per-stratum ``(mass, samples)`` parts of the self-normalised ESS.

        The importance estimator weights each draw from stratum ``i`` by the
        constant ``w_i = m_i · N / n_i``; these pairs are the inputs to the
        cross-strata effective sample size
        ``M² / Σ m_i²/n_i`` computed by
        :meth:`~repro.core.stratified.StratifiedSampler.effective_sample_size`,
        exposed separately so diagnostics can attribute degeneracy to
        specific strata.  Sampled sampleable strata only, paving order.
        """
        return tuple(
            (stratum.weight, stratum.draw_count)
            for stratum in self._strata
            if stratum.sampleable and stratum.draw_count > 0
        )

    @property
    def total_samples(self) -> int:
        """Samples consumed so far, including those adaptive splits wrote off."""
        return super().total_samples + self._discarded_samples

    def _maybe_adaptive_refine(self) -> None:
        """Spend one adaptive split on the largest variance contributor, if any.

        Runs at the head of every extension round (both execution paths), so
        the decision depends only on the merged per-stratum counts — which are
        backend-independent — and the refined paving stays bit-identical
        across serial/thread/process executors.
        """
        if self._adaptive_remaining <= 0:
            return
        candidates = sorted(
            (index for index, stratum in enumerate(self._strata) if stratum.sampleable),
            key=lambda index: -self._variance_contribution(self._strata[index]),
        )
        for index in candidates:
            stratum = self._strata[index]
            children = self._split_paved(PavedBox(stratum.box, inner=False))
            if children is None:
                continue
            self._adaptive_remaining -= 1
            self._discarded_samples += stratum.draw_count
            if self._obs.enabled:
                self._obs.count("importance_adaptive_splits_total")
                self._obs.count("importance_discarded_samples_total", stratum.draw_count)
            replacement = [Stratum(child.box, self._profile.mass(child.box), child.inner) for child in children]
            self._strata[index : index + 1] = replacement
            if not any(stratum.sampleable for stratum in self._strata):
                # The split proved the last sampleable stratum inner/empty:
                # the estimate is now exact, and freezing it here stops the
                # remaining rounds from dumping budget into boxes that can
                # no longer reduce the variance (or, for mass-free discrete
                # boxes, cannot be sampled at all).
                self._exact = self.estimate()
            return
        # Nothing splittable is left; stop trying on future rounds.
        self._adaptive_remaining = 0

    @staticmethod
    def _variance_contribution(stratum: Stratum) -> float:
        """The stratum's term ``w² σ̂² / n`` of the combined variance."""
        sigma = stratum.sigma()
        return stratum.weight * stratum.weight * sigma * sigma / max(1, stratum.samples)

    def _extend_serial(self, budget: int, allocation: str) -> int:
        self._maybe_adaptive_refine()
        if self._exact is not None:
            # The refine step can prove the estimate exact mid-run; without
            # this guard the base extension would fall back to an even split
            # over the (all-zero-priority) inner strata and waste the budget.
            return 0
        return super()._extend_serial(budget, allocation)

    def plan_extension(self, budget: int, allocation: str = "even") -> List[Tuple[int, "SamplingTask"]]:
        self._maybe_adaptive_refine()
        return super().plan_extension(budget, allocation)

    # ------------------------------------------------------------------ #
    # The self-normalised estimator
    # ------------------------------------------------------------------ #
    def estimate(self) -> Estimate:
        """Self-normalised importance estimate of the factor probability.

        Inner strata contribute their exact mass.  Over the sampled strata the
        per-sample importance weights are constant per stratum and their sum is
        the *exact* boundary mass ``M = Σ_i m_i``, so the self-normalised hit
        rate ``(Σ_i m_i p̂_i) / M`` carries no normalisation noise; scaling it
        back by ``M`` gives the stratified combination with the delta-method
        variance ``Σ_i m_i² p̂_i (1 - p̂_i) / n_i``.
        """
        if self._exact is not None:
            return self._exact
        inner_mass = 0.0
        weighted_hit_rate = 0.0
        normaliser = 0.0
        variance = 0.0
        for stratum in self._strata:
            if stratum.weight == 0.0:
                continue
            if stratum.inner:
                inner_mass += stratum.weight
                continue
            part = stratum.estimate()
            weighted_hit_rate += stratum.weight * part.mean
            variance += stratum.weight * stratum.weight * part.variance
            normaliser += stratum.weight
        if normaliser > 0.0:
            conditional = weighted_hit_rate / normaliser
            mean = inner_mass + normaliser * conditional
        else:
            mean = inner_mass
        return Estimate(mean, variance)

    # ------------------------------------------------------------------ #
    # Store integration
    # ------------------------------------------------------------------ #
    def paving_fingerprint(self, canonical_order: Sequence[str]) -> str:
        """Refined-paving fingerprint, prefixed with the refinement knob.

        The prefix makes importance fingerprints self-describing (and disjoint
        from plain stratified ones even for the degenerate cap of 1 box), on
        top of the method-tag separation the store key already enforces.
        """
        return f"imp{self._max_boxes}|" + super().paving_fingerprint(canonical_order)


def importance_sampling(
    pc: ast.PathCondition,
    profile: UsageProfile,
    samples: int,
    rng: Optional[np.random.Generator],
    variables: Optional[Sequence[str]] = None,
    icp_config: ICPConfig = PAPER_CONFIG,
    solver: Optional[ICPSolver] = None,
    allocation: str = "neyman",
    max_boxes: int = DEFAULT_MASS_SPLIT_BOXES,
    adaptive_splits: int = 0,
    executor: Optional["Executor"] = None,
    seed_stream: Optional["SeedStream"] = None,
    chunk_size: Optional[int] = None,
) -> StratifiedResult:
    """One-shot convenience wrapper around :class:`ImportanceSampler`.

    Mirrors :func:`~repro.core.stratified.stratified_sampling`: build the
    mass-refined sampler, spend the whole budget in one round under
    ``allocation`` (``"neyman"`` — i.e. ``mass · σ̂`` — by default), and return
    the snapshot.
    """
    if samples <= 0:
        raise AnalysisError("importance sampling needs a positive sample budget")
    sampler = ImportanceSampler(
        pc,
        profile,
        rng,
        variables=variables,
        icp_config=icp_config,
        solver=solver,
        executor=executor,
        seed_stream=seed_stream,
        chunk_size=chunk_size,
        max_boxes=max_boxes,
        adaptive_splits=adaptive_splits,
    )
    sampler.extend(samples, allocation=allocation)
    return sampler.result()


def __getattr__(name: str):
    # Historical import location: the method-name tuple lived here before the
    # estimation-method registry (repro.core.methods) replaced it.  Resolved
    # lazily to avoid an import cycle (methods.py imports this module).
    if name == "ESTIMATION_METHODS":
        from repro.core.methods import ESTIMATION_METHODS

        return ESTIMATION_METHODS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
