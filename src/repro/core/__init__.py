"""qCORAL core: estimators, samplers, compositional analysis."""

from repro.core.cache import CacheStatistics, EstimateCache
from repro.core.composition import (
    compose_disjoint_path_conditions,
    compose_independent_factors,
    variance_upper_bound_holds,
)
from repro.core.dependency import (
    DependencyPartition,
    UnionFind,
    compute_dependency_partition,
    partition_for_constraint_set,
)
from repro.core.estimate import Estimate, RunningEstimate, product_independent, sum_disjoint
from repro.core.importance import ImportanceSampler, importance_sampling
from repro.core.methods import (
    ESTIMATION_METHODS,
    METHOD_REGISTRY,
    EstimationMethod,
)
from repro.core.montecarlo import (
    SamplingResult,
    hit_or_miss,
    hit_or_miss_constraint_set,
    hit_or_miss_sharded,
)
from repro.core.profiles import (
    BinomialDistribution,
    CategoricalDistribution,
    DiscreteDistribution,
    Distribution,
    PiecewiseUniformDistribution,
    TruncatedGeometricDistribution,
    TruncatedNormalDistribution,
    TruncatedPoissonDistribution,
    UniformDistribution,
    UsageProfile,
    parse_distribution_spec,
)
from repro.core.qcoral import (
    FactorReport,
    PathConditionReport,
    QCoralAnalyzer,
    QCoralConfig,
    QCoralResult,
    RoundReport,
    quantify,
)
from repro.core.stratified import (
    ALLOCATION_POLICIES,
    StratifiedResult,
    StratifiedSampler,
    Stratum,
    StratumReport,
    allocate_budget,
    allocation_priorities,
    stratified_sampling,
)

__all__ = [
    "Estimate",
    "RunningEstimate",
    "sum_disjoint",
    "product_independent",
    "UsageProfile",
    "Distribution",
    "UniformDistribution",
    "TruncatedNormalDistribution",
    "PiecewiseUniformDistribution",
    "DiscreteDistribution",
    "BinomialDistribution",
    "TruncatedPoissonDistribution",
    "TruncatedGeometricDistribution",
    "CategoricalDistribution",
    "parse_distribution_spec",
    "ESTIMATION_METHODS",
    "METHOD_REGISTRY",
    "EstimationMethod",
    "ImportanceSampler",
    "importance_sampling",
    "SamplingResult",
    "hit_or_miss",
    "hit_or_miss_constraint_set",
    "hit_or_miss_sharded",
    "StratifiedResult",
    "StratifiedSampler",
    "Stratum",
    "StratumReport",
    "stratified_sampling",
    "allocate_budget",
    "allocation_priorities",
    "ALLOCATION_POLICIES",
    "DependencyPartition",
    "UnionFind",
    "compute_dependency_partition",
    "partition_for_constraint_set",
    "EstimateCache",
    "CacheStatistics",
    "compose_disjoint_path_conditions",
    "compose_independent_factors",
    "variance_upper_bound_holds",
    "QCoralAnalyzer",
    "QCoralConfig",
    "QCoralResult",
    "RoundReport",
    "PathConditionReport",
    "FactorReport",
    "quantify",
]
