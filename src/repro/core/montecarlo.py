"""Hit-or-miss Monte Carlo estimation (paper Section 3.2, Equation 2).

The estimator draws ``n`` independent samples from the usage profile
(optionally conditioned on a sub-box of the domain), counts how many satisfy
the constraint under analysis, and reports the hit ratio together with the
binomial-proportion variance ``p (1 - p) / n``.

Both samplers are *resumable*: they return raw counts, and passing a previous
:class:`SamplingResult` as ``prior`` extends it — the returned counts cover
the prior plus the newly drawn batch, so an estimate can absorb additional
budget round after round instead of restarting from zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exec depends on us)
    from repro.exec.executor import Executor
    from repro.exec.seeds import SeedStream

from repro.core.estimate import Estimate, RunningEstimate
from repro.core.profiles import UsageProfile
from repro.errors import AnalysisError
from repro.intervals.box import Box
from repro.lang import ast
from repro.lang.compiler import CompiledPredicate
from repro.lang.kernel import get_kernel


@dataclass(frozen=True)
class SamplingResult:
    """Outcome of one hit-or-miss run: the estimate plus raw counts."""

    estimate: Estimate
    hits: int
    samples: int

    def merge(self, other: "SamplingResult") -> "SamplingResult":
        """Combine two independent runs of the same estimator (counts add)."""
        hits = self.hits + other.hits
        samples = self.samples + other.samples
        return SamplingResult(Estimate.from_hits(hits, samples), hits, samples)

    def to_running(self) -> RunningEstimate:
        """The raw counts as a mergeable :class:`RunningEstimate` accumulator."""
        return RunningEstimate.from_counts(self.hits, self.samples)


def _extend_prior(hits: int, samples: int, prior: Optional[SamplingResult]) -> SamplingResult:
    """Fold freshly drawn counts into an optional prior result."""
    if prior is not None:
        hits += prior.hits
        samples += prior.samples
    return SamplingResult(Estimate.from_hits(hits, samples), hits, samples)


def hit_or_miss(
    pc: ast.PathCondition,
    profile: UsageProfile,
    samples: int,
    rng: np.random.Generator,
    box: Optional[Box] = None,
    variables: Optional[Sequence[str]] = None,
    predicate: Optional[CompiledPredicate] = None,
    batch_size: int = 100_000,
    prior: Optional[SamplingResult] = None,
) -> SamplingResult:
    """Estimate the probability of satisfying ``pc`` by hit-or-miss sampling.

    Args:
        pc: The conjunction of constraints to estimate.
        profile: Usage profile; must cover every free variable of ``pc``.
        samples: Number of *additional* samples to draw (must be positive).
        rng: NumPy random generator (the caller controls seeding).
        box: Optional sub-box of the domain to sample inside (an ICP stratum).
        variables: Variables to sample; defaults to the free variables of
            ``pc`` — restricting the sampled dimensions is the "faster sample
            generation" benefit the paper notes in Section 4.3.
        predicate: Pre-compiled predicate for ``pc`` (avoids recompilation when
            the caller evaluates the same constraint over many strata).
        batch_size: Samples are drawn and evaluated in batches of this size to
            bound peak memory.
        prior: Result of a previous run over the same estimator; the returned
            counts extend it, making the sampler resumable.

    Returns:
        A :class:`SamplingResult` holding the :class:`Estimate` and raw counts
        (cumulative when ``prior`` is given).
    """
    if samples <= 0:
        raise AnalysisError("hit-or-miss sampling needs a positive sample count")

    names: Sequence[str] = tuple(variables) if variables is not None else tuple(sorted(pc.free_variables()))
    profile.check_covers(names)

    if not names:
        # A path condition with no free variables is either a tautology or a
        # contradiction; evaluate it once on the empty assignment.
        from repro.lang.evaluator import holds_path_condition

        mean = 1.0 if holds_path_condition(pc, {}) else 0.0
        return _extend_prior(int(mean * samples), samples, prior) if prior is not None else SamplingResult(
            Estimate.exact(mean), int(mean * samples), samples
        )

    compiled = predicate if predicate is not None else get_kernel(pc)

    hits = 0
    drawn = 0
    while drawn < samples:
        batch_count = min(batch_size, samples - drawn)
        batch = profile.sample(rng, batch_count, variables=names, box=box)
        hits += int(np.count_nonzero(compiled(batch)))
        drawn += batch_count

    return _extend_prior(hits, samples, prior)


def hit_or_miss_sharded(
    pc: ast.PathCondition,
    profile: UsageProfile,
    samples: int,
    seeds: "SeedStream",
    executor: Optional["Executor"] = None,
    box: Optional[Box] = None,
    variables: Optional[Sequence[str]] = None,
    chunk_size: Optional[int] = None,
    batch_size: int = 100_000,
    prior: Optional[SamplingResult] = None,
) -> SamplingResult:
    """Hit-or-miss estimation sharded into seeded chunks run on an executor.

    The budget is cut into worker-count-independent chunks
    (:func:`repro.exec.scheduler.shard_budget`), each chunk spawns its own
    child seed from ``seeds``, and the raw counts are merged in chunk order —
    so for a fixed master seed the result is bit-identical on the serial,
    thread, and process backends at any worker count.

    Args:
        pc: The conjunction of constraints to estimate.
        profile: Usage profile covering the free variables of ``pc``.
        samples: Number of additional samples to draw (must be positive).
        seeds: Seed stream the per-chunk seeds are spawned from.
        executor: Backend to run the chunks on (None = in-thread serial).
        box: Optional sub-box of the domain to sample inside.
        variables: Variables to sample; defaults to the free variables of ``pc``.
        chunk_size: Samples per task (default
            :data:`repro.exec.scheduler.DEFAULT_CHUNK_SIZE`).
        batch_size: Per-task evaluation batch size (bounds peak memory).
        prior: Previous result over the same estimator to extend.

    Returns:
        The merged :class:`SamplingResult` (cumulative when ``prior`` is given).
    """
    from repro.exec.scheduler import (
        DEFAULT_CHUNK_SIZE,
        SamplingTask,
        run_sampling_tasks,
        shard_budget,
    )

    if samples <= 0:
        raise AnalysisError("hit-or-miss sampling needs a positive sample count")

    names: Sequence[str] = tuple(variables) if variables is not None else tuple(sorted(pc.free_variables()))
    profile.check_covers(names)
    if not names:
        # Constant path condition: delegate to the serial estimator, which
        # resolves it exactly without consuming random numbers.
        return hit_or_miss(pc, profile, samples, seeds.generator(), box=box, variables=names, prior=prior)

    tasks = [
        SamplingTask(
            pc=pc,
            profile=profile,
            samples=chunk,
            seed=seeds.spawn_sequence(),
            box=box,
            variables=tuple(names),
            batch_size=batch_size,
        )
        for chunk in shard_budget(samples, chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE)
    ]
    hits = 0
    for chunk_hits, _ in run_sampling_tasks(executor, tasks):
        hits += chunk_hits
    return _extend_prior(hits, samples, prior)


def hit_or_miss_constraint_set(
    constraint_set: ast.ConstraintSet,
    profile: UsageProfile,
    samples: int,
    rng: np.random.Generator,
    batch_size: int = 100_000,
    prior: Optional[SamplingResult] = None,
) -> SamplingResult:
    """Whole-domain hit-or-miss over a disjunction of path conditions.

    This estimates the indicator of Equation (1) directly (a sample is a hit
    when it satisfies *any* path condition); it is the non-compositional
    baseline labelled "Monte Carlo" in the paper's Table 4.  Like
    :func:`hit_or_miss` it is resumable through ``prior``.
    """
    if samples <= 0:
        raise AnalysisError("hit-or-miss sampling needs a positive sample count")
    names = tuple(sorted(constraint_set.free_variables()))
    profile.check_covers(names)
    if not names:
        from repro.lang.evaluator import holds_any

        mean = 1.0 if holds_any(constraint_set, {}) else 0.0
        return _extend_prior(int(mean * samples), samples, prior) if prior is not None else SamplingResult(
            Estimate.exact(mean), int(mean * samples), samples
        )

    compiled = get_kernel(constraint_set)
    hits = 0
    drawn = 0
    while drawn < samples:
        batch_count = min(batch_size, samples - drawn)
        batch = profile.sample(rng, batch_count, variables=names)
        hits += int(np.count_nonzero(compiled(batch)))
        drawn += batch_count
    return _extend_prior(hits, samples, prior)
